"""Quickstart for 3-D stencils: plan, simulate, and sweep a stencil axis.

Run with::

    python examples/heat3d_study.py

The example exercises the 3-D folding pipeline end-to-end:

1. compile a folded plan for the 3-D heat equation (7-point star) and run it
   against the naive reference,
2. simulate the register-level plane-wise square pipeline on the virtual
   SIMD machine — the trace backend replays the recorded per-square
   instruction trace over every (plane, square) position at once, and is
   asserted bit-identical to the interpreted oracle,
3. run a declarative study sweeping a 3-D stencil axis (7-point heat and
   27-point box) against both ISAs, reporting modelled GFLOP/s at the
   paper's Table 1 problem sizes together with the neighbour-reuse slab
   residency (for 3-D stencils the slab is a pair of grid planes).
"""

from __future__ import annotations

import numpy as np

import repro
from repro.cache.analytic import sweep_reuse_level
from repro.machine import machine_for_isa
from repro.stencils.reference import reference_run
from repro.utils.tables import format_table


def main() -> None:
    case = repro.get_benchmark("3d-heat")
    spec = case.spec
    print(f"Stencil: {spec.name} ({spec.npoints}-point {spec.shape_class.value}, {spec.dims}-D)")

    # ------------------------------------------------------------------ #
    # 1. compile a folded 3-D plan and validate the numeric path
    # ------------------------------------------------------------------ #
    p = repro.plan(spec).method("folded").isa("avx2").unroll(2).compile()
    steps = 6
    grid = case.make_grid((16, 16, 16))
    result = p.run(grid, steps)
    error = float(np.max(np.abs(result - reference_run(spec, grid, steps))))
    print(f"\nRan {steps} steps on a {grid.shape} grid with 2-step folding.")
    print(f"Maximum deviation from the naive reference: {error:.2e}")

    # ------------------------------------------------------------------ #
    # 2. simulate the plane-wise square pipeline (trace vs interpret)
    # ------------------------------------------------------------------ #
    trace_out, counts = p.simulate(grid, 2)  # backend="trace" is the default
    interp_out, _ = p.simulate(grid, 2, backend="interpret")
    print(f"\nSimulated one folded sweep: {counts.total:.0f} vector instructions")
    print(f"Trace replay bit-identical to interpreter: {np.array_equal(trace_out, interp_out)}")

    # ------------------------------------------------------------------ #
    # 3. a study over a 3-D stencil axis, on both ISAs
    # ------------------------------------------------------------------ #
    machines = {isa: machine_for_isa(isa) for isa in ("avx2", "avx512")}

    def metric(cell):
        bench = repro.get_benchmark(cell["stencil"])
        target = machines[cell["isa"]]
        profile = cell.cache.profile("folded", bench.spec, isa=cell["isa"], m=2)
        est = cell.cache.estimate(
            profile,
            npoints=int(np.prod(bench.problem_size)),
            time_steps=bench.time_steps,
            machine=target,
        )
        return {
            "stencil": bench.display_name,
            "isa": cell["isa"],
            "GFLOP/s": est.gflops,
            "bound": est.bound,
            "reuse slab": sweep_reuse_level(bench.problem_size, target, bench.spec.radius),
        }

    rs = (
        repro.study("heat3d")
        .over(stencil=("3d-heat", "3d27p"), isa=("avx2", "avx512"))
        .metric(metric)
        .run()
    )
    print()
    print(
        format_table(
            [dict(row) for row in rs],
            title="Folded (m=2) 3-D stencils at Table 1 problem sizes",
        )
    )


if __name__ == "__main__":
    main()
