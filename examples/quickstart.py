"""Quickstart: fold a 9-point box stencil and inspect what the paper's scheme buys.

Run with::

    python examples/quickstart.py

The example walks through the library's main entry points:

1. pick a benchmark stencil (the 2-D 9-point box of the paper's running
   example),
2. execute it with the temporal-computation-folding engine and check the
   result against the naive reference,
3. print the Section 3.2 profitability analysis (|C(E)| = 90, |C(E_Λ)| = 9,
   P = 10 for this stencil),
4. print the modelled performance of every vectorization method on the
   paper's Xeon Gold 6140 for a memory-resident problem.
"""

from __future__ import annotations

import numpy as np

from repro import (
    StencilEngine,
    build_profile,
    estimate_performance,
    get_benchmark,
    machine_for_isa,
    METHOD_KEYS,
    METHOD_LABELS,
)
from repro.stencils.reference import reference_run
from repro.utils.tables import format_table


def main() -> None:
    case = get_benchmark("2d9p")
    spec = case.spec
    print(f"Stencil: {spec.name} ({spec.npoints}-point {spec.shape_class.value}, {spec.dims}-D)")

    # ------------------------------------------------------------------ #
    # 1. run the folded engine and validate against the reference
    # ------------------------------------------------------------------ #
    grid = case.make_grid((128, 128))
    engine = StencilEngine(spec, method="folded", isa="avx2", unroll=2)
    steps = 10
    result = engine.run(grid, steps)
    reference = reference_run(spec, grid, steps)
    error = float(np.max(np.abs(result - reference)))
    print(f"\nRan {steps} time steps on a {grid.shape} grid with 2-step folding.")
    print(f"Maximum deviation from the naive reference: {error:.2e}")

    # ------------------------------------------------------------------ #
    # 2. the paper's profitability analysis (Section 3.2)
    # ------------------------------------------------------------------ #
    report = engine.folding_report()
    print("\nTemporal computation folding analysis (m = 2):")
    print(f"  |C(E)|  naive expansion        : {report.collect_naive}")
    print(f"  |C(E_Λ)| plain folding          : {report.collect_folded}")
    print(f"  |C(E_Λ)| vertical+horizontal    : {report.collect_optimized}")
    print(f"  profitability index P(E, E_Λ)   : {report.profitability_optimized:.1f}")

    # ------------------------------------------------------------------ #
    # 3. modelled performance of every method on the paper's machine
    # ------------------------------------------------------------------ #
    machine = machine_for_isa("avx2")
    npoints = 1 << 24  # memory resident
    rows = []
    for method in METHOD_KEYS:
        profile = build_profile(method, spec, "avx2", m=2)
        est = estimate_performance(profile, npoints, time_steps=1000, machine=machine)
        rows.append(
            {
                "method": METHOD_LABELS[method],
                "GFLOP/s (1 core)": est.gflops,
                "bound": est.bound,
            }
        )
    print()
    print(
        format_table(
            rows,
            title=f"Modelled single-core performance, {npoints} points (memory resident), {machine.name}",
        )
    )


if __name__ == "__main__":
    main()
