"""Quickstart: compile a plan once, run it many times, inspect what it buys.

Run with::

    python examples/quickstart.py

The example walks through the compile-once/run-many API:

1. pick a benchmark stencil (the 2-D 9-point box of the paper's running
   example) and compile an execution plan with the fluent builder,
2. execute it — one grid, then a whole batch through the thread-pool batch
   executor — and check the results against the naive reference,
3. print the plan's ``explain()`` dump and the Section 3.2 profitability
   analysis (|C(E)| = 90, |C(E_Λ)| = 9, P = 10 for this stencil),
4. print the modelled performance of every registered vectorization method
   on the paper's Xeon Gold 6140 for a memory-resident problem.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import METHOD_KEYS, build_profile, estimate_performance, label_for, machine_for_isa
from repro.stencils.reference import reference_run
from repro.utils.tables import format_table


def main() -> None:
    case = repro.get_benchmark("2d9p")
    spec = case.spec
    print(f"Stencil: {spec.name} ({spec.npoints}-point {spec.shape_class.value}, {spec.dims}-D)")

    # ------------------------------------------------------------------ #
    # 1. compile a plan: method + ISA + unrolling, validated once
    # ------------------------------------------------------------------ #
    p = repro.plan(spec).method("folded").isa("avx2").unroll(2).compile()

    # ------------------------------------------------------------------ #
    # 2. run one grid, then a batch — both validated against the reference
    # ------------------------------------------------------------------ #
    steps = 10
    grid = case.make_grid((128, 128))
    result = p.run(grid, steps)
    reference = reference_run(spec, grid, steps)
    error = float(np.max(np.abs(result - reference)))
    print(f"\nRan {steps} time steps on a {grid.shape} grid with 2-step folding.")
    print(f"Maximum deviation from the naive reference: {error:.2e}")

    grids = [case.make_grid((64, 64), seed=s) for s in range(8)]
    batch = p.run_batch(grids, steps)
    sequential = [p.run(g, steps) for g in grids]
    identical = all(np.array_equal(a, b) for a, b in zip(batch, sequential))
    print(f"Batch of {len(grids)} grids through the thread pool, bit-identical: {identical}")

    # ------------------------------------------------------------------ #
    # 3. what did the compiler decide?  (includes the Section 3.2 analysis)
    # ------------------------------------------------------------------ #
    print()
    print(p.explain())

    # ------------------------------------------------------------------ #
    # 4. modelled performance of every method on the paper's machine
    # ------------------------------------------------------------------ #
    machine = machine_for_isa("avx2")
    npoints = 1 << 24  # memory resident
    rows = []
    for method in METHOD_KEYS:
        profile = build_profile(method, spec, "avx2", m=2)
        est = estimate_performance(profile, npoints, time_steps=1000, machine=machine)
        rows.append(
            {
                "method": label_for(method),
                "GFLOP/s (1 core)": est.gflops,
                "bound": est.bound,
            }
        )
    print()
    print(
        format_table(
            rows,
            title=f"Modelled single-core performance, {npoints} points (memory resident), {machine.name}",
        )
    )


if __name__ == "__main__":
    main()
