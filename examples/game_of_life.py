"""Conway's Game of Life through a tessellated execution plan.

Run with::

    python examples/game_of_life.py

The Game of Life is the paper's example of a non-linear "stencil" whose
update depends on all 8 neighbours.  Temporal folding cannot restructure its
arithmetic (the rule is not a weighted sum), but the rest of the machinery —
the tile schedules, the concurrent executor, the plan API — applies
unchanged.  The example evolves a glider plus a random soup, prints the
population curve and verifies that the glider reappears translated after 4
generations on an otherwise empty board.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Grid
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.library import game_of_life
from repro.stencils.reference import reference_run
from repro.utils.tables import format_table

GLIDER = np.array(
    [
        [0, 1, 0],
        [0, 0, 1],
        [1, 1, 1],
    ],
    dtype=float,
)


def render(board: np.ndarray, rows: int = 12, cols: int = 48) -> str:
    """ASCII rendering of the top-left corner of the board."""
    glyphs = {0.0: "·", 1.0: "█"}
    return "\n".join(
        "".join(glyphs[val] for val in row[:cols]) for row in board[:rows]
    )


def main() -> None:
    spec = game_of_life()

    # --- glider translation check on an empty board -------------------- #
    board = np.zeros((32, 32))
    board[1:4, 1:4] = GLIDER
    evolved = reference_run(spec, Grid(values=board, boundary=BoundaryCondition.PERIODIC), 4)
    expected = np.zeros_like(board)
    expected[2:5, 2:5] = GLIDER  # a glider moves one cell diagonally every 4 steps
    assert np.array_equal(evolved, expected), "glider did not translate correctly"
    print("Glider translated one cell diagonally after 4 generations ✔")

    # --- random soup through the tessellated engine -------------------- #
    grid = Grid.life_random((96, 96), density=0.35, seed=2024)
    life_plan = (
        repro.plan(spec)
        .method("transpose")
        .tile(block_sizes=(32, 32), time_range=8)
        .compile()
    )
    rows = []
    board_now = grid.copy()
    generations = (0, 8, 16, 32, 64)
    previous = 0
    for gen in generations:
        if gen > previous:
            board_now = board_now.with_values(life_plan.run(board_now, gen - previous))
            previous = gen
        rows.append({"generation": gen, "population": int(board_now.values.sum())})
    print()
    print(format_table(rows, title="Population of a 96×96 random soup (tessellated execution)"))

    # The tessellated execution is exactly the reference evolution.
    reference = reference_run(spec, grid, generations[-1])
    assert np.array_equal(board_now.values, reference)
    print("Tessellated evolution matches the step-by-step reference exactly ✔")
    print()
    print("Final state (top-left corner):")
    print(render(board_now.values))


if __name__ == "__main__":
    main()
