"""Talk to the stencil-compute service: submit, observe the cache tiers.

Run with::

    python examples/service_client.py

The example is self-contained: it starts a service on a background thread
(ephemeral port, temporary store — exactly what ``repro-serve`` runs), then
walks the request lifecycle a deployment would see:

1. submit a ``plan`` request and inspect the compiled configuration,
2. submit the *same* request again — served from the in-memory cache,
3. submit an ``estimate`` and a sharded ``study`` (method × unroll sweep),
4. simulate a small grid and get the final values back as a NumPy array,
5. restart the service over the same store directory and resubmit: the
   answer now comes from the persistent store, byte-identical, with no
   recomputation,
6. dump the ``/stats`` surface: per-kind counters, cache hit rates, queue
   depth, latency histograms.

Against a long-running server, replace :func:`serve_background` with the
URL of your deployment::

    client = ServiceClient("http://my-host:8750")
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service import ServiceClient, ServiceConfig, serve_background


def main() -> None:
    store = Path(tempfile.mkdtemp(prefix="repro-service-example-")) / "store"

    def fresh_service():
        return serve_background(ServiceConfig(port=0, store_path=str(store), workers=0))

    handle = fresh_service()
    client = ServiceClient(handle.base_url)
    print(f"service up at {handle.base_url}, store at {store}")

    # ------------------------------------------------------------------ #
    # 1-2. a plan request, twice: computed, then an in-memory cache hit
    # ------------------------------------------------------------------ #
    plan_request = {"kind": "plan", "stencil": "2d9p", "method": "folded", "m": 2}
    reply = client.submit(plan_request)
    print(f"\nplan: served_from={reply['served_from']} key={reply['key']}")
    print(
        f"  label={reply['result']['label']!r} "
        f"steps/update={reply['result']['steps_per_update']}"
    )

    reply = client.submit(plan_request)
    print(f"plan again: served_from={reply['served_from']} ({reply['elapsed_ms']:.2f} ms)")

    # ------------------------------------------------------------------ #
    # 3. an estimate and a study (the service shards the cross-product)
    # ------------------------------------------------------------------ #
    reply = client.submit({"kind": "estimate", "stencil": "2d9p", "m": 4})
    print(f"\nestimate: {reply['result']['gflops']:.1f} GFLOPS ({reply['result']['bound']}-bound)")

    reply = client.submit(
        {
            "kind": "study",
            "stencil": "2d9p",
            "axes": {"method": ["folded", "multiple_loads"], "m": [1, 2, 4]},
        }
    )
    print(f"study: {reply['result']['cells']} cells")
    for row in reply["result"]["rows"]:
        print(f"  {row['method']:>15s} m={row['m']}: {row['gflops']:7.1f} GFLOPS")

    # ------------------------------------------------------------------ #
    # 4. simulate: the values come back as a real NumPy array
    # ------------------------------------------------------------------ #
    simulate_request = {
        "kind": "simulate",
        "stencil": "1d-heat",
        "m": 2,
        "shape": [128],
        "steps": 8,
    }
    reply = client.submit(simulate_request)
    values = reply["result"]["values"]
    print(
        f"\nsimulate: values {values.shape} {values.dtype}, "
        f"{reply['result']['instructions']['total']} simulated instructions"
    )

    # ------------------------------------------------------------------ #
    # 5. restart over the same store: the repeat is a persistent-store hit
    # ------------------------------------------------------------------ #
    handle.stop()
    print("\nservice stopped; restarting over the same store...")
    handle = fresh_service()
    client = ServiceClient(handle.base_url)
    reply = client.submit(simulate_request)
    print(
        f"simulate after restart: served_from={reply['served_from']} "
        f"({reply['elapsed_ms']:.2f} ms, no recomputation)"
    )
    assert reply["served_from"] == "store"

    # ------------------------------------------------------------------ #
    # 6. the /stats surface
    # ------------------------------------------------------------------ #
    stats = client.stats()
    totals = stats["service"]["totals"]
    print(
        f"\nstats: {totals['received']} received, "
        f"{totals['store_hits']} store hits, "
        f"hit rate {stats['service']['hit_rate']:.2f}"
    )
    print(f"  store: {stats['store']['entries']} entries, {stats['store']['bytes']} bytes")
    handle.stop()


if __name__ == "__main__":
    main()
