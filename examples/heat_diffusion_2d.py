"""2-D heat diffusion: every optimization path produces the same physics.

Run with::

    python examples/heat_diffusion_2d.py

A Gaussian temperature bump diffuses on a plate with cold (Dirichlet)
boundaries.  The same simulation is executed through four different paths of
the library — the naive reference, the DLT-layout baseline, the 2-step folded
plan and tessellate tiling with the concurrent tile executor — and the
example reports the pairwise deviations (machine-epsilon level) together with
the physical diagnostics (total heat, peak temperature) over time.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Grid
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.library import heat_2d
from repro.stencils.reference import reference_run
from repro.utils.tables import format_table


def main() -> None:
    spec = heat_2d(alpha=0.125)
    shape = (96, 96)
    steps = 60
    grid = Grid.gaussian_bump(shape, boundary=BoundaryCondition.DIRICHLET, amplitude=100.0)
    print(f"Diffusing a {shape} plate for {steps} steps with the {spec.npoints}-point heat stencil")
    print(f"Initial peak temperature: {grid.values.max():.2f}, total heat: {grid.values.sum():.1f}")

    # Reference solution.
    reference = reference_run(spec, grid, steps)

    # DLT baseline (computes in the dimension-lifted layout).
    dlt_plan = repro.plan(spec).method("dlt").isa("avx2").compile()
    dlt_result = dlt_plan.run(grid, steps)

    # Our folded plan (2 steps per pass, exact Dirichlet band handling).
    folded_plan = repro.plan(spec).method("folded").isa("avx2").unroll(2).compile()
    folded_result = folded_plan.run(grid, steps)

    # Tessellate tiling executed with concurrent tiles.
    tiled_plan = (
        repro.plan(spec)
        .method("transpose")
        .tile(block_sizes=(32, 32), time_range=8)
        .parallel(workers=4)
        .compile()
    )
    tiled_result = tiled_plan.run(grid, steps)

    def deviation(result):
        return float(np.max(np.abs(result - reference)))

    rows = [
        {"path": "DLT layout", "max |Δ| vs reference": deviation(dlt_result)},
        {"path": "folded (m=2)", "max |Δ| vs reference": deviation(folded_result)},
        {"path": "tessellated (4 workers)", "max |Δ| vs reference": deviation(tiled_result)},
    ]
    print()
    print(format_table(rows, float_fmt=".2e", title="Numerical agreement of the execution paths"))

    # Physical diagnostics over time (using the folded plan).
    diag_rows = []
    snapshot = grid.copy()
    previous_checkpoint = 0
    for checkpoint in (0, 10, 20, 40, 60):
        if checkpoint > previous_checkpoint:
            snapshot = snapshot.with_values(
                folded_plan.run(snapshot, checkpoint - previous_checkpoint)
            )
            previous_checkpoint = checkpoint
        diag_rows.append(
            {
                "step": checkpoint,
                "peak temperature": float(snapshot.values.max()),
                "total heat": float(snapshot.values.sum()),
            }
        )
    print(format_table(diag_rows, title="Diffusion diagnostics (folded plan)"))
    print("Peak temperature decays and heat leaks through the cold boundary, as physics demands.")


if __name__ == "__main__":
    main()
