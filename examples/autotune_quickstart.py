"""Autotune quickstart: staged search instead of hand-picking a config.

Run with::

    python examples/autotune_quickstart.py

The example walks the staged tuner end to end:

1. search the full ``(method, m, isa, layout)`` space for a benchmark
   stencil with the one-call API and inspect the winner,
2. read the prune ledger — every generated candidate is either measured
   or carries a ``pruned_reason``, so the search is auditable,
3. pin axes with the fluent builder (``repro.plan(...).method(...)
   .autotune()``) and round-trip the winner into a runnable
   ``CompiledPlan``,
4. rerun the search against a shared ``EvalCache`` and show the second
   pass performs zero new measurements,
5. compare the tuned configuration against every hand-picked study-table
   configuration (each method at ``m=2``) — the acceptance bar CI gates.
"""

from __future__ import annotations

import repro
from repro import SearchSpace, TuningWorkload, autotune, machine_for_isa
from repro.study.cache import EvalCache
from repro.utils.tables import format_table


def main() -> None:
    case = repro.get_benchmark("2d9p")
    spec = case.spec
    print(f"Stencil: {spec.name} ({spec.npoints}-point, {spec.dims}-D)")

    # ------------------------------------------------------------------ #
    # 1. one call searches the whole space; budget = measurements allowed
    # ------------------------------------------------------------------ #
    result = autotune(spec, budget=2, repeats=1)
    w = result.winner
    print(
        f"\nWinner: {w.method} / m={w.m} / {w.isa} "
        f"({w.predicted_cycles_per_point:.3f} predicted cycles/point)"
    )
    print(f"Space: {result.generated} candidates generated, "
          f"{result.measured_count} measured, "
          f"{result.pruned_count} pruned before measurement "
          f"({result.pruned_fraction:.0%}).")

    # ------------------------------------------------------------------ #
    # 2. the prune ledger: nothing disappears silently
    # ------------------------------------------------------------------ #
    stats = result.prune_stats()
    print("\nPrune reasons:")
    for reason, count in sorted(stats["reasons"].items()):
        print(f"  {count:3d} x {reason}")
    rows = [
        {
            "rank": rec.rank,
            "method": rec.method,
            "m": rec.m,
            "isa": rec.isa,
            "predicted c/pt": rec.predicted_cycles_per_point,
        }
        for rec in result.best(5)
    ]
    print()
    print(format_table(rows, title="Top five candidates (predicted)"))

    # ------------------------------------------------------------------ #
    # 3. the fluent builder pins axes; the winner round-trips into a plan
    # ------------------------------------------------------------------ #
    pinned = repro.plan(spec).method("folded").isa("avx512").autotune(budget=0)
    print(f"\nPinned search (folded/avx512 only): best m = {pinned.winner.m} "
          f"over {pinned.generated} candidates.")
    compiled = result.plan()
    grid = case.make_grid((64, 64))
    compiled.run(grid, 4)
    print(f"Winner round-trips into a runnable plan: {compiled.method_key} "
          f"m={compiled.config.unroll} on {compiled.config.isa}.")

    # ------------------------------------------------------------------ #
    # 4. a shared EvalCache makes the second search measurement-free
    # ------------------------------------------------------------------ #
    cache = EvalCache()
    autotune(spec, budget=2, repeats=1, cache=cache)
    before = cache.stats_by_kind()["measure"].misses
    autotune(spec, budget=2, repeats=1, cache=cache)
    after = cache.stats_by_kind()["measure"]
    print(f"\nSecond search against the shared cache: "
          f"{after.misses - before} new measurements, {after.hits} hits.")

    # ------------------------------------------------------------------ #
    # 5. tuned vs hand-picked — the acceptance bar CI gates
    # ------------------------------------------------------------------ #
    workload = TuningWorkload.for_spec(spec)
    comparison = []
    for isa in ("avx2", "avx512"):
        tuned = autotune(
            spec, budget=0, isas=(isa,), workload=workload, cache=cache
        ).winner
        machine = machine_for_isa(isa)
        hand_picked = []
        for method in SearchSpace.for_spec(spec).methods:
            profile = cache.profile(method, spec, isa=isa, m=2)
            est = cache.multicore(
                profile, workload.shape, workload.time_steps, machine, 1, spec.radius
            )
            hand_picked.append((est.cycles_per_point, method))
        best_hand, hand_method = min(hand_picked)
        comparison.append(
            {
                "isa": isa,
                "tuned": f"{tuned.method}/m={tuned.m}",
                "tuned c/pt": tuned.predicted_cycles_per_point,
                "hand-picked": f"{hand_method}/m=2",
                "hand c/pt": best_hand,
                "improvement": best_hand / tuned.predicted_cycles_per_point,
            }
        )
    print()
    print(format_table(comparison, title="Tuned vs best hand-picked (study table, m=2)"))


if __name__ == "__main__":
    main()
