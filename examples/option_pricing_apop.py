"""APOP: American put option pricing with a folded execution plan.

Run with::

    python examples/option_pricing_apop.py

APOP is one of the paper's real-world benchmarks: an explicit
finite-difference sweep for the Black–Scholes PDE where each backward time
step is a 3-point weighted sum of the option value (the *continuation*
value), followed by an elementwise ``max`` against the static early-exercise
payoff — a non-linear stencil reading two input arrays.

The example prices an American put, reports the value at a few spot prices,
locates the early-exercise boundary and verifies three financial sanity
properties: the American value never drops below the payoff, it dominates the
European value (computed with the same plan minus the exercise rule), and
it increases with the option's remaining lifetime.
"""

from __future__ import annotations

import numpy as np

import repro
from repro import Grid
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.library import apop
from repro.stencils.spec import StencilSpec
from repro.utils.tables import format_table

STRIKE = 100.0
GRID_POINTS = 2048
TIME_STEPS = 400


def price_grid() -> tuple[np.ndarray, Grid]:
    """Build the spot-price axis and the initial (payoff) grid."""
    prices = np.linspace(10.0, 200.0, GRID_POINTS)
    payoff = np.maximum(STRIKE - prices, 0.0)
    grid = Grid(values=payoff.copy(), boundary=BoundaryCondition.DIRICHLET, aux=payoff)
    return prices, grid


def main() -> None:
    spec = apop()
    prices, grid = price_grid()
    american_plan = repro.plan(spec).method("folded").isa("avx2").unroll(2).compile()

    american = american_plan.run(grid, TIME_STEPS)

    # European counterpart: same continuation weights, no early-exercise max.
    european_spec = StencilSpec(name="apop-european", kernel=spec.kernel)
    european_plan = repro.plan(european_spec).method("folded").unroll(2).compile()
    european = european_plan.run(
        Grid(values=grid.values.copy(), boundary=BoundaryCondition.DIRICHLET), TIME_STEPS
    )

    shorter = american_plan.run(grid, TIME_STEPS // 4)

    rows = []
    for spot in (60.0, 80.0, 100.0, 120.0, 150.0):
        idx = int(np.argmin(np.abs(prices - spot)))
        rows.append(
            {
                "spot": prices[idx],
                "payoff": max(STRIKE - prices[idx], 0.0),
                "american": american[idx],
                "european": european[idx],
            }
        )
    print(format_table(rows, float_fmt=".2f", title="American put values (strike = 100)"))

    # Early exercise boundary: the largest spot price where the option value
    # equals the immediate exercise payoff.
    exercised = np.where(np.isclose(american, grid.aux, atol=1e-9) & (grid.aux > 0))[0]
    if exercised.size:
        boundary_price = prices[exercised.max()]
        print(f"Early-exercise boundary ≈ spot {boundary_price:.2f}")

    # Financial sanity checks.
    assert np.all(american >= grid.aux - 1e-9), "American value fell below the payoff"
    assert np.all(american >= european - 1e-9), "American value fell below the European value"
    assert np.all(american >= shorter - 1e-7), "value decreased with a longer lifetime"
    print("Sanity checks passed: payoff floor, American ≥ European, monotone in maturity.")


if __name__ == "__main__":
    main()
