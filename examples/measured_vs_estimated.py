"""Measured vs estimated: run the generated megakernel, compare to the model.

Run with::

    python examples/measured_vs_estimated.py

The example puts the two halves of the reproduction side by side:

1. compile a plan for each benchmark stencil and code-generate its optimized
   schedule IR into one fused NumPy megakernel (``backend="kernel"``),
2. check the kernel's output is bit-identical to the instruction-level
   interpreter on the same grid,
3. measure the kernel's wall-clock cycles per point update
   (:func:`repro.measured_vs_estimated`) and print it next to the analytic
   cost model's estimate for the paper's Xeon Gold 6140.

The measured column times NumPy executing a simulated SIMD program, so it
sits orders of magnitude above the modelled native figure — the point is the
shared axis (cycles per point) and the per-stencil *shape* of the two
columns, not parity.  The same numbers are available from the command line
via ``repro-measure <stencil> --isa avx512 --optimize``.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.stencils.grid import Grid
from repro.utils.tables import format_table

CASES = (
    ("1d-heat", (64 * 16,)),
    ("2d9p", (32, 32)),
    ("3d-heat", (4, 16, 16)),
)


def main() -> None:
    rows = []
    for key, shape in CASES:
        case = repro.get_benchmark(key)
        p = repro.plan(case.spec).method("folded").isa("avx2").unroll(2).compile()
        grid = Grid.random(shape, seed=0)
        steps = 2 * p.steps_per_update

        # The megakernel must agree with the interpreter bit for bit.
        ref, _ = p.simulate(grid, steps, backend="interpret")
        out, _ = p.simulate(grid, steps, backend="kernel")
        assert np.array_equal(out, ref), key

        report = repro.measured_vs_estimated(p, grid, steps, repeats=5)
        rows.append(
            {
                "stencil": case.display_name,
                "points": report["points"],
                "estimated cyc/pt": report["estimated_cycles_per_point"],
                "measured cyc/pt": report["measured_cycles_per_point"],
                "ratio": report["measured_over_estimated"],
                "bound": report["bound"],
            }
        )
        print(f"{case.display_name}: kernel output bit-identical over {steps} steps")

    print()
    print(
        format_table(
            rows,
            title="Estimated (cost model) vs measured (generated megakernel) cycles per point",
        )
    )


if __name__ == "__main__":
    main()
