"""A custom study: sweep methods × ISAs on a machine that is not the 6140.

Demonstrates the declarative study API end to end:

1. describe your own machine as a :class:`repro.MachineSpec` (here: a small
   8-core part derived from the paper's Xeon Gold 6140);
2. declare the sweep axes with ``.over(...)`` — the first axis varies
   slowest, exactly like nested ``for`` loops;
3. route the analytic pipeline through the cell's memoization cache so
   repeated (method, ISA) cells are free;
4. query the immutable ResultSet: pivot the sweep into a figure-shaped
   matrix and find the winning method per ISA.

Run with ``PYTHONPATH=src python examples/custom_machine_study.py``.
"""

from __future__ import annotations

import dataclasses

import repro

# A machine we do not ship: 2 × 4 cores, half the L3, slower memory.
base = repro.machine_for_isa("avx2")
small = dataclasses.replace(
    base,
    name="Small Node (AVX-2)",
    cores_per_socket=4,
    sockets=2,
    memory_bandwidth_gbs=60.0,
    caches=tuple(
        dataclasses.replace(lvl, capacity_bytes=lvl.capacity_bytes // 2)
        if lvl.name == "L3"
        else lvl
        for lvl in base.caches
    ),
)

case = repro.get_benchmark("2d9p")
spec = case.spec


def metric(cell):
    """GFLOP/s of one (method, isa, cores) cell on the study's machine."""
    machine = repro.isa_variant(cell.machine, cell["isa"])
    profile = cell.cache.profile(cell["method"], spec, isa=cell["isa"], m=2)
    est = cell.cache.multicore(
        profile,
        grid_shape=case.problem_size,
        time_steps=case.time_steps,
        machine=machine,
        cores=cell["cores"],
        radius=spec.radius,
    )
    return {
        "method": cell["method"],
        "isa": cell["isa"],
        "cores": cell["cores"],
        "gflops": est.gflops,
    }


results = (
    repro.study("small-node-sweep")
    .over(
        method=repro.method_keys(),
        isa=("avx2", "avx512"),
        cores=repro.scalability_cores(small),
    )
    .on(small)
    .metric(metric)
    .run(workers=4)
)

print(f"{results!r}\n")
full = results.filter(cores=small.total_cores)
for isa in ("avx2", "avx512"):
    matrix = full.filter(isa=isa).pivot("method", "cores", "gflops")
    print(f"-- {isa} at {small.total_cores} cores")
    for method, cells in matrix.items():
        print(f"  {method:<16}{cells[small.total_cores]:8.1f} GFLOP/s")
best = full.best("gflops", by="isa")
for isa, row in best.items():
    print(f"winner with {isa}: {row['method']} at {row['gflops']:.1f} GFLOP/s")
p = results.provenance
print(
    f"\n{p.cells} cells in {p.wall_seconds:.2f}s on {p.workers} workers "
    f"(cache: {p.cache_hits} hits / {p.cache_misses} misses, config {p.config_hash})"
)

# The paper's own artefacts are studies too — any machine works:
from repro.harness.experiments import figure10  # noqa: E402

fig10 = figure10(benchmarks=("2d9p",), machine=small, workers=4)
print(f"\nfigure10 on {small.name}: swept cores {sorted({r['cores'] for r in fig10.rows})}")
