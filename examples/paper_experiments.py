"""Regenerate every table and figure of the paper's evaluation section.

Run with::

    python examples/paper_experiments.py            # everything
    python examples/paper_experiments.py figure8    # a single artefact

This is a thin wrapper around :mod:`repro.harness.runner`; the same code
backs the pytest benchmarks, so the rows printed here are identical to the
rows asserted there.  See ``EXPERIMENTS.md`` for the comparison against the
numbers reported in the paper.
"""

from __future__ import annotations

import sys

from repro.harness.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
