"""Regenerate every table and figure of the paper's evaluation section.

Run with::

    python examples/paper_experiments.py                     # everything
    python examples/paper_experiments.py figure8             # a single artefact
    python examples/paper_experiments.py figure8 --isa avx512
    python examples/paper_experiments.py table2 --json       # machine-readable
    python examples/paper_experiments.py --workers 8         # parallel sweeps

This is a thin wrapper around :mod:`repro.harness.runner`; the same code
backs the pytest benchmarks, so the rows printed here are identical to the
rows asserted there.  Each artefact is a declarative :mod:`repro.study`
sweep — see ``examples/custom_machine_study.py`` for running them (and your
own sweeps) on machines other than the paper's Xeon Gold 6140.  See
``EXPERIMENTS.md`` for the comparison against the numbers reported in the
paper.
"""

from __future__ import annotations

import sys

from repro.harness.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
