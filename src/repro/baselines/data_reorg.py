"""Data-reorganisation vectorization baseline.

The second class of compiler vectorization the paper discusses: each input
stream (one per kernel row) is loaded once with aligned vector loads, and the
shifted operand vectors needed for the innermost-dimension offsets are built
*in registers* from pairs of adjacent aligned vectors.  On AVX-2 such a
funnel shift of doubles takes two instructions (a lane-crossing
``vperm2f128`` plus an in-lane ``shufpd``/``palignr`` equivalent); AVX-512
has a single ``valignq``.

Compared with multiple loads this trades load-port pressure for shuffle-port
pressure; compared with the paper's transpose layout it spends roughly
``vl/2`` times more data-organisation instructions per point, which is the
gap Figure 8 measures at the L1/L2 levels.
"""

from __future__ import annotations

from repro.baselines.common import (
    innermost_width,
    kernel_rows,
    post_rule_counts,
    streamed_arrays,
    weighted_sum_counts,
)
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.profiles import MethodProfile
from repro.registry import register_method
from repro.simd.isa import InstructionClass, isa_for
from repro.simd.machine import InstructionCounts
from repro.stencils.spec import StencilSpec


@register_method(
    "data_reorg",
    label="Data Reorganization",
    figure_order=1,
    description="aligned loads + in-register shift/permute reorganisation",
)
def profile_data_reorg(spec: StencilSpec, isa: str = "avx2") -> MethodProfile:
    """Build the per-point instruction profile of the data-reorganisation method."""
    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    rows = kernel_rows(spec)
    width = innermost_width(spec)
    counts = InstructionCounts()
    # One aligned load per input row per output vector (neighbouring aligned
    # vectors are kept from the previous iteration), one store.
    counts.add(InstructionClass.LOAD, float(rows) / vl)
    counts.add(InstructionClass.STORE, 1.0 / vl)
    # Shifted operand vectors: (width - 1) per row, each built from two
    # aligned registers — one ``valignq`` on AVX-512, a blend (any port) plus
    # a lane-crossing permute on AVX-2.
    shifted = rows * max(0, width - 1)
    if isa_spec.name == "avx512":
        counts.add(InstructionClass.PERMUTE, float(shifted) / vl)
    else:
        counts.add(InstructionClass.PERMUTE, float(shifted) / vl)
        counts.add(InstructionClass.BLEND, float(shifted) / vl)
    counts = counts.merge(weighted_sum_counts(spec, vl))
    counts = counts.merge(post_rule_counts(spec, vl))
    return MethodProfile(
        method="data_reorg",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0,
        layout_overhead_sweeps=0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        notes="aligned loads + in-register shifts for every innermost offset",
    )
