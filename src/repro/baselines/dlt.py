"""Dimension-lifted transpose (DLT) baseline — Henretty et al.

The DLT method transposes the ``vl × (N/vl)`` matrix view of the innermost
dimension once before the time loop and once after it.  In the transformed
layout the lanes of one SIMD vector are ``N/vl`` elements apart, so every
stencil neighbour along the innermost dimension is simply the adjacent
*aligned* vector: the steady-state loop has no shuffles and no unaligned
loads.  The costs are (a) the two global transformation passes, (b) an extra
array because the transform is not done in place, (c) boundary-column fixups
every sweep, and (d) — the paper's key criticism — the loss of spatial
locality, which limits how well DLT composes with cache tiling.

Besides the instruction profile this module provides an **honest NumPy
executor** (:func:`dlt_run`) that really performs the computation in the DLT
layout, including the boundary-column fixups, and is validated against the
reference executor in the tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.common import (
    kernel_rows,
    post_rule_counts,
    streamed_arrays,
    weighted_sum_counts,
)
from repro.layout.dlt import from_dlt_layout, to_dlt_layout
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.profiles import MethodProfile
from repro.registry import register_method, set_executor
from repro.simd.isa import InstructionClass, isa_for
from repro.simd.machine import InstructionCounts
from repro.stencils.boundary import BoundaryCondition, DIRICHLET_VALUE
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


# --------------------------------------------------------------------------- #
# instruction profile
# --------------------------------------------------------------------------- #
@register_method(
    "dlt",
    label="DLT",
    figure_order=2,
    description="dimension-lifted transpose (Henretty et al.)",
)
def profile_dlt(spec: StencilSpec, isa: str = "avx2") -> MethodProfile:
    """Build the per-point instruction profile of the DLT method."""
    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    rows = kernel_rows(spec)
    counts = InstructionCounts()
    counts.add(InstructionClass.LOAD, float(rows) / vl)
    counts.add(InstructionClass.STORE, 1.0 / vl)
    counts = counts.merge(weighted_sum_counts(spec, vl))
    counts = counts.merge(post_rule_counts(spec, vl))
    return MethodProfile(
        method="dlt",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0,
        # One full read+write pass into the DLT layout before the time loop
        # and one back afterwards.
        layout_overhead_sweeps=2.0,
        extra_arrays=1,
        arrays=streamed_arrays(spec),
        notes="global dimension-lifted transpose; shuffle-free steady state",
    )


# --------------------------------------------------------------------------- #
# honest NumPy executor (computes in the DLT layout)
# --------------------------------------------------------------------------- #
def _dlt_view(array: np.ndarray, vl: int) -> np.ndarray:
    """View a DLT-layout innermost axis as ``(..., seg, vl)``."""
    n = array.shape[-1]
    seg = n // vl
    return array.reshape(array.shape[:-1] + (seg, vl))


def _shift_innermost_dlt(
    view: np.ndarray, k: int, boundary: BoundaryCondition
) -> np.ndarray:
    """Return the DLT view of the array shifted by ``k`` in *original* index space.

    ``view`` has shape ``(..., seg, vl)`` where element ``[..., j, r]`` is the
    original element ``r*seg + j``.  A shift by ``+k`` (with ``|k| < seg``)
    maps to a shift of the ``j`` axis, with the ``k`` columns that fall off
    the end wrapping into the next lane ``r+1`` — the boundary-column fixup
    of the DLT method.  The last lane wraps to the first lane of the periodic
    image (periodic) or reads the constant halo (Dirichlet).
    """
    if k == 0:
        return view
    seg = view.shape[-2]
    vl = view.shape[-1]
    if abs(k) >= seg:
        raise ValueError("DLT shift must be smaller than the segment length")
    out = np.empty_like(view)
    if k > 0:
        out[..., : seg - k, :] = view[..., k:, :]
        # Wrapped columns: original index r*seg + j with j >= seg-k maps to
        # element (r+1)*seg + (j+k-seg) -> view[..., j+k-seg, r+1].
        wrapped = np.empty_like(view[..., :k, :])
        wrapped[..., :, : vl - 1] = view[..., :k, 1:]
        if boundary is BoundaryCondition.PERIODIC:
            wrapped[..., :, vl - 1] = view[..., :k, 0]
        else:
            wrapped[..., :, vl - 1] = DIRICHLET_VALUE
        out[..., seg - k :, :] = wrapped
    else:
        k = -k
        out[..., k:, :] = view[..., : seg - k, :]
        wrapped = np.empty_like(view[..., :k, :])
        wrapped[..., :, 1:] = view[..., seg - k :, : vl - 1]
        if boundary is BoundaryCondition.PERIODIC:
            wrapped[..., :, 0] = view[..., seg - k :, vl - 1]
        else:
            wrapped[..., :, 0] = DIRICHLET_VALUE
        out[..., :k, :] = wrapped
    return out


def _shift_leading(
    array: np.ndarray, axis: int, k: int, boundary: BoundaryCondition
) -> np.ndarray:
    """Shift a non-innermost axis by ``k`` grid points (layout-independent)."""
    if k == 0:
        return array
    if boundary is BoundaryCondition.PERIODIC:
        return np.roll(array, -k, axis=axis)
    out = np.full_like(array, DIRICHLET_VALUE)
    n = array.shape[axis]
    src = [slice(None)] * array.ndim
    dst = [slice(None)] * array.ndim
    if k > 0:
        src[axis] = slice(k, n)
        dst[axis] = slice(0, n - k)
    else:
        src[axis] = slice(0, n + k)
        dst[axis] = slice(-k, n)
    out[tuple(dst)] = array[tuple(src)]
    return out


def dlt_step(
    spec: StencilSpec,
    dlt_values: np.ndarray,
    boundary: BoundaryCondition,
    vl: int,
    aux_dlt: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Advance a DLT-layout grid by one time step, staying in the DLT layout."""
    view = _dlt_view(dlt_values, vl)
    out = np.zeros_like(view)
    for offset, weight in spec.offsets_and_weights().items():
        shifted = view
        # Leading (non-innermost) offsets shift whole rows of the grid.
        for axis, off in enumerate(offset[:-1]):
            if off != 0:
                shifted = _shift_leading(shifted, axis, off, boundary)
        inner = offset[-1]
        if inner != 0:
            shifted = _shift_innermost_dlt(shifted, inner, boundary)
        out += weight * shifted
    result = out.reshape(dlt_values.shape)
    if spec.post_rule is not None:
        aux = None if aux_dlt is None else aux_dlt
        result = spec.post_rule(result, dlt_values, aux)
    return result


def dlt_run(spec: StencilSpec, grid: Grid, steps: int, vl: int = 4) -> np.ndarray:
    """Run ``steps`` time steps of ``spec`` entirely in the DLT layout.

    The grid is transformed into the DLT layout, updated ``steps`` times with
    :func:`dlt_step` (all neighbour accesses performed through the DLT index
    algebra, including boundary-column fixups), and transformed back.  The
    result equals the reference executor bit-for-bit up to FP reassociation.

    Parameters
    ----------
    spec:
        Stencil to execute.
    grid:
        Initial grid; its innermost extent must be divisible by ``vl``.
    steps:
        Number of time steps.
    vl:
        Vector length defining the DLT lifting factor.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    values = to_dlt_layout(grid.values, vl)
    aux = None if grid.aux is None else to_dlt_layout(grid.aux, vl)
    for _ in range(steps):
        values = dlt_step(spec, values, grid.boundary, vl, aux_dlt=aux)
    return from_dlt_layout(values, vl)


def dlt_run_1d(spec: StencilSpec, grid: Grid, steps: int, vl: int = 4) -> np.ndarray:
    """Backward-compatible alias of :func:`dlt_run` for 1-D grids."""
    if grid.dims != 1:
        raise ValueError("dlt_run_1d expects a 1-D grid")
    return dlt_run(spec, grid, steps, vl)


# --------------------------------------------------------------------------- #
# registry executor
# --------------------------------------------------------------------------- #
def _execute_dlt(plan, grid: Grid, steps: int) -> np.ndarray:
    """Numeric path of a compiled DLT plan: run in the DLT layout.

    Under a tiling configuration the plan's generic tessellated path takes
    over (DLT composes poorly with cache tiling — the paper's criticism —
    and the reproduction mirrors the engine's historical behaviour here).
    """
    if plan.config.tiling is not None:
        return plan.execute_generic(grid, steps)
    return dlt_run(spec=plan.spec, grid=grid, steps=steps, vl=plan.isa_spec.vector_lanes)


def _describe_dlt(plan) -> str:
    if plan.config.tiling is not None:
        return "tessellated tiles (tiling overrides the DLT layout executor)"
    return "dimension-lifted transpose layout, boundary-column fixups each sweep"


set_executor("dlt", _execute_dlt, describe_path=_describe_dlt)
