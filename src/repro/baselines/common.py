"""Shared geometry and accounting helpers for the vectorization baselines.

All the per-point instruction profiles reason about the same two geometric
quantities of a stencil kernel:

* the *innermost width* — how many distinct offsets the kernel spans along
  the contiguous dimension (this is what generates unaligned accesses /
  shuffles / assembled vectors), and
* the number of *rows* — distinct combinations of the non-innermost offsets
  with at least one non-zero weight (each row is one contiguous input stream
  the kernel must read).

The helpers here compute those from a :class:`~repro.stencils.spec.StencilSpec`
and provide the instruction-count additions shared by every method (the
non-linear post rules of APOP and Game of Life).
"""

from __future__ import annotations

import numpy as np

from repro.simd.isa import InstructionClass
from repro.simd.machine import InstructionCounts
from repro.stencils.spec import StencilSpec


def innermost_width(spec: StencilSpec) -> int:
    """Number of innermost-dimension offsets spanned by non-zero weights."""
    kernel = spec.kernel
    flat = kernel.reshape(-1, kernel.shape[-1])
    cols = np.any(flat != 0.0, axis=0)
    return int(np.count_nonzero(cols))


def kernel_rows(spec: StencilSpec) -> int:
    """Distinct non-innermost offset combinations with non-zero weights.

    1 for 1-D stencils, 3 for a 3×3 kernel, 5 for the 5-point star (its
    centre row plus two vertical neighbours and — no: the star's rows are the
    three leading offsets that carry any weight), 9 for a 3×3×3 box.
    """
    kernel = spec.kernel
    if kernel.ndim == 1:
        return 1
    flat = kernel.reshape(-1, kernel.shape[-1])
    rows = np.any(flat != 0.0, axis=1)
    return int(np.count_nonzero(rows))


def post_rule_counts(spec: StencilSpec, vl: int) -> InstructionCounts:
    """Extra per-point instructions charged for a non-linear post rule.

    APOP performs one vector ``max`` against the payoff array (which also
    costs one extra load stream); Game of Life maps the neighbour count
    through two compares and a select.  Linear stencils contribute nothing.
    """
    counts = InstructionCounts()
    if spec.post_rule is None:
        return counts
    if spec.aux_name is not None:
        counts.add(InstructionClass.LOAD, 1.0 / vl)
        counts.add(InstructionClass.MAX, 1.0 / vl)
    else:
        counts.add(InstructionClass.ARITH, 2.0 / vl)
        counts.add(InstructionClass.BLEND, 1.0 / vl)
    return counts


def weighted_sum_counts(spec: StencilSpec, vl: int) -> InstructionCounts:
    """Arithmetic of the plain weighted sum: one mul plus ``npoints-1`` FMAs."""
    counts = InstructionCounts()
    counts.add(InstructionClass.ARITH, 1.0 / vl)
    counts.add(InstructionClass.FMA, float(spec.npoints - 1) / vl)
    return counts


def streamed_arrays(spec: StencilSpec) -> int:
    """Grid-sized arrays streamed per sweep (2 for Jacobi, 3 with an aux array)."""
    return 3 if spec.aux_name is not None else 2
