"""Multiple-loads vectorization baseline.

This is the schedule a vectorizing compiler emits when it does not reorganise
data at all: for every stencil point, the operand vector is obtained with its
own (generally unaligned) vector load, and the update is a chain of FMAs.
It needs no shuffles, but it re-reads each input element ``npoints`` times
from the L1 cache and saturates the load ports, which is why the paper's
Figure 8 shows it as the slowest method at every storage level.

Numerically the method is identical to the reference executor (it computes
the same weighted sum in the same order), so no separate NumPy executor is
provided; the profile is what distinguishes it.
"""

from __future__ import annotations

from repro.baselines.common import (
    kernel_rows,
    post_rule_counts,
    streamed_arrays,
    weighted_sum_counts,
)
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.profiles import MethodProfile
from repro.registry import register_method
from repro.simd.isa import InstructionClass, isa_for
from repro.simd.machine import InstructionCounts
from repro.stencils.spec import StencilSpec


@register_method(
    "multiple_loads",
    label="Multiple Loads",
    figure_order=0,
    description="one unaligned vector load per stencil point (compiler fallback)",
)
def profile_multiple_loads(spec: StencilSpec, isa: str = "avx2") -> MethodProfile:
    """Build the per-point instruction profile of the multiple-loads method.

    Parameters
    ----------
    spec:
        The stencil being executed.
    isa:
        ``"avx2"`` or ``"avx512"`` (sets the vector length).
    """
    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    counts = InstructionCounts()
    # One vector load per stencil point per output vector, one store.  Only
    # the centre-offset load of each kernel row is aligned; the rest are
    # unaligned neighbour loads, each of which also drags along the indexed
    # address computation the compiler emits for it.
    rows = kernel_rows(spec)
    aligned = float(rows)
    unaligned = float(max(0, spec.npoints - rows))
    counts.add(InstructionClass.LOAD, aligned / vl)
    if unaligned:
        counts.add(InstructionClass.LOADU, unaligned / vl)
        counts.add(InstructionClass.SCALAR, unaligned / vl)
    counts.add(InstructionClass.STORE, 1.0 / vl)
    counts = counts.merge(weighted_sum_counts(spec, vl))
    counts = counts.merge(post_rule_counts(spec, vl))
    return MethodProfile(
        method="multiple_loads",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0,
        layout_overhead_sweeps=0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        notes="unaligned load per stencil point, no data reorganisation",
    )
