"""SDSL baseline: DLT vectorization + split tiling (Henretty et al., ICS'13).

The paper's multicore comparison uses the SDSL software package as the prior
state of the art that combines a vectorization-friendly layout (DLT) with
temporal tiling (nested/hybrid split tiling).  In this reproduction the
configuration is composed from the two pieces built elsewhere:

* the steady-state instruction profile of the DLT method
  (:func:`repro.baselines.dlt.profile_dlt`), and
* the temporal cache-reuse factors of split tiling under the DLT layout's
  locality penalty (:func:`repro.tiling.splittiling.split_tiling_cache_reuse`).

The numerical executor is :func:`repro.tiling.splittiling.split_tiling_run`
(the tile shapes are layout-independent; only the performance differs).
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.dlt import profile_dlt
from repro.machine import MachineSpec
from repro.perfmodel.profiles import MethodProfile
from repro.registry import register_method
from repro.stencils.spec import StencilSpec
from repro.tiling.splittiling import SplitTilingConfig, split_tiling_cache_reuse


@register_method(
    "sdsl",
    label="SDSL",
    profile_only=True,
    description="DLT vectorization + split tiling (prior state of the art)",
)
def profile_sdsl(
    spec: StencilSpec,
    isa: str,
    config: SplitTilingConfig,
    grid_shape: Sequence[int],
    machine: MachineSpec,
    hybrid_blocks: Sequence[int] | None = None,
) -> MethodProfile:
    """Build the SDSL (DLT + split tiling) performance profile.

    Parameters
    ----------
    spec:
        Stencil being executed.
    isa:
        ``"avx2"`` or ``"avx512"``.
    config:
        Split-tiling block size and time range.  SDSL's published
        configurations use shallow time blocks (the DLT boundary-column
        fixups are paid at every tile face and every time level), so callers
        typically cap the time range well below what tessellation uses.
    grid_shape:
        Spatial problem size (the streamed dimensions enter the tile
        footprint).
    machine:
        Machine description providing the cache capacities.
    hybrid_blocks:
        Spatial block sizes of the hybrid tiling applied to the non-split
        dimensions of multi-dimensional stencils (``None`` = streamed).
    """
    base = profile_dlt(spec, isa)
    caches = [(lvl.name, lvl.capacity_bytes) for lvl in machine.caches]
    bytes_per_point = 8.0 * base.arrays
    reuse = split_tiling_cache_reuse(
        config,
        grid_shape,
        spec.radius,
        bytes_per_point,
        caches,
        hybrid_blocks=hybrid_blocks,
    )
    profile = base.with_tiling(reuse, notes="SDSL: DLT layout + split tiling")
    profile.method = "sdsl"
    return profile
