"""Baseline vectorization methods the paper compares against.

* :mod:`repro.baselines.multiple_loads` — the straightforward vectorization
  the compiler falls back to: one (mostly unaligned) vector load per stencil
  point, no data reorganisation,
* :mod:`repro.baselines.data_reorg` — aligned loads plus in-register
  reorganisation (shift/permute chains) to build the shifted operand
  vectors,
* :mod:`repro.baselines.dlt` — the dimension-lifted transpose of Henretty et
  al.: global layout transform, shuffle-free steady state, plus an honest
  NumPy executor that really computes in the DLT layout,
* :mod:`repro.baselines.sdsl` — the SDSL configuration used in the paper's
  multicore comparison: DLT-style vectorization combined with split tiling.

Each module exposes a ``profile(spec, isa)`` builder returning a
:class:`repro.perfmodel.profiles.MethodProfile`; the profiles are registered
with the method registry in :mod:`repro.methods`.
"""

from repro.baselines.multiple_loads import profile_multiple_loads
from repro.baselines.data_reorg import profile_data_reorg
from repro.baselines.dlt import profile_dlt, dlt_run_1d, dlt_run
from repro.baselines.sdsl import profile_sdsl

__all__ = [
    "profile_multiple_loads",
    "profile_data_reorg",
    "profile_dlt",
    "dlt_run_1d",
    "dlt_run",
    "profile_sdsl",
]
