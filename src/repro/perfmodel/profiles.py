"""Method profiles: the interface between schedules and the cost model.

A :class:`MethodProfile` captures everything the cost model needs to know
about one (stencil, vectorization method) pair:

* the steady-state instruction mix per grid point per *logical* time step,
* how many passes over the working set a time step costs (temporal folding
  advances ``m`` steps per pass, so its value is ``1/m``),
* one-off layout transformation overheads (DLT's global transposes),
* how many grid-sized arrays the method keeps live (DLT needs an extra one),
* the useful flops per point per step, which the GFLOP/s metric is defined
  over (identical for every method — that is the point of reporting
  GFLOP/s).

Profiles are pure data: they are produced by the schedule analyses in
:mod:`repro.core` and :mod:`repro.baselines` and consumed by
:mod:`repro.perfmodel.costmodel`, the multicore model and the experiment
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.simd.machine import InstructionCounts


@dataclass
class MethodProfile:
    """Steady-state execution profile of one method on one stencil.

    Attributes
    ----------
    method:
        Method key (``"multiple_loads"``, ``"data_reorg"``, ``"dlt"``,
        ``"transpose"``, ``"folded"``, ...).
    stencil:
        Stencil name the profile was derived for.
    isa:
        ``"avx2"`` or ``"avx512"``.
    counts_per_point:
        Vector instructions per grid point per logical time step.
    flops_per_point:
        Useful floating-point operations per grid point per time step (the
        numerator of GFLOP/s).
    sweeps_per_step:
        Full passes over the working set per logical time step (``1.0``
        normally, ``1/m`` with m-step temporal folding).
    layout_overhead_sweeps:
        Extra full read+write passes executed once for the whole run (DLT's
        pre/post transposes); the cost model amortises them over the time
        steps.
    extra_arrays:
        Grid-sized arrays required beyond the two Jacobi arrays (DLT's
        transposed copy).
    temporal_cache_reuse:
        Per-level reuse factors contributed by temporal tiling: a tile kept
        resident in level ``L`` for ``t`` time steps divides traffic through
        ``L`` by ``t``.  Empty when no temporal blocking is applied.
    arrays:
        Number of grid-sized arrays streamed per sweep (2 for Jacobi, 3 for
        APOP which also reads the payoff array).
    chain_cycles_per_point:
        Latency-weighted dependency-graph critical path of the steady-state
        schedule per grid point per logical time step (zero for methods
        without a lowered IR).  Report-only: independent block iterations
        overlap in the out-of-order core, so the chain does not bound
        throughput — but it is the quantity the graph-enabled IR passes
        (``split-accum`` in particular) shorten, and the estimate surfaces
        it as a diagnostic.
    notes:
        Free-form description used in reports.
    """

    method: str
    stencil: str
    isa: str
    counts_per_point: InstructionCounts
    flops_per_point: float
    sweeps_per_step: float = 1.0
    layout_overhead_sweeps: float = 0.0
    extra_arrays: int = 0
    temporal_cache_reuse: Dict[str, float] = field(default_factory=dict)
    arrays: int = 2
    chain_cycles_per_point: float = 0.0
    notes: str = ""

    def with_tiling(self, reuse: Dict[str, float], notes: Optional[str] = None) -> "MethodProfile":
        """Return a copy of the profile with temporal tiling reuse applied.

        Used by the multicore experiments, which combine every vectorization
        method with a tiling framework (tessellation for ours and the
        tessellation baseline, split tiling for SDSL).
        """
        merged = dict(self.temporal_cache_reuse)
        for level, factor in reuse.items():
            merged[level] = max(merged.get(level, 1.0), float(factor))
        return MethodProfile(
            method=self.method,
            stencil=self.stencil,
            isa=self.isa,
            counts_per_point=self.counts_per_point,
            flops_per_point=self.flops_per_point,
            sweeps_per_step=self.sweeps_per_step,
            layout_overhead_sweeps=self.layout_overhead_sweeps,
            extra_arrays=self.extra_arrays,
            temporal_cache_reuse=merged,
            arrays=self.arrays,
            chain_cycles_per_point=self.chain_cycles_per_point,
            notes=notes if notes is not None else self.notes,
        )

    @property
    def data_organization_per_point(self) -> float:
        """Shuffle/permute/blend/broadcast instructions per point per step."""
        return self.counts_per_point.data_organization

    @property
    def arithmetic_per_point(self) -> float:
        """Arithmetic vector instructions per point per step."""
        return self.counts_per_point.arithmetic
