"""Analytic performance model.

Converts the per-point instruction profiles of the execution schedules plus
the cache-traffic estimates into cycles and GFLOP/s on the paper's machine,
using a port-pressure compute model combined with a roofline-style memory
bound.  This is the layer that turns "our scheme issues fewer
data-organisation instructions and halves the sweeps per time step" into the
Figure 8/9/10 style numbers the harness reports.
"""

from repro.perfmodel.profiles import MethodProfile
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.costmodel import PerformanceEstimate, estimate_performance

__all__ = [
    "MethodProfile",
    "useful_flops_per_point",
    "PerformanceEstimate",
    "estimate_performance",
]
