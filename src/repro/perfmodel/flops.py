"""Useful-flop accounting.

GFLOP/s figures in the stencil literature (and in the paper) are defined
over the *algorithmic* flops of the plain stencil update — one multiply per
non-zero weight and one add per additional term — regardless of how a
particular method rearranges or reduces the actual arithmetic.  Temporal
folding therefore *raises* reported GFLOP/s precisely because it performs the
same useful work in less time, which is the effect the paper measures.
"""

from __future__ import annotations

from repro.stencils.spec import StencilSpec


def useful_flops_per_point(spec: StencilSpec) -> float:
    """Useful flops per grid point per time step for ``spec``.

    ``2 * npoints - 1`` (multiplies plus adds of the weighted sum).  The
    elementwise nonlinearity of APOP / Game of Life is conventionally not
    counted.
    """
    return float(2 * spec.npoints - 1)


def total_useful_gflop(spec: StencilSpec, npoints: int, steps: int) -> float:
    """Total useful GFLOP of a run over ``npoints`` points and ``steps`` steps."""
    if npoints < 0 or steps < 0:
        raise ValueError("npoints and steps must be non-negative")
    return useful_flops_per_point(spec) * npoints * steps / 1e9
