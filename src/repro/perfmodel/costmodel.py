"""Port-pressure + roofline cost model.

Given a :class:`~repro.perfmodel.profiles.MethodProfile`, a problem size and
a machine description, the model estimates the steady-state cycles per grid
point per time step as

``cycles/point = max(compute, L2 traffic, L3 traffic, DRAM traffic) + overheads``

* **compute** — issue-port pressure: instructions of each class are spread
  over the ports that can execute them (Skylake-SP: FMA/add/mul on ports 0/1,
  shuffles and lane-crossing permutes on port 5, loads on 2/3, stores on 4);
  the busiest port bounds the throughput.  This is what makes the paper's
  "data reorganisation can be overlapped by arithmetic" argument quantitative:
  shuffles only cost time once port 5 becomes the bottleneck.
* **memory** — per-level traffic from the analytic working-set model divided
  by the per-level bandwidth (DRAM bandwidth is shared between active cores
  and scaled by the AVX-512 frequency throttling).

The absolute numbers are *model* numbers — the reproduction does not claim
cycle accuracy — but the relative ordering and the crossover behaviour track
the paper's measurements, which is what the experiments assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cache.analytic import estimate_traffic
from repro.machine import MachineSpec
from repro.perfmodel.profiles import MethodProfile
from repro.simd.isa import IsaSpec, isa_for


@dataclass
class PerformanceEstimate:
    """Modelled performance of one method on one problem configuration.

    Attributes
    ----------
    gflops:
        Aggregate useful GFLOP/s over all active cores.
    gflops_per_core:
        Useful GFLOP/s of one core.
    cycles_per_point:
        Modelled core cycles per grid point per time step (including the
        amortised layout overhead and parallel overheads added by the caller).
    compute_cycles_per_point:
        The compute (port-pressure) component.
    memory_cycles_per_point:
        Per-level memory components, keyed by level name.
    bound:
        Name of the binding resource (``"compute"``, ``"L2"``, ``"L3"``,
        ``"Memory"``).
    frequency_ghz:
        Clock frequency used for the conversion.
    residency:
        Innermost cache level holding the working set.
    chain_cycles_per_point:
        Latency-weighted critical path of the IR's dependency graph per
        steady-state point (zero when the profile carries no IR).  This is
        the *serial-dependence* diagnostic the graph passes attack — it is
        reported, not folded into ``cycles_per_point``, because the batched
        block iterations are mutually independent and overlap in the
        out-of-order window, so throughput is port/memory bound while the
        chain bound only limits a single iteration in isolation.
    """

    gflops: float
    gflops_per_core: float
    cycles_per_point: float
    compute_cycles_per_point: float
    memory_cycles_per_point: Dict[str, float] = field(default_factory=dict)
    bound: str = "compute"
    frequency_ghz: float = 0.0
    residency: str = "Memory"
    chain_cycles_per_point: float = 0.0

    @property
    def chain_limited(self) -> bool:
        """Whether the serial dependence chain exceeds the throughput bound
        (a single block iteration cannot reach the modelled throughput
        without overlap from neighbouring iterations)."""
        return self.chain_cycles_per_point > self.cycles_per_point


def port_pressure_cycles(counts, isa: IsaSpec) -> float:
    """Cycles per point implied by issue-port pressure for ``counts``.

    Each instruction class contributes ``count × rthroughput`` cycles of port
    occupancy.  The occupancy is distributed over the class's legal ports the
    way an out-of-order scheduler would: the most port-constrained classes
    are placed first and every class's work is water-filled onto its
    currently least-loaded ports, so e.g. FMAs move off port 5 when the
    shuffles of a register transpose already occupy it.  The busiest port is
    the compute bound; a second bound of total instructions over the 4-wide
    issue width is also applied (it rarely binds for these kernels).
    """
    port_load: Dict[str, float] = {}
    total = 0.0
    # Most-constrained classes (fewest legal ports) are scheduled first.
    items = sorted(
        (item for item in counts.counts.items() if item[1] > 0),
        key=lambda item: len(isa.timing(item[0]).ports),
    )
    for cls, count in items:
        timing = isa.timing(cls)
        work = count * timing.rthroughput
        total += count
        ports = list(timing.ports)
        for port in ports:
            port_load.setdefault(port, 0.0)
        remaining = work
        # Water-fill: raise the least-loaded legal ports together until the
        # class's occupancy is exhausted.
        while remaining > 1e-12:
            lowest = min(port_load[p] for p in ports)
            tied = [p for p in ports if port_load[p] - lowest < 1e-12]
            higher = [port_load[p] for p in ports if port_load[p] - lowest >= 1e-12]
            if higher:
                headroom = (min(higher) - lowest) * len(tied)
                if remaining <= headroom:
                    share = remaining / len(tied)
                    for p in tied:
                        port_load[p] += share
                    remaining = 0.0
                else:
                    lift = min(higher) - lowest
                    for p in tied:
                        port_load[p] += lift
                    remaining -= headroom
            else:
                share = remaining / len(tied)
                for p in tied:
                    port_load[p] += share
                remaining = 0.0
    busiest = max(port_load.values()) if port_load else 0.0
    issue_bound = total / 4.0
    return max(busiest, issue_bound)


def estimate_performance(
    profile: MethodProfile,
    npoints: int,
    time_steps: int,
    machine: MachineSpec,
    active_cores: int = 1,
    points_per_core: Optional[int] = None,
    sync_overhead_cycles_per_point: float = 0.0,
) -> PerformanceEstimate:
    """Estimate performance of ``profile`` on ``npoints`` grid points.

    Parameters
    ----------
    profile:
        The method profile (instruction mix, sweeps per step, tiling reuse).
    npoints:
        Total grid points of the problem.
    time_steps:
        Total time steps (used to amortise layout transformation overheads).
    machine:
        Machine description (must match the profile's ISA family for the
        numbers to be meaningful).
    active_cores:
        Cores executing the kernel; memory bandwidth and clock frequency are
        adjusted accordingly.
    points_per_core:
        Grid points handled by one core (defaults to an even split); the
        per-core working set decides the cache residency.
    sync_overhead_cycles_per_point:
        Additional cycles per point charged by the caller for tile-scheduling
        synchronisation (used by the multicore model).
    """
    if npoints <= 0 or time_steps <= 0:
        raise ValueError("npoints and time_steps must be positive")
    if active_cores < 1:
        raise ValueError("active_cores must be >= 1")
    isa = isa_for(profile.isa)
    avx512 = profile.isa == "avx512"
    freq = machine.frequency.effective_ghz(active_cores, machine.total_cores, avx512)

    # ------------------------------------------------------------------ #
    # compute component
    # ------------------------------------------------------------------ #
    compute = port_pressure_cycles(profile.counts_per_point, isa)

    # ------------------------------------------------------------------ #
    # memory component
    # ------------------------------------------------------------------ #
    if points_per_core is None:
        points_per_core = max(1, npoints // active_cores)
    bytes_per_point = 8.0 * (profile.arrays + profile.extra_arrays)
    working_set = bytes_per_point * points_per_core
    extra_mem_sweeps = profile.layout_overhead_sweeps / time_steps
    traffic = estimate_traffic(
        working_set_bytes=working_set,
        machine=machine,
        sweeps_per_step=profile.sweeps_per_step,
        temporal_reuse=profile.temporal_cache_reuse,
        extra_memory_sweeps_per_step=extra_mem_sweeps,
        cores_sharing_l3=(
            active_cores if active_cores <= machine.cores_per_socket else machine.cores_per_socket
        ),
    )

    memory_cycles: Dict[str, float] = {}
    for level in machine.caches[1:]:
        bytes_moved = traffic.bytes_from(level.name)
        if bytes_moved > 0:
            memory_cycles[level.name] = bytes_moved / level.bandwidth_bytes_per_cycle
    dram_bytes = traffic.bytes_from("Memory")
    if dram_bytes > 0:
        dram_bpc = machine.memory_bytes_per_cycle(active_cores, avx512)
        memory_cycles["Memory"] = dram_bytes / dram_bpc

    # ------------------------------------------------------------------ #
    # combine
    # ------------------------------------------------------------------ #
    worst_memory = max(memory_cycles.values()) if memory_cycles else 0.0
    cycles = max(compute, worst_memory) + sync_overhead_cycles_per_point
    if cycles <= 0:
        raise RuntimeError("cost model produced non-positive cycles per point")
    if compute >= worst_memory:
        bound = "compute"
    else:
        bound = max(memory_cycles, key=memory_cycles.get)

    seconds_per_point = cycles / (freq * 1e9)
    gflops_core = profile.flops_per_point / seconds_per_point / 1e9
    return PerformanceEstimate(
        gflops=gflops_core * active_cores,
        gflops_per_core=gflops_core,
        cycles_per_point=cycles,
        compute_cycles_per_point=compute,
        memory_cycles_per_point=memory_cycles,
        bound=bound,
        frequency_ghz=freq,
        residency=traffic.residency,
        chain_cycles_per_point=getattr(profile, "chain_cycles_per_point", 0.0),
    )
