"""Validated execution options shared by every backend-selecting surface.

``CompiledPlan.run``/``simulate``/``measure``, the measurement harness and
the service protocol all accept the same keyword trio — ``backend=`` (which
execution engine), ``optimize=`` (which IR pass pipeline) and ``passes=``
(an explicit pass list, sugar for ``optimize=<sequence>``).  Historically
each entry point validated the trio separately; :class:`ExecutionOptions`
is now the single source of truth for the allowed combinations:

* ``backend`` must name a registered execution backend
  (:data:`repro.backend.EXECUTION_BACKENDS`), plus ``"auto"`` where the
  context supports method-native execution (``run``/``measure``);
* ``optimize`` only applies to backends that compile the typed IR (trace,
  kernel) — the interpreter executes the schedule as recorded, and the
  ``auto`` path has no IR to optimize;
* ``passes`` and a non-default ``optimize`` are mutually exclusive
  spellings of the same decision.

Old keyword spellings keep working everywhere: the entry points normalize
them through :meth:`ExecutionOptions.normalize` and then agree, to the
character, on what is allowed and what the error says.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

__all__ = ["ExecutionOptions"]

#: Per-entry-point defaults: the backend used when none is named, whether
#: the method-native ``"auto"`` engine is allowed, and the noun used in
#: error messages (kept identical to the pre-unification messages).
_CONTEXTS: Dict[str, Dict[str, Any]] = {
    "run": {"default": "auto", "allow_auto": True, "label": "execution"},
    "simulate": {"default": "trace", "allow_auto": False, "label": "simulation"},
    "measure": {"default": "kernel", "allow_auto": True, "label": "execution"},
}


@dataclass(frozen=True)
class ExecutionOptions:
    """One validated (backend, pass-pipeline) execution decision.

    Attributes
    ----------
    backend:
        ``"auto"`` (method-native execution) or a registered execution
        backend key (``"kernel"``, ``"trace"``, ``"interpret"``).
    optimize:
        Normalized pass-pipeline selection: ``False`` (replay as recorded),
        ``True`` (the default optimizing pipeline) or a tuple of pass
        names/callables.  ``None`` and empty sequences normalize to
        ``False`` — one spelling, one cache entry.
    """

    backend: str = "auto"
    optimize: Union[bool, Tuple[Any, ...]] = False

    @classmethod
    def normalize(
        cls,
        backend: Optional[str] = None,
        optimize: Union[bool, Sequence, None] = False,
        passes: Optional[Sequence] = None,
        options: Optional["ExecutionOptions"] = None,
        context: str = "run",
    ) -> "ExecutionOptions":
        """Validate the keyword trio (or re-validate ``options``) for ``context``.

        ``context`` is ``"run"``, ``"simulate"`` or ``"measure"`` — it picks
        the default backend and whether ``"auto"`` is allowed.  Raises
        ``ValueError`` with the entry point's historical message for every
        disallowed combination.
        """
        try:
            spec = _CONTEXTS[context]
        except KeyError:
            raise ValueError(
                f"unknown execution context {context!r}; expected one of {tuple(_CONTEXTS)}"
            ) from None
        if options is not None:
            if backend is not None or optimize is not False or passes is not None:
                raise ValueError(
                    "pass an ExecutionOptions or the backend=/optimize=/passes= "
                    "keywords, not both"
                )
            backend, optimize = options.backend, options.optimize
        if passes is not None:
            if optimize is not False and optimize is not None:
                raise ValueError("pass either optimize= or passes=, not both")
            optimize = tuple(passes)
        # False, None and an explicitly empty pass sequence all mean "no
        # optimization" — one spelling, one cache entry.
        if optimize is not True and not optimize:
            optimize = False
        elif optimize is not True:
            optimize = tuple(optimize)
        backend = spec["default"] if backend is None else str(backend).strip().lower()
        allowed = cls.allowed_backends(context)
        if backend not in allowed:
            quoted = [f"'{name}'" for name in allowed]
            raise ValueError(
                f"unknown {spec['label']} backend {backend!r}; "
                f"expected {', '.join(quoted[:-1])} or {quoted[-1]}"
            )
        if optimize is not False:
            if backend == "auto":
                raise ValueError("optimize= requires an explicit execution backend")
            if backend == "interpret":
                raise ValueError("optimize= applies to the trace and kernel backends only")
        return cls(backend=backend, optimize=optimize)

    @classmethod
    def allowed_backends(cls, context: str = "run") -> Tuple[str, ...]:
        """Backends ``context`` accepts, default first (the single source of
        truth is the :data:`repro.backend.EXECUTION_BACKENDS` registry)."""
        from repro.backend import backend_keys

        spec = _CONTEXTS[context]
        ordered = [spec["default"]] if spec["allow_auto"] else []
        for key in (spec["default"], *reversed(backend_keys())):
            if key not in ordered and (spec["allow_auto"] or key != "auto"):
                ordered.append(key)
        return tuple(ordered)

    @property
    def explicit(self) -> bool:
        """Whether a register-level engine was named (not method-native)."""
        return self.backend != "auto"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (callable pipelines degrade to their names)."""
        if isinstance(self.optimize, bool):
            optimize: Any = self.optimize
        else:
            optimize = [getattr(p, "__name__", p) if callable(p) else p for p in self.optimize]
        return {"backend": self.backend, "optimize": optimize}
