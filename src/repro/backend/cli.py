"""``repro-measure`` — time one benchmark config on an execution backend.

Builds a plan for one library stencil, runs the cost model and the
measurement harness (:mod:`repro.backend.measure`) on the same workload, and
prints the estimated vs measured cycles per point as one JSON document::

    repro-measure 2d9p --isa avx512 --steps 8 --repeats 5
    repro-measure 1d-heat --backend trace --shape 1048576
    repro-measure 3d-heat --optimize --json-indent 0

The measured figure is converted with the estimate's effective frequency,
so both numbers sit on the cost model's cycles-per-point axis; the
``measured_over_estimated`` ratio is the Python/NumPy interpretation gap
the generated megakernel (and any future native target) is closing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.backend import backend_keys
from repro.backend.measure import measured_vs_estimated
from repro.core.plan import plan
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.library import BENCHMARKS, get_benchmark

__all__ = ["main", "default_shape"]


def default_shape(dims: int, vl: int) -> Tuple[int, ...]:
    """A steady-state-sized default grid in the schedule's block multiples."""
    if dims == 1:
        return (256 * vl * vl,)
    if dims == 2:
        return (16 * vl, 16 * vl)
    return (4, 8 * vl, 8 * vl)


def _parse_shape(text: str) -> Tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid shape {text!r}; expected e.g. 256,256")
    if not shape or any(extent < 1 for extent in shape):
        raise argparse.ArgumentTypeError(f"invalid shape {text!r}; extents must be >= 1")
    return shape


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-measure",
        description=(
            "Time one benchmark stencil on an execution backend and print "
            "estimated vs measured cycles per point as JSON."
        ),
    )
    parser.add_argument(
        "stencil", metavar="STENCIL", help=f"benchmark key ({', '.join(BENCHMARKS)})"
    )
    parser.add_argument("--method", default="folded", help="execution method (default: folded)")
    parser.add_argument(
        "--isa", choices=("avx2", "avx512"), default="avx2", help="instruction set"
    )
    parser.add_argument(
        "-m", "--unroll", type=int, default=2, metavar="M", help="temporal folding factor"
    )
    parser.add_argument(
        "--shape",
        type=_parse_shape,
        default=None,
        metavar="N[,N...]",
        help="grid extents, comma-separated (default: a steady-state size for the stencil)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, metavar="T", help="time steps (default: 4*m)"
    )
    parser.add_argument(
        "--backend",
        choices=backend_keys(),
        default="kernel",
        help="execution backend to measure (default: kernel)",
    )
    parser.add_argument(
        "--optimize", action="store_true", help="run the default IR pass pipeline first"
    )
    parser.add_argument(
        "--warmup", type=int, default=1, metavar="N", help="untimed warmup runs (default: 1)"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, metavar="N", help="timed repeats (default: 5)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S", help="RNG seed for the grid values"
    )
    parser.add_argument(
        "--json-indent",
        type=int,
        default=2,
        metavar="N",
        help="JSON indentation (0 prints one compact line)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: print one measured-vs-estimated JSON document."""
    args = _build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    try:
        case = get_benchmark(args.stencil)
        compiled = (
            plan(case.spec).method(args.method).isa(args.isa).unroll(args.unroll).compile()
        )
        shape = args.shape or default_shape(case.spec.dims, compiled.isa_spec.vector_lanes)
        steps = args.steps if args.steps is not None else 4 * compiled.steps_per_update
        values = np.random.default_rng(args.seed).random(shape)
        grid = Grid(values, boundary=BoundaryCondition.PERIODIC)
        optimize = bool(args.optimize)
        if optimize and args.backend == "interpret":
            raise ValueError("--optimize applies to the trace and kernel backends only")
        report = measured_vs_estimated(
            compiled,
            grid,
            steps,
            backend=args.backend,
            optimize=optimize,
            warmup=args.warmup,
            repeats=args.repeats,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    indent = args.json_indent if args.json_indent > 0 else None
    print(json.dumps(report, indent=indent, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
