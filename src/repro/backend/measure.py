"""Wall-clock measurement of plan execution, on any backend.

The cost model *predicts* cycles per point from instruction counts and port
pressure; this module *measures* them: warmup + repeated timed runs of
``CompiledPlan.run(grid, steps, backend=...)``, summarized by the median (the
robust central estimate under scheduler noise), and converted onto the cost
model's axis — cycles per grid point per time step at an assumed clock
frequency — so estimated and measured cost become directly comparable
(the ``measured_vs_estimated`` harness experiment and the ``repro-measure``
CLI both sit on top of :func:`measured_vs_estimated`).

Every timing entry point takes an injectable ``clock`` (any zero-argument
callable returning monotonically non-decreasing seconds; defaults to
:func:`time.perf_counter`).  Tests pass a fake clock and assert exact
medians and cycle conversions — tier-1 never asserts on real wall-clock.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = [
    "Measurement",
    "BackendMeasurement",
    "measure_callable",
    "measure_backend",
    "measured_vs_estimated",
]

Clock = Callable[[], float]


@dataclass(frozen=True)
class Measurement:
    """Timed samples of one repeated callable (seconds, warmup excluded).

    ``samples`` holds only the timed repeats; the ``warmup`` calls ran before
    the first sample and are never included (they absorb one-time costs —
    kernel code generation, cache population, allocator warmup).
    """

    samples: Tuple[float, ...]
    warmup: int = 0

    @property
    def repeats(self) -> int:
        """Number of timed samples."""
        return len(self.samples)

    @property
    def median_seconds(self) -> float:
        """Median of the timed samples — the headline statistic."""
        return statistics.median(self.samples)

    @property
    def best_seconds(self) -> float:
        """Fastest sample (the least-perturbed run)."""
        return min(self.samples)

    @property
    def mean_seconds(self) -> float:
        """Arithmetic mean of the timed samples."""
        return statistics.fmean(self.samples)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (samples included for reproducibility)."""
        return {
            "median_seconds": self.median_seconds,
            "best_seconds": self.best_seconds,
            "mean_seconds": self.mean_seconds,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "samples": list(self.samples),
        }


def measure_callable(
    fn: Callable[[], Any],
    warmup: int = 1,
    repeats: int = 5,
    clock: Optional[Clock] = None,
) -> Measurement:
    """Time ``fn()``: ``warmup`` untimed calls, then ``repeats`` timed ones.

    ``clock`` is sampled immediately before and after each timed call; the
    default is :func:`time.perf_counter`.  At least one timed repeat is
    required (the median of nothing is undefined).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    clock = clock or time.perf_counter
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = clock()
        fn()
        samples.append(clock() - start)
    return Measurement(samples=tuple(samples), warmup=warmup)


@dataclass(frozen=True)
class BackendMeasurement:
    """One backend's measured execution of a concrete (grid, steps) workload.

    ``points`` is the grid size, ``steps`` the logical time steps each timed
    run advanced, so ``points * steps`` point-updates happened per sample;
    :meth:`cycles_per_point` converts the median onto the cost model's axis
    for any assumed core frequency.
    """

    backend: str
    measurement: Measurement
    points: int
    steps: int
    sweeps: int

    @property
    def median_seconds(self) -> float:
        """Median seconds of one full ``steps``-step run."""
        return self.measurement.median_seconds

    @property
    def seconds_per_point(self) -> float:
        """Median seconds per grid-point update."""
        return self.median_seconds / (self.points * self.steps)

    def cycles_per_point(self, frequency_ghz: float) -> float:
        """Measured cycles per point per time step at ``frequency_ghz``.

        Using the *model's* effective frequency puts the measurement on the
        same axis as :attr:`PerformanceEstimate.cycles_per_point`, which is
        what makes estimated and measured cost directly comparable.
        """
        if frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        return self.seconds_per_point * frequency_ghz * 1e9

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary."""
        return {
            "backend": self.backend,
            "points": self.points,
            "steps": self.steps,
            "sweeps": self.sweeps,
            **self.measurement.to_dict(),
        }


def measure_backend(
    plan: Any,
    grid: Any,
    steps: int,
    backend: Optional[str] = "kernel",
    optimize: Any = False,
    warmup: int = 1,
    repeats: int = 5,
    clock: Optional[Clock] = None,
    options: Any = None,
) -> BackendMeasurement:
    """Measure ``plan.run(grid, steps, backend=backend)`` wall-clock.

    The warmup runs trigger (and therefore exclude) one-time compilation:
    schedule lowering, pass pipelines and kernel code generation all hit
    their caches before the first timed sample.  ``steps`` must be positive —
    measuring an empty run says nothing.  ``optimize`` selects the IR pass
    pipeline of a trace/kernel backend, as in :meth:`CompiledPlan.simulate`;
    ``options`` passes a pre-validated
    :class:`~repro.backend.ExecutionOptions` instead of the keyword pair.
    """
    from repro.backend.options import ExecutionOptions

    if steps < 1:
        raise ValueError("steps must be >= 1")
    opts = ExecutionOptions.normalize(
        backend=None if backend == "kernel" else backend,
        optimize=optimize,
        options=options,
        context="measure",
    )
    backend, optimize = opts.backend, opts.optimize
    m = plan.steps_per_update
    fn = lambda: plan.run(grid, steps, backend=backend, optimize=optimize)  # noqa: E731
    measurement = measure_callable(fn, warmup=warmup, repeats=repeats, clock=clock)
    return BackendMeasurement(
        backend=backend,
        measurement=measurement,
        points=int(grid.values.size),
        steps=int(steps),
        sweeps=int(steps) // m,
    )


def measured_vs_estimated(
    plan: Any,
    grid: Any,
    steps: int,
    backend: str = "kernel",
    optimize: Any = False,
    machine: Any = None,
    cores: int = 1,
    warmup: int = 1,
    repeats: int = 5,
    clock: Optional[Clock] = None,
) -> Dict[str, Any]:
    """Model-estimated vs measured cycles per point, on one shared axis.

    Runs the cost model (:meth:`CompiledPlan.estimate`) and the measurement
    harness on the same workload, converting the measured seconds with the
    *estimate's* effective frequency, and reports both figures side by side
    with their ratio (``> 1`` means the generated code is slower than the
    hardware model predicts — the Python/NumPy interpretation gap the native
    targets exist to close).
    """
    estimate = plan.estimate(grid.values.shape, steps, cores=cores, machine=machine)
    measured = measure_backend(
        plan,
        grid,
        steps,
        backend=backend,
        optimize=optimize,
        warmup=warmup,
        repeats=repeats,
        clock=clock,
    )
    estimated_cpp = estimate.cycles_per_point
    measured_cpp = measured.cycles_per_point(estimate.frequency_ghz)
    return {
        "stencil": plan.spec.name,
        "method": plan.method_key,
        "isa": plan.config.isa,
        "m": plan.config.unroll,
        "backend": backend,
        "optimize": optimize if isinstance(optimize, bool) else list(optimize or ()),
        "shape": list(grid.values.shape),
        "steps": int(steps),
        "points": measured.points,
        "frequency_ghz": estimate.frequency_ghz,
        "estimated_cycles_per_point": estimated_cpp,
        "measured_cycles_per_point": measured_cpp,
        "measured_over_estimated": (
            measured_cpp / estimated_cpp if estimated_cpp > 0 else float("inf")
        ),
        "median_seconds": measured.median_seconds,
        "bound": getattr(estimate, "bound", None),
        "repeats": measured.measurement.repeats,
        "warmup": measured.measurement.warmup,
    }
