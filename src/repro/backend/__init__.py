"""Generated-megakernel execution backend and its measurement harness.

The third execution engine next to the interpreted schedule and the batched
trace replay: :mod:`repro.backend.codegen` walks an optimized
:class:`~repro.ir.ops.ScheduleIR` and emits one fused NumPy megakernel per
program — generated Python source compiled with ``exec``, cached by content
key, with an optional ``numba`` njit target behind the ``[numba]`` extra
that falls back cleanly when the package is absent.
:mod:`repro.backend.measure` times any backend (warmup / repeats / median,
injectable clock) and puts measured cycles-per-point on the cost model's
estimated axis.

:data:`EXECUTION_BACKENDS` is the one registry of backend names the whole
stack validates against — ``CompiledPlan.simulate``/``run``, the service
protocol's ``backend`` request field and the ``repro-measure`` CLI all
accept exactly these keys.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.backend.codegen import (
    KernelProgram,
    clear_kernel_cache,
    compile_kernel,
    generate_kernel_source,
    kernel_cache_stats,
    kernel_content_key,
)
from repro.backend.measure import (
    BackendMeasurement,
    Measurement,
    measure_backend,
    measure_callable,
    measured_vs_estimated,
)

__all__ = [
    "EXECUTION_BACKENDS",
    "backend_keys",
    "is_backend",
    "ExecutionOptions",
    "KernelProgram",
    "compile_kernel",
    "generate_kernel_source",
    "kernel_content_key",
    "kernel_cache_stats",
    "clear_kernel_cache",
    "Measurement",
    "BackendMeasurement",
    "measure_callable",
    "measure_backend",
    "measured_vs_estimated",
]

#: Execution backend registry: name → one-line description.  The order is
#: fidelity-first (the oracle, then the engines validated against it).
EXECUTION_BACKENDS: Dict[str, str] = {
    "interpret": (
        "one simulated SIMD instruction at a time — the oracle every other "
        "backend is bit-identical to"
    ),
    "trace": (
        "batched NumPy replay of the typed IR over all block positions "
        "(per-op dispatch loop)"
    ),
    "kernel": (
        "generated fused megakernel compiled from the IR — same NumPy ops as "
        "trace replay, zero per-op dispatch, content-key cached"
    ),
}


def backend_keys() -> Tuple[str, ...]:
    """The valid execution backend names, in registry order."""
    return tuple(EXECUTION_BACKENDS)


def is_backend(name: str) -> bool:
    """True when ``name`` is a registered execution backend."""
    return name in EXECUTION_BACKENDS


# Imported after the registry above so that repro.backend.options can consult
# backend_keys() from the partially initialised package without a cycle.
from repro.backend.options import ExecutionOptions  # noqa: E402
