"""Megakernel code generation: one fused NumPy kernel per ScheduleIR.

The IR executor (:class:`repro.ir.executor.CompiledSweep`) replays a program
one :class:`~repro.ir.ops.IrOp` at a time through a Python dispatch loop.
That loop is pure overhead: every op's opcode, operand registers, shuffle
immediates and memory tags are known at compile time, so the whole sweep can
be emitted *once* as straight-line Python source — one NumPy expression per
IR op, constants hoisted, operands freed at their last use — and compiled
with :func:`exec` into a "megakernel" function that runs the sweep with no
per-op interpretation at all.

The generated kernel performs **exactly** the same NumPy operations, in the
same order, on the same values as the executor's dispatch loop, so its
output is bit-identical to both the trace replay and the interpreted
simulated machine (asserted stencil-by-stencil in the test suite).

Kernels are cached by *content key*: the canonical hash of the lowered
program (ops, immediates, tags, wiring) plus the target, via
:func:`repro.study.hashing.config_hash`.  Two plans whose schedules lower to
the same program — or whose pass pipelines converge on the same optimized
program — share one compiled kernel.

Targets
-------
``"numpy"``
    The generated source executed as-is (the default, always available).
``"numba"``
    The same generated function wrapped in ``numba.njit`` when the optional
    ``[numba]`` extra is installed.  When numba is missing — or rejects the
    generated code at compile time — the kernel *falls back cleanly* to the
    numpy target and records why in :attr:`KernelProgram.fallback_reason`;
    results are identical either way.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.ir.executor import _check_contiguous_out, _SegmentProgram
from repro.ir.lower import lower_schedule
from repro.ir.ops import IrOp, ScheduleIR
from repro.ir.passes import PassManager, PassReport
from repro.simd.isa import AVX2, AVX512, IsaSpec
from repro.simd.machine import InstructionCounts
from repro.study.hashing import config_hash

__all__ = [
    "KernelProgram",
    "compile_kernel",
    "generate_kernel_source",
    "kernel_content_key",
    "kernel_cache_stats",
    "clear_kernel_cache",
]


# --------------------------------------------------------------------------- #
# content keys
# --------------------------------------------------------------------------- #
def _op_fingerprint(op: IrOp) -> Tuple:
    imm = op.imm
    if isinstance(imm, np.ndarray):
        imm = ("ndarray", imm.dtype.str, tuple(imm.shape), tuple(imm.ravel().tolist()))
    return (
        op.opcode,
        op.dst,
        op.srcs,
        imm,
        op.tag,
        op.cls.name if op.cls is not None else None,
        op.lanes,
    )


def kernel_content_key(ir: ScheduleIR, target: str = "numpy") -> str:
    """Canonical content hash of one lowered program for one target.

    Everything the generated source (and its hoisted constants) derives from
    is folded in: the full op stream with immediates and tags, the register
    space, the cross-segment wiring and the store layout.  Pass pipelines
    that converge on the same program share the key — the cache is content
    addressed, not configuration addressed.
    """
    parts = (
        ir.isa.name,
        ir.dims,
        ir.m,
        ir.nregs,
        ir.transpose_back,
        ir.vt_out,
        tuple(
            (seg.name, seg.trip, seg.peak_live, seg.spills,
             tuple(_op_fingerprint(op) for op in seg.ops))
            for seg in ir.segments
        ),
    )
    return config_hash("megakernel", target, parts)


# --------------------------------------------------------------------------- #
# source generation
# --------------------------------------------------------------------------- #
class _Emitter:
    """Walks one ScheduleIR and accumulates source lines + hoisted globals."""

    def __init__(self, ir: ScheduleIR):
        self.ir = ir
        self.vl = ir.vl
        self.lines: List[str] = []
        # Globals of the generated module: NumPy plus every hoisted constant.
        self.namespace: Dict[str, object] = {"_np": np}
        self._counter = 0
        # Prologue registers, precomputed exactly the way CompiledSweep does
        # (same _SegmentProgram, same op order), so the hoisted constants are
        # bit-identical to the executor's base environment.
        base_env: List[Optional[np.ndarray]] = [None] * ir.nregs
        prologue = ir.segments[0]
        if prologue.trip != "once":
            raise ValueError("the first IR segment must be the prologue (trip 'once')")
        _SegmentProgram(prologue.ops, self.vl, keep=set(range(ir.nregs))).run(base_env)
        self._base_env = base_env
        self._prologue_regs: Set[int] = {op.dst for op in prologue.ops if op.dst >= 0}

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"_{prefix}{self._counter}"

    def _hoist(self, prefix: str, value: object) -> str:
        name = self._fresh(prefix)
        self.namespace[name] = value
        return name

    def emit(self, line: str, indent: int = 1) -> None:
        self.lines.append("    " * indent + line)

    def ref(self, vid: int) -> str:
        """Operand expression for virtual register ``vid``."""
        if vid in self._prologue_regs:
            name = f"_B{vid}"
            if name not in self.namespace:
                value = self._base_env[vid]
                if value is None:
                    raise ValueError(f"prologue register v{vid} read but never defined")
                self.namespace[name] = value
            return name
        return f"r{vid}"

    # ------------------------------------------------------------------ #
    # per-op emission (everything except loads/stores/inputs, which are
    # layout-specific and supplied by the caller as tag -> expression maps)
    # ------------------------------------------------------------------ #
    def emit_ops(
        self,
        ops: Sequence[IrOp],
        load_expr,
        store_stmt,
        input_expr,
        live_after: Dict[int, int],
        base_index: int,
    ) -> None:
        """Emit one segment's ops; ``live_after[vid]`` is the flattened index
        of the last op reading ``vid`` (block-defined registers are deleted
        right after it, mirroring the executor's operand freeing)."""
        for offset, op in enumerate(ops):
            i = base_index + offset
            oc = op.opcode
            if oc == "store":
                self.emit(store_stmt(op.tag, self.ref(op.srcs[0])))
            elif oc == "input":
                if live_after.get(op.dst) is None:
                    # Dead stage input: the executor skips it so replay never
                    # materializes a rolled copy nobody reads; so do we.
                    continue
                self.emit(f"r{op.dst} = {input_expr(op.tag)}")
            elif oc == "load":
                self.emit(f"r{op.dst} = {load_expr(op.tag)}")
            elif oc == "const":
                const = self._hoist(
                    "C", np.full(self.vl, op.imm, dtype=np.float64)
                )
                self.emit(f"r{op.dst} = {const}")
            elif oc == "fma":
                a, b, c = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = {a} * {b} + {c}")
            elif oc == "mul":
                a, b = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = {a} * {b}")
            elif oc == "add":
                a, b = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = {a} + {b}")
            elif oc == "sub":
                a, b = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = {a} - {b}")
            elif oc == "max":
                a, b = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = _np.maximum({a}, {b})")
            elif oc == "shuf1":
                lane_map = self._hoist("S", np.asarray(op.imm, dtype=np.intp))
                self.emit(f"r{op.dst} = {self.ref(op.srcs[0])}[..., {lane_map}]")
            elif oc == "shuf2":
                raw = np.asarray(op.imm, dtype=np.intp)
                sel_b = self._hoist("W", raw >= self.vl)
                idx = self._hoist("X", np.where(raw >= self.vl, raw - self.vl, raw))
                a, b = (self.ref(s) for s in op.srcs)
                self.emit(f"r{op.dst} = _np.where({sel_b}, {b}[..., {idx}], {a}[..., {idx}])")
            else:  # pragma: no cover - the lowering emits no other opcodes
                raise ValueError(f"unknown IR opcode {oc!r}")
            # Free block-defined operands after their last consumer, exactly
            # like the executor's liveness table does.
            for src in dict.fromkeys(self._reads_of(op)):
                if src not in self._prologue_regs and live_after.get(src) == i:
                    self.emit(f"del r{src}")

    def _reads_of(self, op: IrOp) -> Tuple[int, ...]:
        """Registers an op actually reads (vt inputs read their source reg)."""
        if op.opcode == "input":
            tag = op.tag
            if isinstance(tag, tuple) and tag and tag[0] == "vt":
                _, _delta, ci, k = tag
                return (self.ir.vt_out[ci][k],)
            return ()
        return op.srcs


def _flatten_reads(ir: ScheduleIR, segments: Sequence) -> Dict[int, int]:
    """Flattened-index of the last read of every register across ``segments``.

    ``input`` ops with ``("vt", ...)`` tags count as reads of the vertical
    phase's output registers, which keeps those arrays alive across the
    segment boundary exactly as the executor's ``keep`` set does.
    """
    live_after: Dict[int, int] = {}
    i = 0
    for seg in segments:
        for op in seg.ops:
            if op.opcode == "input":
                tag = op.tag
                if isinstance(tag, tuple) and tag and tag[0] == "vt":
                    _, _delta, ci, k = tag
                    live_after[ir.vt_out[ci][k]] = i
            else:
                for src in op.srcs:
                    live_after[src] = i
            i += 1
    return live_after


def generate_kernel_source(ir: ScheduleIR) -> Tuple[str, Dict[str, object]]:
    """Emit the megakernel source + hoisted-constant namespace for ``ir``.

    The generated module defines ``megakernel(values, out)``: one full sweep
    over every block position, writing into ``out`` (both arrays contiguous,
    1-D programs in the transpose layout).  Shape validation, output
    allocation and the optional store-layout untranspose stay in the
    :class:`KernelProgram` wrapper — the generated code is pure arithmetic.
    """
    emitter = _Emitter(ir)
    vl = ir.vl
    emitter.lines.append("def megakernel(values, out):")
    emitter.emit(
        f'"""Generated megakernel: {ir.source or "schedule"} '
        f'[{ir.isa.name}, {ir.dims}-D, m={ir.m}]."""'
    )
    if ir.dims == 1:
        seg = ir.segment("block")
        live_after = _flatten_reads(ir, [seg])
        emitter.emit(f"v3 = values.reshape(-1, {vl}, {vl})")
        emitter.emit(f"out3 = out.reshape(-1, {vl}, {vl})")

        def load_expr(tag):
            _, delta, j = tag
            if delta == 0:
                return f"v3[:, {j}, :]"
            return f"_np.roll(v3[:, {j}, :], {-delta}, axis=0)"

        def store_stmt(tag, src):
            _, j = tag
            return f"out3[:, {j}, :] = {src}"

        def input_expr(tag):  # pragma: no cover - 1-D programs have no inputs
            raise ValueError(f"unexpected stage input {tag!r} in a 1-D program")

        emitter.emit_ops(seg.ops, load_expr, store_stmt, input_expr, live_after, 0)
        emitter.emit("return out")
        return "\n".join(emitter.lines) + "\n", emitter.namespace

    if any(seg.trip == "pipelined" for seg in ir.segments):
        # Software-pipelined form: one merged segment (the "prime" accounting
        # copy is never executed — the kernel covers every square at once,
        # exactly like the batched replay).
        stages = [ir.segment("pipelined")]
    else:
        stages = [ir.segment("vertical"), ir.segment("horizontal")]
    live_after = _flatten_reads(ir, stages)
    if ir.dims == 3:
        emitter.emit("planes = values.shape[0]")
    else:
        emitter.emit("planes = 1")
    emitter.emit("rows = values.shape[-2]")
    emitter.emit("cols = values.shape[-1]")
    emitter.emit(f"nrb = rows // {vl}")
    emitter.emit(f"ncb = cols // {vl}")
    emitter.emit(f"v5 = values.reshape(planes, nrb, {vl}, ncb, {vl})")
    emitter.emit(f"out5 = out.reshape(planes, nrb, {vl}, ncb, {vl})")
    emitter.emit("grid3 = values.reshape(planes, rows, cols)")
    needs_gather = any(
        op.opcode == "load" and not (op.tag[1] == 0 and 0 <= op.tag[2] < vl)
        for seg in stages
        for op in seg.ops
    )
    if needs_gather:
        emitter.emit("_ap = _np.arange(planes)")
        emitter.emit("_ar = _np.arange(nrb)")

    def load_expr(tag):
        _, dz, s = tag
        if dz == 0 and 0 <= s < vl:
            return f"v5[:, :, {s}]"
        return (
            f"grid3[_np.ix_((_ap + {dz}) % planes, (_ar * {vl} + {s}) % rows)]"
            f".reshape(planes, nrb, ncb, {vl})"
        )

    def store_stmt(tag, src):
        _, oi = tag
        return f"out5[:, :, {oi}] = {src}"

    def input_expr(tag):
        _, delta, ci, k = tag
        src = emitter.ref(ir.vt_out[ci][k])
        if delta == 0:
            return src
        return f"_np.roll({src}, {-delta}, axis=2)"

    base = 0
    for seg in stages:
        emitter.emit_ops(seg.ops, load_expr, store_stmt, input_expr, live_after, base)
        base += len(seg.ops)
    emitter.emit("return out")
    return "\n".join(emitter.lines) + "\n", emitter.namespace


# --------------------------------------------------------------------------- #
# the compiled kernel
# --------------------------------------------------------------------------- #
class KernelProgram:
    """One compiled megakernel: generated source + the executable function.

    Mirrors the :class:`~repro.ir.executor.CompiledSweep` replay surface
    (:meth:`replay`, :meth:`sweep_counts`) so the plan layer can treat the
    two interchangeably; adds :meth:`run_sweeps` (ping-pong buffered
    multi-sweep execution, the measurement harness's hot loop) and exposes
    :attr:`source` / :attr:`key` for inspection and content addressing.
    """

    def __init__(
        self,
        ir: ScheduleIR,
        source: str,
        namespace: Dict[str, object],
        key: str,
        target: str = "numpy",
        pass_reports: Tuple[PassReport, ...] = (),
    ):
        self.ir = ir
        self.source = source
        self.key = key
        self.requested_target = target
        self.pass_reports = tuple(pass_reports)
        self.isa = ir.isa
        self.vl = ir.vl
        self.dims = ir.dims
        self.transpose_back = ir.transpose_back
        code = compile(source, f"<megakernel {key}>", "exec")
        exec(code, namespace)
        self._fn = namespace["megakernel"]
        self._jit = None
        self.fallback_reason: Optional[str] = None
        if target == "numba":
            self._jit, self.fallback_reason = _numba_compile(self._fn)
        elif target != "numpy":
            raise ValueError(f"unknown kernel target {target!r}; expected 'numpy' or 'numba'")

    @property
    def target(self) -> str:
        """Effective target: ``"numba"`` only while the jitted form is live."""
        return "numba" if self._jit is not None else "numpy"

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _execute(self, values: np.ndarray, out: np.ndarray) -> None:
        jit = self._jit
        if jit is not None:
            try:
                jit(values, out)
                return
            except Exception as exc:  # numba typing/compile failure at first call
                self._jit = None
                self.fallback_reason = (
                    f"numba rejected the generated kernel ({type(exc).__name__}); "
                    "using the numpy target"
                )
        self._fn(values, out)

    def replay(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One fused sweep over every block position — bit-identical to the
        IR executor's replay (1-D grids in the transpose layout)."""
        values = np.asarray(values, dtype=np.float64)
        if self.dims == 1:
            self.ir.block_axes(values.size)
        else:
            if values.ndim != self.dims:
                raise ValueError(f"megakernel expects a {self.dims}-D grid")
            self.ir.block_axes(values.shape)
        values = np.ascontiguousarray(values)
        out = _check_contiguous_out(out, values)
        self._execute(values, out)
        if self.dims > 1 and not self.transpose_back:
            from repro.core.vectorized_folding import (
                _untranspose_plane_tiles,
                _untranspose_tiles,
            )

            out = _untranspose_tiles(out, self.vl) if self.dims == 2 else (
                _untranspose_plane_tiles(out, self.vl)
            )
        return out

    def run_sweeps(self, values: np.ndarray, sweeps: int) -> np.ndarray:
        """``sweeps`` consecutive folded updates with two ping-pong buffers.

        Allocation-free after the first sweep; falls back to sweep-by-sweep
        :meth:`replay` for store layouts that untranspose (the untranspose
        produces a fresh array anyway).  The result is bit-identical to
        calling :meth:`replay` ``sweeps`` times.
        """
        values = np.ascontiguousarray(np.asarray(values, dtype=np.float64))
        if sweeps <= 0:
            return values.copy()
        if self.dims > 1 and not self.transpose_back:
            out = values
            for _ in range(sweeps):
                out = self.replay(out)
            return out
        cur = self.replay(values)
        if sweeps == 1:
            return cur
        buf = np.empty_like(cur)
        for _ in range(sweeps - 1):
            self._execute(cur, buf)
            cur, buf = buf, cur
        return cur

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def sweep_counts(
        self, shape: Union[int, Sequence[int]]
    ) -> Tuple[InstructionCounts, int, int]:
        """Exact per-sweep ``(counts, peak_live, spills)`` of the program the
        kernel was generated from — see :meth:`ScheduleIR.sweep_counts`."""
        return self.ir.sweep_counts(shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelProgram(key={self.key!r}, isa={self.isa.name!r}, dims={self.dims}, "
            f"target={self.target!r})"
        )


def _numba_compile(fn):
    """``(jitted, None)`` when numba accepts ``fn``; ``(None, reason)`` otherwise."""
    try:
        import numba
    except ImportError:
        return None, (
            "numba is not installed; using the numpy target "
            "(pip install repro-folding[numba])"
        )
    try:
        return numba.njit(cache=False)(fn), None
    except Exception as exc:  # pragma: no cover - depends on numba's version
        return None, (
            f"numba rejected the generated kernel ({type(exc).__name__}); "
            "using the numpy target"
        )


# --------------------------------------------------------------------------- #
# content-keyed compilation cache
# --------------------------------------------------------------------------- #
_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE: Dict[str, KernelProgram] = {}
_CACHE_HITS = 0
_CACHE_MISSES = 0


def kernel_cache_stats() -> Dict[str, int]:
    """Hit/miss/entry accounting of the process-wide kernel cache."""
    with _CACHE_LOCK:
        return {"hits": _CACHE_HITS, "misses": _CACHE_MISSES, "entries": len(_KERNEL_CACHE)}


def clear_kernel_cache() -> None:
    """Drop every cached kernel and reset the accounting (test isolation)."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _KERNEL_CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def compile_kernel(
    schedule,
    isa: IsaSpec,
    transpose_back: bool = True,
    optimize: Union[bool, Sequence, None] = False,
    target: str = "numpy",
) -> KernelProgram:
    """Lower ``schedule``, optionally optimize, and fetch/build its megakernel.

    The signature mirrors :func:`repro.ir.executor.compile_sweep`; the result
    is a :class:`KernelProgram` instead of a dispatch-loop executor.  Kernels
    are shared process-wide through the content-key cache: any (schedule,
    isa, pass pipeline) combination that lowers to the same program reuses
    the same compiled function.
    """
    global _CACHE_HITS, _CACHE_MISSES
    ir = None
    if transpose_back and isa in (AVX2, AVX512):
        cached = getattr(schedule, "schedule_ir", None)
        if cached is not None:
            ir = cached(isa.vector_lanes)
    if ir is None:
        ir = lower_schedule(schedule, isa, transpose_back=transpose_back)
    reports: Tuple[PassReport, ...] = ()
    if optimize is not False and optimize is not None:
        ir, reports = PassManager(optimize).run(ir)
    key = kernel_content_key(ir, target)
    with _CACHE_LOCK:
        program = _KERNEL_CACHE.get(key)
        if program is not None:
            _CACHE_HITS += 1
            return program
    source, namespace = generate_kernel_source(ir)
    program = KernelProgram(ir, source, namespace, key, target=target, pass_reports=reports)
    with _CACHE_LOCK:
        existing = _KERNEL_CACHE.get(key)
        if existing is not None:
            _CACHE_HITS += 1
            return existing
        _CACHE_MISSES += 1
        _KERNEL_CACHE[key] = program
    return program
