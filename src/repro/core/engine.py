"""The public execution engine.

:class:`StencilEngine` is the API a downstream user of this library touches:
pick a stencil, a vectorization method, an ISA and optionally a tiling
configuration, then

* :meth:`StencilEngine.run` — advance a grid numerically (fast NumPy paths;
  always bit-comparable to the reference executor up to FP reassociation),
* :meth:`StencilEngine.run_simulated` — execute the register-level schedule
  on the simulated SIMD machine (small grids) and get the instruction tally
  alongside the numerical result,
* :meth:`StencilEngine.profile` — the steady-state per-point instruction
  profile,
* :meth:`StencilEngine.estimate` — modelled performance on the paper's
  machine for a given problem size, time-step count and core count,
* :meth:`StencilEngine.folding_report` — the Section 3.2 profitability
  analysis for the engine's stencil and unrolling factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.baselines.dlt import dlt_run
from repro.core.folding import ProfitabilityReport, analyze_folding
from repro.core.vectorized_folding import FoldingSchedule
from repro.layout.transpose_layout import from_transpose_layout, to_transpose_layout
from repro.machine import MachineSpec, machine_for_isa
from repro.methods import METHOD_KEYS, build_profile
from repro.parallel.model import MulticoreConfig, multicore_estimate
from repro.perfmodel.costmodel import PerformanceEstimate
from repro.perfmodel.profiles import MethodProfile
from repro.simd.isa import isa_for
from repro.simd.machine import InstructionCounts, SimdMachine
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.reference import reference_run, reference_step
from repro.stencils.spec import StencilSpec
from repro.tiling.tessellate import TessellationConfig, tessellate_run

#: Methods accepted by the engine (the registry methods plus the plain
#: reference executor).
ENGINE_METHODS = ("reference",) + METHOD_KEYS


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`StencilEngine`.

    Attributes
    ----------
    method:
        One of :data:`ENGINE_METHODS`.
    isa:
        ``"avx2"`` or ``"avx512"``.
    unroll:
        Temporal folding factor ``m`` (only used by the ``"folded"`` method).
    tiling:
        Optional tessellate-tiling configuration used by :meth:`StencilEngine.run`
        and folded into the performance estimates.
    shifts_reuse:
        Whether the shifts-reuse optimisation is assumed by the instruction
        profile (the ablation benchmarks switch it off).
    """

    method: str = "folded"
    isa: str = "avx2"
    unroll: int = 2
    tiling: Optional[TessellationConfig] = None
    shifts_reuse: bool = True


class StencilEngine:
    """Execute and analyse one stencil with one optimization method."""

    def __init__(
        self,
        spec: StencilSpec,
        method: str = "folded",
        isa: str = "avx2",
        unroll: int = 2,
        tiling: Optional[TessellationConfig] = None,
        shifts_reuse: bool = True,
    ):
        method = method.strip().lower()
        if method not in ENGINE_METHODS:
            raise KeyError(f"unknown method {method!r}; known: {ENGINE_METHODS}")
        if unroll < 1:
            raise ValueError("unroll must be >= 1")
        self.spec = spec
        self.config = EngineConfig(
            method=method, isa=isa, unroll=unroll, tiling=tiling, shifts_reuse=shifts_reuse
        )
        self._isa = isa_for(isa)
        self._schedule: Optional[FoldingSchedule] = None
        if method == "folded" and spec.linear:
            self._schedule = FoldingSchedule(spec, unroll)

    # ------------------------------------------------------------------ #
    # numerical execution
    # ------------------------------------------------------------------ #
    def run(self, grid: Grid, steps: int) -> np.ndarray:
        """Advance ``grid`` by ``steps`` time steps and return the final values.

        Every method produces the same numerical answer as the reference
        executor (that is asserted by the test suite); what changes between
        methods is *how* the answer is computed:

        * ``"dlt"`` computes in the DLT layout (including its boundary-column
          fixups),
        * ``"folded"`` advances ``m`` steps at a time through the
          vertical/horizontal folding path with exact Dirichlet boundary-band
          handling,
        * methods combined with a tiling configuration execute through the
          tessellation tile schedule,
        * the remaining methods share the reference arithmetic (their
          distinction is the instruction schedule, visible through
          :meth:`run_simulated` and :meth:`profile`).
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        method = self.config.method
        if steps == 0:
            return grid.values.copy()

        if method == "dlt" and self.config.tiling is None:
            return dlt_run(self.spec, grid, steps, vl=self._isa.vector_lanes)

        if method == "folded" and self.spec.linear:
            return self._run_folded(grid, steps)

        if self.config.tiling is not None:
            return tessellate_run(self.spec, grid, steps, self.config.tiling)

        return reference_run(self.spec, grid, steps)

    def _run_folded(self, grid: Grid, steps: int) -> np.ndarray:
        """Folded fast path with exact Dirichlet boundary handling."""
        assert self._schedule is not None
        m = self.config.unroll
        values = grid.values.copy()
        remaining = steps
        while remaining >= m:
            folded = self._schedule.numpy_step(values, grid.boundary)
            if grid.boundary is BoundaryCondition.DIRICHLET:
                folded = self._fix_dirichlet_band(values, folded, m)
            values = folded
            remaining -= m
        for _ in range(remaining):
            values = reference_step(self.spec, values, grid.boundary, aux=grid.aux)
        return values

    def _fix_dirichlet_band(
        self, before: np.ndarray, folded: np.ndarray, m: int
    ) -> np.ndarray:
        """Recompute the boundary band step-by-step (ghost-zone handling).

        A folded ``m``-step update is exact only for points at distance
        ``>= (m-1)·r`` from a Dirichlet boundary; the band closer than that is
        recomputed with ``m`` single steps on a strip wide enough that the
        strip's interior edge cannot contaminate the kept band.
        """
        radius = self.spec.radius
        band = (m - 1) * radius
        if band <= 0:
            return folded
        out = folded
        strip_width = band + m * radius
        for axis in range(before.ndim):
            n = before.shape[axis]
            width = min(strip_width, n)
            for side in (0, 1):
                strip = [slice(None)] * before.ndim
                keep_local = [slice(None)] * before.ndim
                keep_global = [slice(None)] * before.ndim
                if side == 0:
                    strip[axis] = slice(0, width)
                    keep_local[axis] = slice(0, min(band, width))
                    keep_global[axis] = slice(0, min(band, n))
                else:
                    strip[axis] = slice(n - width, n)
                    keep_local[axis] = slice(width - min(band, width), width)
                    keep_global[axis] = slice(n - min(band, n), n)
                sub = before[tuple(strip)].copy()
                for _ in range(m):
                    sub = reference_step(self.spec, sub, BoundaryCondition.DIRICHLET)
                out[tuple(keep_global)] = sub[tuple(keep_local)]
        return out

    # ------------------------------------------------------------------ #
    # simulated execution
    # ------------------------------------------------------------------ #
    def run_simulated(
        self, grid: Grid, steps: int, machine: Optional[SimdMachine] = None
    ) -> Tuple[np.ndarray, InstructionCounts]:
        """Execute the register-level schedule on the simulated SIMD machine.

        Supported for the ``"transpose"`` and ``"folded"`` methods on 1-D
        grids (stored in the transpose layout for the duration of the run,
        exactly as Section 2.2 prescribes) and on 2-D grids (original layout,
        Figure 5 square pipeline).  Grids must be periodic and sized in
        multiples of ``vl²`` (1-D) or ``vl`` (2-D).  Returns the final values
        together with the instruction tally of the whole run.
        """
        if self.config.method not in ("transpose", "folded"):
            raise ValueError("run_simulated supports the 'transpose' and 'folded' methods")
        if not self.spec.linear:
            raise ValueError("run_simulated requires a linear stencil")
        if grid.boundary is not BoundaryCondition.PERIODIC:
            raise ValueError("run_simulated requires periodic boundaries")
        machine = machine or SimdMachine(self._isa)
        m = self.config.unroll if self.config.method == "folded" else 1
        if steps % m != 0:
            raise ValueError(f"steps ({steps}) must be a multiple of the unroll factor {m}")
        schedule = FoldingSchedule(self.spec, m)
        vl = machine.vl
        values = grid.values.copy()

        if grid.dims == 1:
            data = to_transpose_layout(values, vl)
            for _ in range(steps // m):
                data = schedule.simd_sweep_1d(machine, data)
            return from_transpose_layout(data, vl), machine.counts
        if grid.dims == 2:
            for _ in range(steps // m):
                values = schedule.simd_sweep_2d(machine, values)
            return values, machine.counts
        raise ValueError("run_simulated supports 1-D and 2-D grids")

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def profile(self) -> MethodProfile:
        """Steady-state per-point instruction profile of the configured method."""
        if self.config.method == "reference":
            raise ValueError("the reference executor has no vectorized profile")
        return build_profile(
            self.config.method, self.spec, self.config.isa, self.config.unroll
        )

    def estimate(
        self,
        problem_shape: Sequence[int],
        time_steps: int,
        cores: int = 1,
        machine: Optional[MachineSpec] = None,
        multicore: MulticoreConfig = MulticoreConfig(),
    ) -> PerformanceEstimate:
        """Modelled performance for a problem of ``problem_shape`` over ``time_steps``.

        Parameters
        ----------
        problem_shape:
            Spatial extents of the problem (paper scale or otherwise).
        time_steps:
            Total time steps.
        cores:
            Active cores (1 for the sequential experiments).
        machine:
            Machine description; defaults to the paper's Xeon Gold 6140 in
            the engine's ISA configuration.
        multicore:
            Overhead parameters of the multicore model.
        """
        machine = machine or machine_for_isa(self.config.isa)
        return multicore_estimate(
            self.profile(),
            grid_shape=problem_shape,
            time_steps=time_steps,
            machine=machine,
            cores=cores,
            radius=self.spec.radius,
            tiling=self.config.tiling,
            config=multicore,
        )

    def folding_report(self) -> ProfitabilityReport:
        """Profitability analysis (Section 3.2) for the engine's unroll factor."""
        if not self.spec.linear:
            raise ValueError("folding profitability is defined for linear stencils only")
        return analyze_folding(self.spec, max(2, self.config.unroll))
