"""Deprecated engine facade over the compile-once/run-many plan API.

:class:`StencilEngine` was the library's original public entry point.  It
remains as a thin back-compat wrapper over
:class:`repro.core.plan.CompiledPlan`: construction compiles a plan through
the fluent builder, and every method delegates to it.  New code should use
the plan API directly::

    import repro

    p = repro.plan(spec).method("folded").isa("avx2").unroll(2).compile()
    result = p.run(grid, steps=4)
    results = p.run_batch(grids, steps=4)   # thread-pool fan-out
    print(p.explain())

Migration map: ``StencilEngine(spec, method=..., isa=..., unroll=...,
tiling=..., shifts_reuse=...)`` →
``plan(spec).method(...).isa(...).unroll(...).tile(...).shifts_reuse(...).compile()``;
``run_simulated`` → ``simulate``; everything else keeps its name.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.folding import ProfitabilityReport
from repro.core.plan import CompiledPlan, plan
from repro.machine import MachineSpec
from repro.methods import METHOD_KEYS
from repro.parallel.model import MulticoreConfig
from repro.perfmodel.costmodel import PerformanceEstimate
from repro.perfmodel.profiles import MethodProfile
from repro.simd.machine import InstructionCounts, SimdMachine
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.tiling.tessellate import TessellationConfig

#: Methods accepted by the engine (the registry methods plus the plain
#: reference executor).
ENGINE_METHODS = ("reference",) + METHOD_KEYS


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`StencilEngine` (mirrors
    :class:`repro.core.plan.PlanConfig` for back-compat).

    Attributes
    ----------
    method:
        One of :data:`ENGINE_METHODS`.
    isa:
        ``"avx2"`` or ``"avx512"``.
    unroll:
        Temporal folding factor ``m`` (only used by the ``"folded"`` method).
    tiling:
        Optional tessellate-tiling configuration used by :meth:`StencilEngine.run`
        and folded into the performance estimates.
    shifts_reuse:
        Whether the shifts-reuse optimisation is assumed by the instruction
        profile (the ablation benchmarks switch it off).
    """

    method: str = "folded"
    isa: str = "avx2"
    unroll: int = 2
    tiling: Optional[TessellationConfig] = None
    shifts_reuse: bool = True


class StencilEngine:
    """Execute and analyse one stencil with one optimization method.

    .. deprecated:: 1.1
       Thin wrapper kept for backward compatibility; use
       :func:`repro.plan` and :class:`repro.core.plan.CompiledPlan`.
    """

    def __init__(
        self,
        spec: StencilSpec,
        method: str = "folded",
        isa: str = "avx2",
        unroll: int = 2,
        tiling: Optional[TessellationConfig] = None,
        shifts_reuse: bool = True,
    ):
        warnings.warn(
            "StencilEngine is deprecated; use repro.plan(spec)...compile() "
            "(see repro.core.plan)",
            DeprecationWarning,
            stacklevel=2,
        )
        # The legacy engine only ever accepted the paper's line-up; plug-in
        # registry methods are a plan-API feature.
        if method.strip().lower() not in ENGINE_METHODS:
            raise KeyError(f"unknown method {method!r}; known: {ENGINE_METHODS}")
        builder = (
            plan(spec)
            .method(method)
            .isa(isa)
            .unroll(unroll)
            .shifts_reuse(shifts_reuse)
        )
        if tiling is not None:
            builder.tile(tiling)
        self._plan = builder.compile()
        self.spec = spec
        self.config = EngineConfig(
            method=self._plan.config.method,
            isa=self._plan.config.isa,
            unroll=self._plan.config.unroll,
            tiling=tiling,
            shifts_reuse=shifts_reuse,
        )
        self._isa = self._plan.isa_spec
        self._schedule = self._plan.schedule

    @property
    def plan(self) -> CompiledPlan:
        """The compiled plan the engine wraps (the migration hand-hold)."""
        return self._plan

    # ------------------------------------------------------------------ #
    # numerical execution
    # ------------------------------------------------------------------ #
    def run(self, grid: Grid, steps: int) -> np.ndarray:
        """Advance ``grid`` by ``steps`` time steps and return the final values.

        Delegates to :meth:`repro.core.plan.CompiledPlan.run`.
        """
        return self._plan.run(grid, steps)

    # ------------------------------------------------------------------ #
    # simulated execution
    # ------------------------------------------------------------------ #
    def run_simulated(
        self,
        grid: Grid,
        steps: int,
        machine: Optional[SimdMachine] = None,
        backend: str = "trace",
    ) -> Tuple[np.ndarray, InstructionCounts]:
        """Execute the register-level schedule on the simulated SIMD machine.

        Delegates to :meth:`repro.core.plan.CompiledPlan.simulate`, which
        reuses the folding schedule cached at compile time and, with the
        default ``backend="trace"``, the trace-compiled sweep as well.
        """
        return self._plan.simulate(grid, steps, machine=machine, backend=backend)

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def profile(self) -> MethodProfile:
        """Steady-state per-point instruction profile of the configured method."""
        return self._plan.profile()

    def estimate(
        self,
        problem_shape: Sequence[int],
        time_steps: int,
        cores: int = 1,
        machine: Optional[MachineSpec] = None,
        multicore: MulticoreConfig = MulticoreConfig(),
    ) -> PerformanceEstimate:
        """Modelled performance for a problem of ``problem_shape`` over ``time_steps``."""
        return self._plan.estimate(
            problem_shape, time_steps, cores=cores, machine=machine, multicore=multicore
        )

    def folding_report(self) -> ProfitabilityReport:
        """Profitability analysis (Section 3.2) for the engine's unroll factor."""
        return self._plan.folding_report()
