"""Vectorised multi-step computation (paper Section 3.3, Figure 5).

A :class:`FoldingSchedule` bundles everything needed to execute an ``m``-step
folded update of a linear stencil:

* the folding matrix Λ (``m``-fold self-convolution of the kernel),
* the counterpart plan — which distinct vertical-fold weight vectors have to
  be materialised, which are reused via the Section 3.5 regression, and which
  horizontal weight each relative position contributes,
* three executors:

  - :meth:`FoldingSchedule.numpy_step` — a fast NumPy path that mirrors the
    vertical-folding → horizontal-folding structure (including counterpart
    reuse) and is exact for periodic boundaries; the engine adds the
    Dirichlet boundary-band handling,
  - :meth:`FoldingSchedule.simd_sweep_1d` — the register-level schedule for
    1-D stencils stored in the transpose layout, executed on the simulated
    SIMD machine (vector sets, assembled dependence vectors, Figure 2),
  - :meth:`FoldingSchedule.simd_sweep_2d` — the register-level schedule for
    2-D stencils in the original layout (load rows → vertical folding →
    register transpose → horizontal folding → weighted transpose → store,
    Figure 5), with shifts reuse between horizontally adjacent squares,
  - :meth:`FoldingSchedule.simd_sweep_3d` — the same square pipeline applied
    plane by plane to 3-D stencils: the vertical phase folds across the full
    leading (plane, row) neighbourhood of each ``vl × vl`` square, the
    horizontal phase and the weighted transpose are shared with the 2-D
    sweep unchanged.

* an analytic per-point instruction profile used by the performance model.

All SIMD sweeps are built from per-block pipeline pieces
(:meth:`FoldingSchedule._sweep_1d_block`,
:meth:`FoldingSchedule._sweep_2d_vertical`,
:meth:`FoldingSchedule._sweep_3d_vertical`,
:meth:`FoldingSchedule._sweep_square_horizontal`, ...) that take the target
machine plus abstract ``load``/``store`` callables.  The interpreted sweeps
bind them to concrete :class:`~repro.simd.machine.SimdMachine` memory
operations; the trace compiler in :mod:`repro.trace` runs the very same
pieces once against a recording proxy to capture the per-block instruction
trace it replays in bulk.  Because both backends execute the same schedule
code, they cannot drift apart.

``m = 1`` degenerates to the paper's Section 2 scheme (no temporal folding,
just the transpose-layout vectorisation), so the same class also serves as
"our method" without time folding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.core.regression import CounterpartPlan, plan_counterparts
from repro.simd.isa import InstructionClass
from repro.simd.kernels import neighbor_vectors_1d
from repro.simd.machine import InstructionCounts, SimdMachine
from repro.simd.transpose import register_transpose, transpose_cost
from repro.stencils.boundary import BoundaryCondition, DIRICHLET_VALUE
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class MaterializedCounterpart:
    """A counterpart that is actually computed during vertical folding.

    Attributes
    ----------
    vector:
        Weight vector over the leading-dimension offsets (the rows of Λ for a
        2-D stencil, the flattened non-innermost offsets in general).
    mode:
        ``"direct"`` or ``"combination"`` (scaled counterparts are never
        materialised — their scale is absorbed into the horizontal weights).
    omega:
        For ``"combination"``: coefficients over previously *materialised*
        counterparts (indices into the materialised list).
    bias:
        For ``"combination"``: residual weights applied directly to the grid.
    """

    vector: np.ndarray
    mode: str
    omega: Dict[int, float]
    bias: np.ndarray


@dataclass
class SquareWeights:
    """Broadcast weight registers of the 2-D square pipeline (the prologue).

    Attributes
    ----------
    row:
        Per materialised counterpart, the broadcast vertical-fold weights.
    bias:
        Per materialised counterpart, the broadcast bias weights (``None``
        when the counterpart has no bias).
    omega:
        Per materialised counterpart, broadcast reuse coefficients keyed by
        the materialised index they apply to.
    horiz:
        Per relative innermost position, ``(materialised index, broadcast
        weight)`` or ``None`` for unused positions.
    """

    row: List[List]
    bias: List[Optional[List]]
    omega: List[Dict[int, object]]
    horiz: List[Optional[Tuple[int, object]]]


class FoldingSchedule:
    """Executable plan for an ``m``-step folded update of a linear stencil.

    Parameters
    ----------
    spec:
        The (linear) stencil to fold.
    m:
        Unrolling factor — number of time steps advanced per update.
    """

    def __init__(self, spec: StencilSpec, m: int):
        if m < 1:
            raise ValueError("m must be >= 1")
        if not spec.linear:
            raise ValueError(f"stencil {spec.name!r} is non-linear; folding is undefined")
        self.spec = spec
        self.m = m
        self.folded = spec.compose(m)
        self.matrix = self.folded.kernel
        self.dims = self.matrix.ndim
        self.radius = self.folded.radius
        self.width = 2 * self.radius + 1
        self.plan: CounterpartPlan = plan_counterparts(self.matrix)
        self._build_materialization()

    # ------------------------------------------------------------------ #
    # counterpart materialisation
    # ------------------------------------------------------------------ #
    def _build_materialization(self) -> None:
        """Derive materialised counterparts and the per-position horizontal map."""
        steps = self.plan.steps
        # plan-step index -> (materialised index, scale) once resolved.
        resolved: Dict[int, Tuple[int, float]] = {}
        materialized: List[MaterializedCounterpart] = []

        for step in steps:
            if step.mode == "scaled":
                # Exactly one omega entry referencing a previous plan step.
                ((ref_plan_idx, scale),) = step.omega.items()
                base_idx, base_scale = resolved[ref_plan_idx]
                resolved[step.index] = (base_idx, scale * base_scale)
                continue
            omega_materialized: Dict[int, float] = {}
            if step.mode == "combination":
                for ref_plan_idx, w in step.omega.items():
                    base_idx, base_scale = resolved[ref_plan_idx]
                    omega_materialized[base_idx] = (
                        omega_materialized.get(base_idx, 0.0) + w * base_scale
                    )
            materialized.append(
                MaterializedCounterpart(
                    vector=step.vector.copy(),
                    mode=step.mode,
                    omega=omega_materialized,
                    bias=step.bias.copy(),
                )
            )
            resolved[step.index] = (len(materialized) - 1, 1.0)

        # Horizontal map: for every relative innermost position, which
        # materialised counterpart feeds it and with what weight.
        if self.dims > 1:
            flat = self.matrix.reshape(-1, self.matrix.shape[-1])
        else:
            flat = self.matrix.reshape(1, -1)
        position_map: List[Optional[Tuple[int, float]]] = [None] * flat.shape[1]
        for step in steps:
            mat_idx, scale = resolved[step.index]
            for pos in step.positions:
                position_map[pos] = (mat_idx, scale)
        self.materialized: Tuple[MaterializedCounterpart, ...] = tuple(materialized)
        self.position_map: Tuple[Optional[Tuple[int, float]], ...] = tuple(position_map)

    @property
    def num_materialized(self) -> int:
        """Number of counterparts that are actually computed per column."""
        return len(self.materialized)

    @property
    def separable_fast_path(self) -> bool:
        """True when a single materialised counterpart suffices (Section 3.3)."""
        return self.num_materialized == 1

    # ------------------------------------------------------------------ #
    # NumPy execution path
    # ------------------------------------------------------------------ #
    def _leading_kernel(self, vector: np.ndarray) -> np.ndarray:
        """Reshape a counterpart vector to a kernel over the leading dimensions.

        The returned kernel has the folded matrix's leading extents and a
        trailing extent of 1, so it can be fed to ``ndimage.correlate`` to
        perform the vertical folding over every grid column at once.
        """
        if self.dims == 1:
            return vector.reshape(1)
        leading_shape = self.matrix.shape[:-1]
        return vector.reshape(leading_shape + (1,))

    def numpy_step(self, values: np.ndarray, boundary: BoundaryCondition) -> np.ndarray:
        """Advance ``values`` by ``m`` time steps via vertical+horizontal folding.

        For periodic boundaries the result is exactly ``m`` applications of
        the single-step reference; for Dirichlet boundaries interior points at
        distance ``>= (m-1)·r`` from the boundary are exact and the engine
        recomputes the remaining band (see
        the folded executor in :mod:`repro.core.plan`).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != self.dims:
            raise ValueError(
                f"grid has {values.ndim} dimensions, folded stencil has {self.dims}"
            )
        mode = boundary.ndimage_mode

        if self.dims == 1:
            # 1-D: the "vertical" direction does not exist; the update is a
            # plain correlation with the folded kernel.
            return ndimage.correlate(values, self.matrix, mode=mode, cval=DIRICHLET_VALUE)

        # Vertical folding: one correlation per materialised counterpart
        # (combinations reuse previous results plus a sparse bias).
        vertical: List[np.ndarray] = []
        for cp in self.materialized:
            if cp.mode == "direct":
                vf = ndimage.correlate(
                    values, self._leading_kernel(cp.vector), mode=mode, cval=DIRICHLET_VALUE
                )
            else:
                vf = np.zeros_like(values)
                for idx, w in cp.omega.items():
                    vf = vf + w * vertical[idx]
                if np.any(cp.bias):
                    vf = vf + ndimage.correlate(
                        values, self._leading_kernel(cp.bias), mode=mode, cval=DIRICHLET_VALUE
                    )
            vertical.append(vf)

        # Horizontal folding: shift each counterpart field along the innermost
        # axis and accumulate with the per-position weights.
        out = np.zeros_like(values)
        radius_last = (self.matrix.shape[-1] - 1) // 2
        axis = self.dims - 1
        for pos, entry in enumerate(self.position_map):
            if entry is None:
                continue
            mat_idx, weight = entry
            offset = pos - radius_last
            shifted = _shift_along_axis(vertical[mat_idx], offset, axis, boundary)
            out += weight * shifted
        return out

    # ------------------------------------------------------------------ #
    # simulated SIMD execution: 1-D (transpose layout)
    # ------------------------------------------------------------------ #
    def simd_sweep_1d(
        self,
        machine: SimdMachine,
        values_t: np.ndarray,
        out_t: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One folded update of a 1-D grid stored in the transpose layout.

        Parameters
        ----------
        machine:
            The simulated SIMD machine (its ``vl`` defines the layout block).
        values_t:
            1-D array already in transpose layout (see
            :mod:`repro.layout.transpose_layout`); its length must be a
            multiple of ``vl²`` and the boundary is periodic.
        out_t:
            Optional output array (also in transpose layout); a new array is
            allocated when omitted.

        Returns
        -------
        numpy.ndarray
            The updated grid, still in transpose layout.
        """
        if self.dims != 1:
            raise ValueError("simd_sweep_1d applies to 1-D stencils only")
        vl = machine.vl
        n = values_t.size
        block = vl * vl
        if n % block != 0:
            raise ValueError(f"array length {n} must be a multiple of vl²={block}")
        radius = self.radius
        if radius > vl:
            raise ValueError(
                f"folded radius {radius} exceeds the vector length {vl}; "
                "the assembled-vector construction supports radius <= vl"
            )
        if out_t is None:
            out_t = np.empty_like(values_t)
        nsets = n // block
        weight_vecs = self._sweep_1d_weight_vectors(machine)

        for s in range(nsets):
            base = s * block

            def load(delta: int, j: int, _s: int = s):
                return machine.load(values_t, ((_s + delta) % nsets) * block + j * vl)

            def store(j: int, vec, _base: int = base) -> None:
                machine.store(vec, out_t, _base + j * vl)

            self._sweep_1d_block(machine, weight_vecs, load, store)
        return out_t

    def _sweep_1d_weight_vectors(self, machine: SimdMachine) -> List:
        """Broadcast the folded kernel weights (the 1-D sweep prologue)."""
        return [machine.broadcast(float(w)) for w in self.matrix]

    def _sweep_1d_block(self, machine: SimdMachine, weight_vecs: Sequence, load, store) -> None:
        """Update one vector set given abstract memory operations.

        ``load(delta, j)`` must return register ``j`` of the vector set at
        ``delta`` ∈ {-1, 0, +1} sets from the current one; ``store(j, vec)``
        must store register ``j`` of the result set.  The interpreted sweep
        binds these to real machine loads/stores; the trace recorder binds
        them to tagged virtual registers.
        """
        vl = machine.vl
        radius = self.radius

        def load_partial(delta: int, needed: Sequence[int]):
            """Load only the registers of a neighbouring set that assembly uses."""
            out_regs: List = [None] * vl
            for j in needed:
                out_regs[j] = load(delta, j)
            return out_regs

        prev_needed = sorted({(vl - k) % vl for k in range(1, radius + 1)})
        next_needed = sorted({k - 1 for k in range(1, radius + 1)})
        current = [load(0, j) for j in range(vl)]
        previous = load_partial(-1, prev_needed)
        nxt = load_partial(+1, next_needed)
        cols = neighbor_vectors_1d(machine, current, previous, nxt, radius)
        machine.note_live_registers(len(cols) + len(weight_vecs) + 1)
        for j in range(vl):
            window = cols[j : j + 2 * radius + 1]
            acc = machine.mul(window[0], weight_vecs[0])
            for t in range(1, len(window)):
                acc = machine.fma(window[t], weight_vecs[t], acc)
            store(j, acc)

    # ------------------------------------------------------------------ #
    # simulated SIMD execution: 2-D (Figure 5 squares)
    # ------------------------------------------------------------------ #
    def simd_sweep_2d(
        self,
        machine: SimdMachine,
        values: np.ndarray,
        out: Optional[np.ndarray] = None,
        transpose_back: bool = True,
    ) -> np.ndarray:
        """One folded update of a 2-D grid via the Figure 5 square pipeline.

        The grid stays in the original row-major layout; each ``vl × vl``
        square is processed as: load its rows (plus ``2R`` halo rows) →
        vertical folding into the materialised counterparts → register
        transpose → horizontal folding using the transposed counterparts of
        the previous / current / next square (shifts reuse) → transpose back →
        store.  Boundaries are periodic and both extents must be multiples of
        ``vl``.

        Parameters
        ----------
        machine:
            Simulated SIMD machine.
        values:
            2-D ``float64`` grid.
        out:
            Optional output grid.
        transpose_back:
            Store results in the original row orientation (the default).  The
            paper's "weighted transpose is optional" alternative — storing the
            transposed orientation and letting the next sweep consume it — is
            modelled by passing ``False`` (used by the ablation benchmarks).
        """
        if self.dims != 2:
            raise ValueError("simd_sweep_2d applies to 2-D stencils only")
        vl = machine.vl
        rows, cols = values.shape
        if rows % vl != 0 or cols % vl != 0:
            raise ValueError(f"grid shape {values.shape} must be a multiple of vl={vl}")
        radius = self.radius
        if radius > vl:
            raise ValueError("folded radius must not exceed the vector length")
        if out is None:
            out = np.empty_like(values)

        n_row_blocks = rows // vl
        n_col_blocks = cols // vl
        weights = self._sweep_square_weight_vectors(machine)

        def vertical_and_transpose(block_row: int, block_col: int) -> List[List]:
            base_row = block_row * vl
            col0 = block_col * vl

            def load_row(s: int):
                return machine.load(values[(base_row + s) % rows], col0)

            return self._sweep_2d_vertical(machine, weights, load_row)

        for br in range(n_row_blocks):
            prev_t = vertical_and_transpose(br, n_col_blocks - 1)
            cur_t = vertical_and_transpose(br, 0)
            for bc in range(n_col_blocks):
                next_t = vertical_and_transpose(br, (bc + 1) % n_col_blocks)
                out_cols = self._sweep_square_horizontal(machine, weights, prev_t, cur_t, next_t)
                base_row = br * vl
                col0 = bc * vl

                def store(oi: int, vec, _base_row: int = base_row, _col0: int = col0) -> None:
                    machine.store(vec, out[_base_row + oi], _col0)

                self._sweep_square_store(machine, out_cols, store, transpose_back)
                prev_t, cur_t = cur_t, next_t
        if not transpose_back:
            # The caller receives logically-transposed vl×vl tiles; undo them
            # here (outside the instruction accounting) so the numerical
            # result is comparable — a real implementation alternates layouts
            # between time steps instead.
            out = _untranspose_tiles(out, vl)
        return out

    def _sweep_square_weight_vectors(self, machine: SimdMachine) -> "SquareWeights":
        """Broadcast all weight vectors of the square pipeline (the prologue).

        Shared by the 2-D and 3-D sweeps: a counterpart's ``vector``/``bias``
        run over the flattened leading offsets (kernel rows in 2-D,
        (plane, row) pairs in 3-D), so the broadcasts are dimension-generic.
        """
        return SquareWeights(
            row=[[machine.broadcast(float(w)) for w in cp.vector] for cp in self.materialized],
            bias=[
                [machine.broadcast(float(w)) for w in cp.bias] if np.any(cp.bias) else None
                for cp in self.materialized
            ],
            omega=[
                {idx: machine.broadcast(float(w)) for idx, w in cp.omega.items()}
                for cp in self.materialized
            ],
            horiz=[
                None if entry is None else (entry[0], machine.broadcast(float(entry[1])))
                for entry in self.position_map
            ],
        )

    def _sweep_2d_vertical(
        self, machine: SimdMachine, weights: "SquareWeights", load_row
    ) -> List[List]:
        """Vertical folds of one square, transposed, per materialised counterpart.

        ``load_row(s)`` must return the row vector at offset ``s`` ∈
        ``[-R, vl + R)`` from the square's top row (wrapping periodically).
        """
        vl = machine.vl
        radius = self.radius
        loaded = [load_row(s) for s in range(-radius, vl + radius)]
        machine.note_live_registers(len(loaded) + vl + len(self.materialized) * vl)
        per_rows: List[List] = []
        per_cp: List[List] = []
        for ci, cp in enumerate(self.materialized):
            folded_rows = []
            for oi in range(vl):
                if cp.mode == "direct":
                    window = loaded[oi : oi + 2 * radius + 1]
                    acc = machine.mul(window[0], weights.row[ci][0])
                    for t in range(1, len(window)):
                        acc = machine.fma(window[t], weights.row[ci][t], acc)
                else:
                    # Counterpart reuse is a relation between *fields*, so the
                    # reused operands must keep the row orientation the bias
                    # terms (and the final transpose) expect.
                    acc = None
                    for idx, wvec in weights.omega[ci].items():
                        term = machine.mul(per_rows[idx][oi], wvec)
                        acc = term if acc is None else machine.add(acc, term)
                    if weights.bias[ci] is not None:
                        window = loaded[oi : oi + 2 * radius + 1]
                        for t in range(len(window)):
                            if float(cp.bias[t]) != 0.0:
                                if acc is None:
                                    acc = machine.mul(window[t], weights.bias[ci][t])
                                else:
                                    acc = machine.fma(window[t], weights.bias[ci][t], acc)
                    if acc is None:
                        acc = machine.broadcast(0.0)
                folded_rows.append(acc)
            per_rows.append(folded_rows)
            per_cp.append(register_transpose(machine, folded_rows))
        return per_cp

    def _leading_use_mask(self) -> np.ndarray:
        """Boolean mask over the leading offsets any materialised fold reads.

        Shaped like the folded kernel's leading extents
        (``matrix.shape[:-1]``).  Direct counterparts read the rows their
        weight vector is non-zero on; combination counterparts only touch the
        grid through their bias (the rest comes from counterpart reuse).
        """
        used = np.zeros(int(np.prod(self.matrix.shape[:-1])), dtype=bool)
        for cp in self.materialized:
            src = cp.vector if cp.mode == "direct" else cp.bias
            used |= np.asarray(src) != 0.0
        return used.reshape(self.matrix.shape[:-1])

    def _sweep_3d_vertical(
        self, machine: SimdMachine, weights: "SquareWeights", load_row
    ) -> List[List]:
        """Vertical folds of one 3-D square, transposed, per counterpart.

        The vertical phase of a 3-D square folds over the full leading
        (plane, row) neighbourhood: ``load_row(dz, s)`` must return the row
        vector at plane offset ``dz`` ∈ ``[-R, R]`` and row offset ``s`` ∈
        ``[-R, vl + R)`` from the square's (plane, top-row) origin, wrapping
        periodically.  Only the contiguous per-plane row spans some
        materialised counterpart (or bias) actually reads are loaded.
        """
        vl = machine.vl
        k0, k1 = self.matrix.shape[0], self.matrix.shape[1]
        r0, r1 = (k0 - 1) // 2, (k1 - 1) // 2
        used = self._leading_use_mask()
        loaded: List[List] = [[None] * (vl + 2 * r1) for _ in range(k0)]
        n_loads = 0
        for dz in range(k0):
            ts = np.flatnonzero(used[dz])
            if ts.size == 0:
                continue
            for s in range(int(ts[0]), int(ts[-1]) + vl):
                loaded[dz][s] = load_row(dz - r0, s - r1)
                n_loads += 1
        machine.note_live_registers(n_loads + vl + len(self.materialized) * vl)
        per_rows: List[List] = []
        per_cp: List[List] = []
        for ci, cp in enumerate(self.materialized):
            vec = np.asarray(cp.vector).reshape(k0, k1)
            bias = np.asarray(cp.bias).reshape(k0, k1)
            folded_rows = []
            for oi in range(vl):
                acc = None
                if cp.mode == "direct":
                    for dz in range(k0):
                        for t in range(k1):
                            if float(vec[dz, t]) == 0.0:
                                continue
                            wvec = weights.row[ci][dz * k1 + t]
                            src = loaded[dz][oi + t]
                            acc = (
                                machine.mul(src, wvec)
                                if acc is None
                                else machine.fma(src, wvec, acc)
                            )
                else:
                    for idx, wvec in weights.omega[ci].items():
                        term = machine.mul(per_rows[idx][oi], wvec)
                        acc = term if acc is None else machine.add(acc, term)
                    if weights.bias[ci] is not None:
                        for dz in range(k0):
                            for t in range(k1):
                                if float(bias[dz, t]) == 0.0:
                                    continue
                                wvec = weights.bias[ci][dz * k1 + t]
                                src = loaded[dz][oi + t]
                                acc = (
                                    machine.mul(src, wvec)
                                    if acc is None
                                    else machine.fma(src, wvec, acc)
                                )
                if acc is None:
                    acc = machine.broadcast(0.0)
                folded_rows.append(acc)
            per_rows.append(folded_rows)
            per_cp.append(register_transpose(machine, folded_rows))
        return per_cp

    def _sweep_square_horizontal(
        self,
        machine: SimdMachine,
        weights: "SquareWeights",
        prev_t: List[List],
        cur_t: List[List],
        next_t: List[List],
    ) -> List:
        """Horizontal folding of one square (shifts reuse over three squares).

        Output column ``k`` uses transposed columns ``k - R .. k + R`` drawn
        from the previous / current / next squares' transposed counterparts.
        """
        vl = machine.vl
        radius = self.radius
        out_cols = []
        for k in range(vl):
            acc = None
            for pos, entry in enumerate(weights.horiz):
                if entry is None:
                    continue
                mat_idx, wvec = entry
                col = k + (pos - radius)
                if col < 0:
                    source = prev_t[mat_idx][vl + col]
                elif col >= vl:
                    source = next_t[mat_idx][col - vl]
                else:
                    source = cur_t[mat_idx][col]
                if acc is None:
                    acc = machine.mul(source, wvec)
                else:
                    acc = machine.fma(source, wvec, acc)
            out_cols.append(acc)
        return out_cols

    def _sweep_square_store(
        self, machine: SimdMachine, out_cols: Sequence, store, transpose_back: bool
    ) -> None:
        """Store one square's result via ``store(oi, vec)`` (row ``oi`` of the square)."""
        vl = machine.vl
        if transpose_back:
            out_rows = register_transpose(machine, out_cols)
            for oi in range(vl):
                store(oi, out_rows[oi])
        else:
            for k in range(vl):
                store(k, out_cols[k])

    # ------------------------------------------------------------------ #
    # simulated SIMD execution: 3-D (plane-wise Figure 5 squares)
    # ------------------------------------------------------------------ #
    def simd_sweep_3d(
        self,
        machine: SimdMachine,
        values: np.ndarray,
        out: Optional[np.ndarray] = None,
        transpose_back: bool = True,
    ) -> np.ndarray:
        """One folded update of a 3-D grid via the plane-wise square pipeline.

        The grid stays in the original row-major layout; each ``vl × vl``
        square of each plane is processed exactly like the 2-D Figure 5
        pipeline except that the vertical phase folds over the full leading
        (plane, row) neighbourhood of the square — the extra grid dimension
        is absorbed into the vertical folds, the horizontal folding, shifts
        reuse and the weighted transpose are shared with the 2-D sweep
        unchanged.  Boundaries are periodic; the two innermost extents must
        be multiples of ``vl`` (the plane count is unconstrained).

        Parameters
        ----------
        machine:
            Simulated SIMD machine.
        values:
            3-D ``float64`` grid.
        out:
            Optional output grid.
        transpose_back:
            Store results in the original row orientation (the default), or
            leave each ``vl × vl`` tile transposed (the "weighted transpose
            is optional" ablation, as in :meth:`simd_sweep_2d`).
        """
        if self.dims != 3:
            raise ValueError("simd_sweep_3d applies to 3-D stencils only")
        vl = machine.vl
        planes, rows, cols = values.shape
        if rows % vl != 0 or cols % vl != 0:
            raise ValueError(
                f"grid shape {values.shape} must be a multiple of vl={vl} "
                "along its two innermost extents"
            )
        radius = self.radius
        if radius > vl:
            raise ValueError("folded radius must not exceed the vector length")
        if out is None:
            out = np.empty_like(values)

        n_row_blocks = rows // vl
        n_col_blocks = cols // vl
        weights = self._sweep_square_weight_vectors(machine)

        for z in range(planes):
            for br in range(n_row_blocks):
                base_row = br * vl

                def vertical_and_transpose(
                    block_col: int, _z: int = z, _base_row: int = base_row
                ) -> List[List]:
                    col0 = block_col * vl

                    def load_row(dz: int, s: int):
                        return machine.load(
                            values[(_z + dz) % planes, (_base_row + s) % rows], col0
                        )

                    return self._sweep_3d_vertical(machine, weights, load_row)

                prev_t = vertical_and_transpose(n_col_blocks - 1)
                cur_t = vertical_and_transpose(0)
                for bc in range(n_col_blocks):
                    next_t = vertical_and_transpose((bc + 1) % n_col_blocks)
                    out_cols = self._sweep_square_horizontal(
                        machine, weights, prev_t, cur_t, next_t
                    )
                    col0 = bc * vl

                    def store(
                        oi: int, vec, _z: int = z, _base_row: int = base_row, _col0: int = col0
                    ) -> None:
                        machine.store(vec, out[_z, _base_row + oi], _col0)

                    self._sweep_square_store(machine, out_cols, store, transpose_back)
                    prev_t, cur_t = cur_t, next_t
        if not transpose_back:
            # Undo the per-tile transpose outside the instruction accounting,
            # as in simd_sweep_2d (a real implementation alternates layouts).
            out = _untranspose_plane_tiles(out, vl)
        return out

    # ------------------------------------------------------------------ #
    # analytic instruction profile
    # ------------------------------------------------------------------ #
    def instruction_profile(self, vl: int, shifts_reuse: bool = True) -> InstructionCounts:
        """Per-grid-point, per-*logical*-time-step instruction counts.

        The counts describe the steady-state inner loop of the register-level
        schedule (1-D stencils use the vector-set formulation, 2-D/3-D
        stencils the ``vl × vl`` square pipeline).  They are divided by
        ``vl² · m`` so the cost model can multiply by the number of points and
        time steps directly.

        Whenever the schedule can be lowered (``radius <= vl`` on a known
        ISA), the profile is derived from the typed IR after the default
        optimizing pass pipeline ran — the very ops
        ``simulate(..., optimize=True)`` replays and tallies — so the cost
        model's "estimated" counts and the trace backend's "simulated"
        counts come from one source and cannot drift apart.  (The pipeline's
        spill-aware re-scheduler matters here: the recorded program's
        conservative liveness would charge spills a well-scheduled kernel
        never pays.)  Schedules the register-level constructions cannot
        express (folded radius beyond the vector length) fall back to the
        closed-form model.

        Parameters
        ----------
        vl:
            Vector length of the target ISA (4 → AVX-2, 8 → AVX-512).
        shifts_reuse:
            Whether the trailing transposed counterparts of the previous
            square are reused (Section 3.4); disabling it charges the
            proportional share of the vertical phase again, which is what
            the ablation benchmark measures.
        """
        ir = self.schedule_ir(vl, optimize=True)
        if ir is not None:
            return self._ir_instruction_profile(ir, shifts_reuse)
        return self._analytic_instruction_profile(vl, shifts_reuse)

    def schedule_ir(self, vl: int, optimize: bool = False):
        """The schedule's cached :class:`~repro.ir.ops.ScheduleIR` for a lane width.

        This is the canonical per-schedule lowering cache — the instruction
        profile reads it and :func:`repro.ir.executor.compile_sweep` shares
        it, so the recording runs once per (schedule, ISA).  Returns ``None``
        when the register-level constructions cannot express the schedule
        (unknown lane width, or folded radius beyond ``vl``).
        ``optimize=True`` returns the default-pipeline-optimized program
        (cached separately from the raw recording).
        """
        from repro.simd.isa import AVX2, AVX512

        isa = {4: AVX2, 8: AVX512}.get(int(vl))
        if isa is None or self.radius > vl:
            return None
        cache = getattr(self, "_ir_cache", None)
        if cache is None:
            cache = {}
            self._ir_cache = cache
        key = (isa.name, bool(optimize))
        ir = cache.get(key)
        if ir is None:
            from repro.ir.lower import lower_schedule
            from repro.ir.passes import PassManager

            ir = cache.get((isa.name, False))
            if ir is None:
                ir = lower_schedule(self, isa)
                cache[(isa.name, False)] = ir
            if optimize:
                ir, _reports = PassManager(True).run(ir)
                cache[key] = ir
        return ir

    def _ir_instruction_profile(self, ir, shifts_reuse: bool) -> InstructionCounts:
        """Steady-state per-point counts derived from the lowered IR.

        With shifts reuse this is exactly
        :meth:`~repro.ir.ops.ScheduleIR.steady_counts_per_point`.  Without
        it, every square recomputes the ``R`` leading transposed columns its
        successor would otherwise hand over, so the whole vertical phase
        (folds, transposes, row loads and its share of spill traffic) is
        charged again proportionally (``1 + R/vl``).
        """
        if shifts_reuse or self.dims == 1:
            return ir.steady_counts_per_point()
        vl = ir.vl
        counts = InstructionCounts()
        for seg in ir.segments:
            if seg.trip == "once":
                continue
            seg_counts = seg.counts()
            if seg.trip == "vertical":
                seg_counts = seg_counts.scaled(1.0 + self.radius / vl)
            elif seg.trip == "prime":
                # Software-pipelined form: the priming copy mirrors the
                # vertical stage op-for-op, so it carries exactly the extra
                # ``R/vl`` share the stage form bills on top of the merged
                # segment's one-per-square execution.
                seg_counts = seg_counts.scaled(self.radius / vl)
            counts = counts.merge(seg_counts)
        return counts.scaled(1.0 / (vl * vl * self.m))

    def _analytic_instruction_profile(
        self, vl: int, shifts_reuse: bool = True
    ) -> InstructionCounts:
        """Closed-form fallback profile for schedules the IR cannot express."""
        counts = InstructionCounts()
        radius = self.radius
        width = self.width
        n_mat = self.num_materialized

        if self.dims == 1:
            points_per_unit = vl * vl  # one vector set
            loads = float(vl)
            stores = float(vl)
            assembled = 2.0 * min(radius, vl)
            permutes = assembled  # one rotate per assembled vector
            blends = assembled  # one blend per assembled vector
            fma = float(vl * (width - 1))
            mul = float(vl)
            counts.add(InstructionClass.LOAD, loads)
            counts.add(InstructionClass.STORE, stores)
            counts.add(InstructionClass.PERMUTE, permutes)
            counts.add(InstructionClass.BLEND, blends)
            counts.add(InstructionClass.FMA, fma)
            counts.add(InstructionClass.ARITH, mul)
        else:
            # Vertical/horizontal square pipeline.  The leading dimensions of
            # a d-dimensional folded kernel contribute rows_per_column row
            # loads and MACs per vertical fold.
            points_per_unit = vl * vl
            if self.dims == 3:
                # Rows loaded per square: the contiguous per-plane (row) spans
                # the materialised folds actually read — exactly what
                # _sweep_3d_vertical loads.
                used = self._leading_use_mask()
                loads = 0.0
                for dz in range(used.shape[0]):
                    ts = np.flatnonzero(used[dz])
                    if ts.size:
                        loads += float(int(ts[-1]) - int(ts[0]) + vl)
                if not shifts_reuse:
                    # Recomputing the neighbour squares' verticals re-loads
                    # the proportional share of their rows.
                    loads *= 1.0 + radius / vl
            else:
                loads = float(vl + 2 * radius)
            stores = float(vl)
            vertical_direct = 0.0
            vertical_reuse = 0.0
            for cp in self.materialized:
                if cp.mode == "direct":
                    vertical_direct += vl * float(np.count_nonzero(cp.vector))
                else:
                    vertical_reuse += vl * (len(cp.omega) + float(np.count_nonzero(cp.bias)))
            transposes = float(n_mat + 1) * transpose_cost(vl)
            horizontal_positions = sum(1 for e in self.position_map if e is not None)
            horizontal = float(vl * horizontal_positions)
            if not shifts_reuse:
                # Without shifts reuse the leading R transposed columns of the
                # square must be recomputed: charge the proportional share of
                # the vertical folds and transposes again.
                extra_frac = radius / vl
                vertical_direct *= 1.0 + extra_frac
                vertical_reuse *= 1.0 + extra_frac
                transposes *= 1.0 + extra_frac
            counts.add(InstructionClass.LOAD, loads)
            counts.add(InstructionClass.STORE, stores)
            counts.add(InstructionClass.FMA, vertical_direct + vertical_reuse + horizontal)
            counts.add(InstructionClass.PERMUTE, transposes * 0.5)
            counts.add(InstructionClass.SHUFFLE, transposes * 0.5)

        per_point = 1.0 / (points_per_unit * self.m)
        return counts.scaled(per_point)


def _shift_along_axis(
    array: np.ndarray, offset: int, axis: int, boundary: BoundaryCondition
) -> np.ndarray:
    """Return ``array`` sampled at ``index + offset`` along ``axis``.

    Periodic boundaries wrap; Dirichlet boundaries read the constant halo
    value for out-of-range positions.
    """
    if offset == 0:
        return array
    if boundary is BoundaryCondition.PERIODIC:
        return np.roll(array, -offset, axis=axis)
    out = np.full_like(array, DIRICHLET_VALUE)
    n = array.shape[axis]
    src = [slice(None)] * array.ndim
    dst = [slice(None)] * array.ndim
    if offset > 0:
        src[axis] = slice(offset, n)
        dst[axis] = slice(0, n - offset)
    else:
        src[axis] = slice(0, n + offset)
        dst[axis] = slice(-offset, n)
    out[tuple(dst)] = array[tuple(src)]
    return out


def _untranspose_tiles(array: np.ndarray, vl: int) -> np.ndarray:
    """Transpose every ``vl × vl`` tile of a 2-D array (helper for ``transpose_back=False``)."""
    rows, cols = array.shape
    # axes: (row block, lane, col block, lane) -> swap the two lane axes.
    tiled = array.reshape(rows // vl, vl, cols // vl, vl).swapaxes(1, 3)
    return np.ascontiguousarray(tiled).reshape(rows, cols)


def _untranspose_plane_tiles(array: np.ndarray, vl: int) -> np.ndarray:
    """Transpose every ``vl × vl`` tile of every plane of a 3-D array."""
    planes, rows, cols = array.shape
    tiled = array.reshape(planes, rows // vl, vl, cols // vl, vl).swapaxes(2, 4)
    return np.ascontiguousarray(tiled).reshape(planes, rows, cols)
