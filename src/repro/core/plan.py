"""Compile-once/run-many execution plans.

This module is the public API of the library.  A plan separates *what* a
stencil computes (the :class:`~repro.stencils.spec.StencilSpec`) from *how*
it is scheduled (method, ISA, unrolling, tiling, workers) — the paper's
central design point — and splits configuration from execution:

1. **Configure** with the fluent builder returned by :func:`plan`::

       p = (repro.plan("2d9p")
                .method("folded")
                .isa("avx512")
                .unroll(2)
                .tile(block_sizes=(32, 32), time_range=8)
                .parallel(workers=4)
                .compile())

2. **Compile once.**  :meth:`PlanBuilder.compile` validates the whole
   configuration, resolves the method through the pluggable registry
   (:mod:`repro.registry`) and — for methods that need one — constructs the
   :class:`~repro.core.vectorized_folding.FoldingSchedule` exactly once.

3. **Run many.**  The immutable :class:`CompiledPlan` exposes
   :meth:`~CompiledPlan.run`, :meth:`~CompiledPlan.run_batch` (thread-pool
   fan-out over many grids, bit-identical to sequential runs),
   :meth:`~CompiledPlan.simulate`, :meth:`~CompiledPlan.profile`,
   :meth:`~CompiledPlan.estimate`, :meth:`~CompiledPlan.folding_report` and
   :meth:`~CompiledPlan.explain`.

(The legacy ``StencilEngine`` facade that used to wrap this API was
removed; the migration table lives in the README.)
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.options import ExecutionOptions
from repro.core.folding import ProfitabilityReport, analyze_folding
from repro.core.vectorized_folding import FoldingSchedule
from repro.layout.transpose_layout import from_transpose_layout, to_transpose_layout
from repro.machine import MachineSpec, machine_for_isa
import repro.methods  # noqa: F401  (imports register the built-in methods)
from repro.parallel.executor import run_plan_batch, tessellate_run_parallel
from repro.parallel.model import MulticoreConfig, multicore_estimate
from repro.perfmodel.costmodel import PerformanceEstimate
from repro.perfmodel.profiles import MethodProfile
from repro.registry import MethodDescriptor, get_method, set_executor, simulation_support
from repro.simd.isa import IsaSpec, isa_for
from repro.simd.machine import InstructionCounts, SimdMachine
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.library import BenchmarkCase, get_benchmark
from repro.stencils.reference import reference_run, reference_step
from repro.stencils.spec import StencilSpec
from repro.tiling.tessellate import TessellationConfig, tessellate_run
from repro.trace.compiler import compile_sweep


@dataclass(frozen=True)
class PlanConfig:
    """Scheduling decisions of one compiled plan.

    Attributes
    ----------
    method:
        Registry key of the execution method.
    isa:
        ``"avx2"`` or ``"avx512"``.
    unroll:
        Temporal folding factor ``m`` (consumed by methods with
        ``uses_unroll``).
    tiling:
        Optional tessellate-tiling configuration.
    shifts_reuse:
        Whether the shifts-reuse optimisation (Section 3.4) is assumed by the
        instruction profile; the ablation benchmarks switch it off.
    workers:
        Thread-pool width used for tessellated tile execution and as the
        fan-out of :meth:`CompiledPlan.run_batch`.  ``None`` (the default)
        means "unconfigured": tiled execution stays sequential and
        ``run_batch`` picks its own default pool; an explicit ``workers=1``
        forces sequential execution everywhere.
    """

    method: str = "folded"
    isa: str = "avx2"
    unroll: int = 2
    tiling: Optional[TessellationConfig] = None
    shifts_reuse: bool = True
    workers: Optional[int] = None


class PlanBuilder:
    """Fluent configurator for a :class:`CompiledPlan`.

    Every setter returns the builder, so configurations read as one chain;
    nothing is validated until :meth:`compile` (the single validation point).
    """

    def __init__(
        self,
        spec: Union[StencilSpec, BenchmarkCase, str],
        machine: Optional[MachineSpec] = None,
    ):
        if isinstance(spec, str):
            spec = get_benchmark(spec).spec
        elif isinstance(spec, BenchmarkCase):
            spec = spec.spec
        if not isinstance(spec, StencilSpec):
            raise TypeError(
                "plan() expects a StencilSpec, a BenchmarkCase or a benchmark key"
            )
        self._spec = spec
        self._machine = machine
        self._method = "folded"
        self._isa = "avx2"
        self._unroll = 2
        self._tiling: Optional[TessellationConfig] = None
        self._shifts_reuse = True
        self._workers: Optional[int] = None
        # Axes the caller pinned explicitly — autotune() keeps those fixed
        # and searches only the remaining ones.
        self._explicit: set = set()

    def method(self, key: str) -> "PlanBuilder":
        """Select the execution method by registry key."""
        self._method = key.strip().lower()
        self._explicit.add("method")
        return self

    def isa(self, name: str) -> "PlanBuilder":
        """Select the instruction set (``"avx2"`` or ``"avx512"``)."""
        self._isa = name.strip().lower()
        self._explicit.add("isa")
        return self

    def unroll(self, m: int) -> "PlanBuilder":
        """Set the temporal folding factor ``m``."""
        self._unroll = int(m)
        self._explicit.add("m")
        return self

    def tile(
        self,
        block_sizes: Union[TessellationConfig, Sequence[Optional[int]], None] = None,
        time_range: Optional[int] = None,
    ) -> "PlanBuilder":
        """Attach a tessellate tiling (a config object, or block sizes + TR).

        ``tile(None)`` removes a previously configured tiling.
        """
        if block_sizes is None and time_range is None:
            self._tiling = None
        elif isinstance(block_sizes, TessellationConfig):
            if time_range is not None:
                raise ValueError("pass either a TessellationConfig or block sizes + time_range")
            self._tiling = block_sizes
        else:
            if block_sizes is None or time_range is None:
                raise ValueError("tile() needs both block sizes and a time range")
            self._tiling = TessellationConfig(
                block_sizes=tuple(block_sizes), time_range=int(time_range)
            )
        self._explicit.add("tiling")
        return self

    def parallel(self, workers: int = 8) -> "PlanBuilder":
        """Set the thread-pool width for tiled execution and batch fan-out.

        ``workers=1`` is an explicit request for sequential execution (it
        also pins :meth:`CompiledPlan.run_batch` to a sequential loop);
        leaving ``parallel`` uncalled lets ``run_batch`` pick its own
        default pool while tiled execution stays sequential.
        """
        self._workers = int(workers)
        return self

    def shifts_reuse(self, enabled: bool = True) -> "PlanBuilder":
        """Toggle the shifts-reuse assumption of the instruction profile."""
        self._shifts_reuse = bool(enabled)
        return self

    def compile(self) -> "CompiledPlan":
        """Validate the configuration and build the immutable plan.

        Raises ``KeyError`` for unknown methods/ISAs and ``ValueError`` for
        invalid numeric settings or method/stencil mismatches.
        """
        descriptor = get_method(self._method)
        if descriptor.virtual:
            raise KeyError(
                f"method {self._method!r} is a figure label, not an executable method"
            )
        if descriptor.profile_only:
            raise KeyError(
                f"method {self._method!r} is profile-only (a performance model "
                "without a numeric executor); it cannot be compiled into a plan"
            )
        if self._unroll < 1:
            raise ValueError("unroll must be >= 1")
        if self._workers is not None and self._workers < 1:
            raise ValueError("workers must be >= 1")
        isa_spec = isa_for(self._isa)
        if descriptor.requires_linear and not self._spec.linear:
            raise ValueError(
                f"method {descriptor.key!r} requires a linear stencil; "
                f"{self._spec.name!r} is non-linear"
            )
        if descriptor.supports_simulation and self._spec.dims not in descriptor.simulation_dims:
            raise ValueError(
                f"method {descriptor.key!r} has no {self._spec.dims}-D register-level "
                f"schedule (its simulation covers "
                f"{'/'.join(f'{d}-D' for d in descriptor.simulation_dims)}); "
                + _describe_simulation_support()
            )
        config = PlanConfig(
            method=descriptor.key,
            isa=self._isa,
            unroll=self._unroll,
            tiling=self._tiling,
            shifts_reuse=self._shifts_reuse,
            workers=self._workers,
        )
        return CompiledPlan(self._spec, config, descriptor, isa_spec)

    def autotune(
        self,
        budget: int = 3,
        objective: str = "cycles_per_point",
        **kwargs,
    ):
        """Staged search over the plan's configuration space.

        Generates every valid ``(method, m, isa, tiling, pipeline, backend)``
        candidate (axes pinned on this builder — ``.method()``, ``.isa()``,
        ``.unroll()``, ``.tile()`` — stay fixed), scores each with the IR
        cost model (predict stage), prunes unprofitable candidates, measures
        the surviving top-``budget`` through :meth:`CompiledPlan.measure`
        (measure stage) and returns an immutable
        :class:`~repro.autotune.TuneResult` — winner plan plus the full
        ranked ledger.  See :func:`repro.autotune.autotune` for the keyword
        reference (``space=``, ``workload=``, ``cache=``, ``seed=``, ...).
        """
        from repro.autotune.tuner import autotune as _autotune

        if "methods" not in kwargs and "space" not in kwargs and "method" in self._explicit:
            kwargs["methods"] = (self._method,)
        if "isas" not in kwargs and "space" not in kwargs and "isa" in self._explicit:
            kwargs["isas"] = (self._isa,)
        if "m_values" not in kwargs and "space" not in kwargs and "m" in self._explicit:
            kwargs["m_values"] = (self._unroll,)
        if (
            "tilings" not in kwargs
            and "space" not in kwargs
            and "tiling" in self._explicit
            and self._tiling is not None
        ):
            kwargs["tilings"] = (self._tiling,)
        return _autotune(
            self._spec,
            machine=self._machine,
            budget=budget,
            objective=objective,
            **kwargs,
        )


def _describe_simulation_support() -> str:
    """One line naming, per dimensionality, the methods that can simulate it."""
    support = simulation_support()
    if not support:
        return "no registered method supports simulated execution"
    parts = [f"{dims}-D: {', '.join(keys)}" for dims, keys in support.items()]
    return "simulation-capable methods by dimensionality — " + "; ".join(parts)


def plan(
    spec: Union[StencilSpec, BenchmarkCase, str],
    machine: Optional[MachineSpec] = None,
) -> PlanBuilder:
    """Start configuring an execution plan for ``spec``.

    ``spec`` may be a :class:`StencilSpec`, a :class:`BenchmarkCase` or a
    benchmark key such as ``"2d9p"``.  ``machine`` optionally names the
    machine model used by :meth:`PlanBuilder.autotune` (per-ISA variants are
    derived with :func:`repro.machine.isa_variant`); the paper's Xeon Gold
    6140 is assumed when omitted.
    """
    return PlanBuilder(spec, machine=machine)


class CompiledPlan:
    """An immutable, validated execution plan — compile once, run many.

    Instances are produced by :meth:`PlanBuilder.compile`; all configuration
    is frozen at compile time, including the method descriptor resolved from
    the registry and (for folding methods) the
    :class:`~repro.core.vectorized_folding.FoldingSchedule`, which is
    constructed exactly once and reused by every :meth:`run`,
    :meth:`run_batch` and :meth:`simulate` call.
    """

    def __init__(
        self,
        spec: StencilSpec,
        config: PlanConfig,
        descriptor: MethodDescriptor,
        isa_spec: IsaSpec,
    ):
        self.spec = spec
        self.config = config
        self.descriptor = descriptor
        self.isa_spec = isa_spec
        # The schedule is the expensive part of compilation (kernel
        # composition + counterpart planning); building it here — never in
        # run() — is what makes the plan amortisable across many grids and
        # safe to share between batch threads.  Methods that only need a
        # schedule for simulated execution (transpose) defer it to the first
        # simulate() call instead of taxing every compile.
        schedule: Optional[FoldingSchedule] = None
        if spec.linear and descriptor.uses_schedule:
            schedule = FoldingSchedule(spec, self.steps_per_update)
        self.schedule = schedule
        self._lazy_schedule: Optional[FoldingSchedule] = None
        self._lazy_schedule_lock = threading.Lock()
        # Compiled sweep traces for the trace-replay simulation backend,
        # keyed by (isa name, dims).  Built lazily on the first simulate()
        # call and reused across steps, repeated calls and batch runs.
        self._trace_cache: dict = {}
        self._trace_lock = threading.Lock()
        self._frozen = True

    def __setattr__(self, name: str, value: object) -> None:
        if getattr(self, "_frozen", False):
            raise AttributeError(
                "CompiledPlan is immutable; build a new plan with repro.plan(...)"
            )
        super().__setattr__(name, value)

    def __repr__(self) -> str:
        return (
            f"CompiledPlan(stencil={self.spec.name!r}, method={self.config.method!r}, "
            f"isa={self.config.isa!r}, unroll={self.config.unroll}, "
            f"tiled={self.config.tiling is not None}, workers={self.config.workers!r})"
        )

    # ------------------------------------------------------------------ #
    # derived configuration
    # ------------------------------------------------------------------ #
    @property
    def method_key(self) -> str:
        """Registry key of the plan's method."""
        return self.config.method

    @property
    def label(self) -> str:
        """Display label of the plan's method."""
        return self.descriptor.label

    @property
    def steps_per_update(self) -> int:
        """Time steps advanced per folded update (1 for single-step methods)."""
        return self.config.unroll if self.descriptor.uses_unroll else 1

    # ------------------------------------------------------------------ #
    # numerical execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        grid: Grid,
        steps: int,
        backend: Optional[str] = None,
        optimize: Union[bool, Sequence, None] = False,
        passes: Optional[Sequence] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> np.ndarray:
        """Advance ``grid`` by ``steps`` time steps and return the final values.

        Every method produces the same numerical answer as the reference
        executor (asserted by the test suite); what changes between methods
        is *how* it is computed — the DLT layout, the folded multi-step path,
        tessellated tiles, or plain reference arithmetic.  ``run`` is pure
        (the grid is not mutated), which is what makes :meth:`run_batch`
        deterministic under thread fan-out.

        ``backend`` selects the execution engine: ``None`` / ``"auto"`` (the
        default) runs the method's own numeric executor; ``"kernel"``,
        ``"trace"`` or ``"interpret"`` force the register-level schedule
        through the named engine (periodic linear stencils on simulation-
        capable methods only, grid extents in the schedule's block multiples;
        tiling configuration is bypassed).  Whole folded updates run on the
        chosen engine and any ``steps % m`` remainder finishes with exact
        reference steps, so every backend returns bit-identical values.
        ``optimize`` selects the IR pass pipeline of an explicit trace or
        kernel backend (see :meth:`simulate`); it requires one.  ``passes``
        is sugar for ``optimize=<sequence>``; ``options`` passes a
        pre-validated :class:`~repro.backend.ExecutionOptions` instead of the
        keyword trio.  All spellings normalize through the same validator.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        opts = ExecutionOptions.normalize(
            backend=backend, optimize=optimize, passes=passes, options=options, context="run"
        )
        if opts.explicit:
            return self._run_backend(grid, steps, opts.backend, opts.optimize)
        if steps == 0:
            return grid.values.copy()
        if self.descriptor.executor is not None:
            return self.descriptor.executor(self, grid, steps)
        return self.execute_generic(grid, steps)

    def _run_backend(
        self,
        grid: Grid,
        steps: int,
        backend: str,
        optimize: Union[bool, Sequence, None] = False,
    ) -> np.ndarray:
        """Numeric execution forced through one register-level engine.

        ``backend``/``optimize`` arrive pre-validated by
        :meth:`ExecutionOptions.normalize` in :meth:`run`.
        """
        if steps == 0:
            return grid.values.copy()
        m = self.steps_per_update
        sweeps, remainder = divmod(steps, m)
        if sweeps > 0:
            values, _ = self.simulate(grid, sweeps * m, backend=backend, optimize=optimize)
        else:
            values = grid.values.copy()
        for _ in range(remainder):
            values = reference_step(self.spec, values, grid.boundary, aux=grid.aux)
        return values

    def execute_generic(self, grid: Grid, steps: int) -> np.ndarray:
        """Shared fallback path: tessellated tiles if tiled, else reference.

        Method executors call back into this when their fast path does not
        apply (e.g. the DLT executor under tiling, the folded executor on a
        non-linear stencil).
        """
        if self.config.tiling is not None:
            workers = self.config.workers
            if workers is not None and workers > 1:
                return tessellate_run_parallel(
                    self.spec, grid, steps, self.config.tiling, workers=workers
                )
            return tessellate_run(self.spec, grid, steps, self.config.tiling)
        return reference_run(self.spec, grid, steps)

    def run_batch(
        self,
        grids: Sequence[Grid],
        steps: int,
        workers: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Run the plan over many grids concurrently; results keep input order.

        The fan-out happens on a thread pool
        (:func:`repro.parallel.executor.run_plan_batch`); because :meth:`run`
        is pure and the schedule is frozen at compile time, the batch result
        is bit-identical to ``[self.run(g, steps) for g in grids]`` for any
        worker count.
        """
        return run_plan_batch(self, grids, steps, workers=workers)

    # ------------------------------------------------------------------ #
    # simulated execution
    # ------------------------------------------------------------------ #
    def simulate(
        self,
        grid: Grid,
        steps: int,
        machine: Optional[SimdMachine] = None,
        backend: Optional[str] = "trace",
        optimize: Union[bool, Sequence, None] = False,
        passes: Optional[Sequence] = None,
        options: Optional[ExecutionOptions] = None,
    ) -> Tuple[np.ndarray, InstructionCounts]:
        """Execute the register-level schedule on the simulated SIMD machine.

        Supported for methods with the ``supports_simulation`` capability on
        1-D grids (held in the transpose layout for the duration of the run,
        as Section 2.2 prescribes), 2-D grids (original layout, Figure 5
        square pipeline) and 3-D grids (original layout, plane-wise square
        pipeline with the leading dimension folded into the vertical phase).
        Grids must be periodic and sized in multiples of ``vl²`` (1-D) or
        ``vl`` along the two innermost extents (2-D/3-D).  Returns the final
        values together with the instruction tally of the whole run.

        Parameters
        ----------
        grid:
            Periodic grid to advance.
        steps:
            Time steps (a multiple of the plan's unroll factor).
        machine:
            Optional machine to execute/account on; a fresh machine in the
            plan's ISA is created when omitted.  Counts accumulate on the
            machine across calls with either backend.
        backend:
            ``"trace"`` (the default) lowers the schedule to the typed IR
            once, compiles it to a batched NumPy program (cached on the plan)
            and replays it over all block positions per sweep — bit-identical
            values and identical instruction counts, typically orders of
            magnitude faster.  ``"kernel"`` additionally code-generates the
            IR into one fused megakernel (:mod:`repro.backend`) — the same
            NumPy operations as trace replay emitted as straight-line source
            with no per-op dispatch, so values and counts stay bit-identical
            while the per-sweep overhead drops further.  ``"interpret"``
            executes the schedule one simulated instruction at a time (the
            oracle the other backends are tested against).
        optimize:
            IR pass-pipeline selection for the trace and kernel backends.
            ``False`` (the
            default) replays the recorded program as-is — counts identical to
            the interpreter.  ``True`` runs the default optimizing pipeline
            (:data:`repro.ir.passes.DEFAULT_PASSES`); a sequence of pass
            names/callables runs a custom pipeline.  Optimized replay stays
            bit-identical to interpreted execution but accounts the
            optimized program's own (smaller) instruction tally.  The
            unoptimized, default-optimized and named-pass variants are each
            compiled at most once and cached side by side on the plan;
            pipelines containing custom callables are compiled per call (an
            empty pass selection means "no optimization").
        passes:
            Sugar for ``optimize=<sequence>``.
        options:
            A pre-validated :class:`~repro.backend.ExecutionOptions`
            replacing the ``backend``/``optimize``/``passes`` trio.
        """
        # simulate()'s keyword default is its context default; map it to None
        # so one validator owns the defaulting for every entry point.
        opts = ExecutionOptions.normalize(
            backend=None if backend == "trace" else backend,
            optimize=optimize,
            passes=passes,
            options=options,
            context="simulate",
        )
        backend, optimize = opts.backend, opts.optimize
        if not self.descriptor.supports_simulation:
            raise ValueError(
                f"method {self.config.method!r} does not support simulated execution"
            )
        if not self.spec.linear:
            raise ValueError("simulated execution requires a linear stencil")
        if grid.boundary is not BoundaryCondition.PERIODIC:
            raise ValueError("simulated execution requires periodic boundaries")
        machine = machine or SimdMachine(self.isa_spec)
        m = self.steps_per_update
        if steps % m != 0:
            raise ValueError(f"steps ({steps}) must be a multiple of the unroll factor {m}")
        if grid.dims not in self.descriptor.simulation_dims:
            raise ValueError(
                f"method {self.config.method!r} cannot simulate a {grid.dims}-D grid; "
                + _describe_simulation_support()
            )
        schedule = self._simulation_schedule()
        vl = machine.vl
        values = grid.values.copy()

        if backend in ("trace", "kernel"):
            sweeps = steps // m
            if backend == "kernel":
                compiled = self._compiled_kernel(schedule, machine.isa, grid.dims, optimize)
            else:
                compiled = self._compiled_sweep(schedule, machine.isa, grid.dims, optimize)
            if grid.dims == 1:
                data = to_transpose_layout(values, vl)
                for _ in range(sweeps):
                    data = compiled.replay(data)
                result = from_transpose_layout(data, vl)
            else:
                for _ in range(sweeps):
                    values = compiled.replay(values)
                result = values
            if sweeps > 0:
                counts, peak, spills = compiled.sweep_counts(grid.values.shape)
                machine.absorb(counts.scaled(sweeps), peak, spills * sweeps)
            return result, machine.counts

        if grid.dims == 1:
            data = to_transpose_layout(values, vl)
            for _ in range(steps // m):
                data = schedule.simd_sweep_1d(machine, data)
            return from_transpose_layout(data, vl), machine.counts
        sweep = schedule.simd_sweep_2d if grid.dims == 2 else schedule.simd_sweep_3d
        for _ in range(steps // m):
            values = sweep(machine, values)
        return values, machine.counts

    def _compiled_sweep(
        self,
        schedule: FoldingSchedule,
        isa: IsaSpec,
        dims: int,
        optimize: Union[bool, Sequence, None] = False,
    ):
        """The cached IR-compiled sweep for ``(isa, dims, optimize)``.

        Compiled at most once per plan, ISA and pass selection — the
        lower/optimize/compile step is grid-shape independent, so every
        subsequent simulate() call (and every step within one) reuses it.
        Unoptimized and optimized variants are cached side by side.
        """
        if optimize is False or optimize is None:
            opt_key: object = "none"
        else:
            from repro.ir.passes import pipeline_key

            opt_key = pipeline_key(optimize)
        if isinstance(opt_key, tuple) and not all(isinstance(p, str) for p in opt_key):
            # Pipelines containing custom callables are compiled fresh —
            # caching them would retain one CompiledSweep (and the closure it
            # keys on) per distinct callable for the plan's lifetime.
            return compile_sweep(schedule, isa, optimize=optimize)
        key = (isa.name, dims, opt_key)
        compiled = self._trace_cache.get(key)
        if compiled is None:
            with self._trace_lock:
                compiled = self._trace_cache.get(key)
                if compiled is None:
                    compiled = compile_sweep(schedule, isa, optimize=optimize)
                    self._trace_cache[key] = compiled
        return compiled

    def _compiled_kernel(
        self,
        schedule: FoldingSchedule,
        isa: IsaSpec,
        dims: int,
        optimize: Union[bool, Sequence, None] = False,
    ):
        """The cached generated megakernel for ``(isa, dims, optimize)``.

        Mirrors :meth:`_compiled_sweep` (same per-plan cache, disjoint key
        prefix); the kernel itself is additionally shared process-wide
        through :mod:`repro.backend`'s content-key cache, so two plans whose
        schedules lower to the same program compile one kernel.
        """
        from repro.backend.codegen import compile_kernel

        if optimize is False or optimize is None:
            opt_key: object = "none"
        else:
            from repro.ir.passes import pipeline_key

            opt_key = pipeline_key(optimize)
        if isinstance(opt_key, tuple) and not all(isinstance(p, str) for p in opt_key):
            return compile_kernel(schedule, isa, optimize=optimize)
        key = ("kernel", isa.name, dims, opt_key)
        compiled = self._trace_cache.get(key)
        if compiled is None:
            with self._trace_lock:
                compiled = self._trace_cache.get(key)
                if compiled is None:
                    compiled = compile_kernel(schedule, isa, optimize=optimize)
                    self._trace_cache[key] = compiled
        return compiled

    def measure(
        self,
        grid: Grid,
        steps: int,
        backend: Optional[str] = "kernel",
        optimize: Union[bool, Sequence, None] = False,
        passes: Optional[Sequence] = None,
        options: Optional[ExecutionOptions] = None,
        **kwargs,
    ):
        """Measured wall-clock execution of the plan on one backend.

        Convenience front end to
        :func:`repro.backend.measure.measure_backend`: warmup + repeated
        timed runs of ``run(grid, steps, backend=backend)``, reported as a
        :class:`~repro.backend.measure.BackendMeasurement` (median seconds,
        measured cycles per point for any assumed frequency).  The
        ``backend``/``optimize``/``passes``/``options`` spellings validate
        through :class:`~repro.backend.ExecutionOptions` like :meth:`run`;
        the remaining keywords — ``warmup``, ``repeats``, ``clock`` — pass
        through.
        """
        from repro.backend.measure import measure_backend

        opts = ExecutionOptions.normalize(
            backend=None if backend == "kernel" else backend,
            optimize=optimize,
            passes=passes,
            options=options,
            context="measure",
        )
        return measure_backend(
            self, grid, steps, backend=opts.backend, optimize=opts.optimize, **kwargs
        )

    def _simulation_schedule(self) -> FoldingSchedule:
        """The folding schedule backing simulated execution.

        Folding methods share the schedule built at compile time; methods
        that only simulate (transpose, m = 1) build theirs lazily on first
        use — once per plan, behind a lock so batch threads cannot race.
        """
        if self.schedule is not None:
            return self.schedule
        if self._lazy_schedule is None:
            with self._lazy_schedule_lock:
                if self._lazy_schedule is None:
                    object.__setattr__(
                        self,
                        "_lazy_schedule",
                        FoldingSchedule(self.spec, self.steps_per_update),
                    )
        assert self._lazy_schedule is not None
        return self._lazy_schedule

    # ------------------------------------------------------------------ #
    # analysis
    # ------------------------------------------------------------------ #
    def profile(self) -> MethodProfile:
        """Steady-state per-point instruction profile of the compiled method."""
        kwargs = dict(
            isa=self.config.isa,
            m=self.config.unroll,
            shifts_reuse=self.config.shifts_reuse,
        )
        if self.descriptor.uses_schedule and self.schedule is not None:
            # Hand the compile-time schedule to the builder so profiling does
            # not repeat the counterpart planning (the registry drops the
            # kwarg for builders that do not declare it).
            kwargs["schedule"] = self.schedule
        return self.descriptor.profile(self.spec, **kwargs)

    def estimate(
        self,
        problem_shape: Sequence[int],
        time_steps: int,
        cores: int = 1,
        machine: Optional[MachineSpec] = None,
        multicore: MulticoreConfig = MulticoreConfig(),
    ) -> PerformanceEstimate:
        """Modelled performance for ``problem_shape`` over ``time_steps``.

        Parameters
        ----------
        problem_shape:
            Spatial extents of the problem (paper scale or otherwise).
        time_steps:
            Total time steps.
        cores:
            Active cores (1 for the sequential experiments).
        machine:
            Machine description; defaults to the paper's Xeon Gold 6140 in
            the plan's ISA configuration.
        multicore:
            Overhead parameters of the multicore model.
        """
        machine = machine or machine_for_isa(self.config.isa)
        return multicore_estimate(
            self.profile(),
            grid_shape=problem_shape,
            time_steps=time_steps,
            machine=machine,
            cores=cores,
            radius=self.spec.radius,
            tiling=self.config.tiling,
            config=multicore,
        )

    def folding_report(self) -> ProfitabilityReport:
        """Profitability analysis (Section 3.2) for the plan's unroll factor."""
        if not self.spec.linear:
            raise ValueError("folding profitability is defined for linear stencils only")
        return analyze_folding(self.spec, max(2, self.config.unroll))

    def explain(self) -> str:
        """Human-readable dump of the chosen execution path and analysis."""
        spec, config = self.spec, self.config
        lines = [
            f"CompiledPlan for {spec.name!r} "
            f"({spec.npoints}-point {spec.shape_class.value}, {spec.dims}-D, "
            f"{'linear' if spec.linear else 'non-linear'})",
            f"  method         : {config.method} — {self.label}"
            + (f" ({self.descriptor.description})" if self.descriptor.description else ""),
            f"  isa            : {config.isa} (vl={self.isa_spec.vector_lanes} doubles)",
            f"  unroll (m)     : {config.unroll}"
            + ("" if self.descriptor.uses_unroll else " (unused by this method)"),
            f"  shifts reuse   : {'on' if config.shifts_reuse else 'off'}",
        ]
        if config.tiling is not None:
            lines.append(
                f"  tiling         : tessellation blocks={config.tiling.block_sizes} "
                f"time_range={config.tiling.time_range}"
            )
        else:
            lines.append("  tiling         : none")
        workers = "1 (unconfigured)" if config.workers is None else str(config.workers)
        lines.append(f"  workers        : {workers}")
        lines.append(f"  execution path : {self._path_description()}")
        if self.schedule is not None:
            variant = (
                "separable fast path"
                if self.schedule.separable_fast_path
                else "counterpart reuse"
            )
            lines.append(
                f"  schedule       : folded radius {self.schedule.radius}, "
                f"{self.schedule.num_materialized} materialized counterpart(s), {variant}"
            )
        ir_line = self._ir_pipeline_description()
        if ir_line is not None:
            lines.append(f"  ir pipeline    : {ir_line}")
        graph_line = self._dependency_graph_description()
        if graph_line is not None:
            lines.append(f"  dep graph      : {graph_line}")
        try:
            profile = self.profile()
        except (TypeError, ValueError):
            # No vectorization model, or a plug-in profile builder needing
            # extra arguments explain() cannot supply.
            lines.append("  profile        : none (no vectorization model)")
        else:
            lines.append(
                f"  profile        : {profile.data_organization_per_point:.3f} data-org + "
                f"{profile.arithmetic_per_point:.3f} arithmetic vector instr/point, "
                f"{profile.sweeps_per_step:g} sweep(s)/step"
            )
        if spec.linear:
            report = self.folding_report()
            lines.append(
                f"  profitability  : |C(E)|={report.collect_naive} → "
                f"|C(E_Λ)|={report.collect_optimized} (optimised), "
                f"P={report.profitability_optimized:.1f}"
            )
        return "\n".join(lines)

    def _ir_pipeline_description(self) -> Optional[str]:
        """Pass-by-pass static count deltas of the default IR pipeline.

        ``None`` when the plan has no register-level schedule to lower (the
        method does not simulate, the stencil's dimensionality is not
        covered, or the folded radius exceeds the vector length).
        """
        if (
            self.schedule is None
            or not self.descriptor.supports_simulation
            or self.spec.dims not in self.descriptor.simulation_dims
        ):
            return None
        try:
            compiled = self._compiled_sweep(
                self.schedule, self.isa_spec, self.spec.dims, optimize=True
            )
        except ValueError:
            return None
        reports = compiled.pass_reports
        if not reports:
            return None
        before = reports[0].counts_before.total
        after = reports[-1].counts_after.total
        effective = [
            r.describe() for r in reports if r.removed or r.spills_after != r.spills_before
        ]
        detail = "; ".join(effective) if effective else "no pass fired"
        line = f"{before:g} → {after:g} static ops ({detail})"
        cp_before = reports[0].critical_path_before
        cp_after = reports[-1].critical_path_after
        if cp_before or cp_after:
            line += f"; critical path {cp_before:g} → {cp_after:g} cyc"
        return line

    def _dependency_graph_description(self) -> Optional[str]:
        """Per-segment dependency-graph statistics of the optimized program.

        One clause per steady-state segment: node count, def-use and memory
        edge counts, how many memory-op pairs the alias analysis proved
        independent ("broken"), and the latency-weighted critical path.
        """
        if (
            self.schedule is None
            or not self.descriptor.supports_simulation
            or self.spec.dims not in self.descriptor.simulation_dims
        ):
            return None
        try:
            compiled = self._compiled_sweep(
                self.schedule, self.isa_spec, self.spec.dims, optimize=True
            )
        except ValueError:
            return None
        from repro.ir.dependency import program_stats

        stats = program_stats(compiled.ir)
        if not stats:
            return None
        clauses = [
            f"{name}: {s.nodes} nodes, {s.def_use_edges} def-use + {s.memory_edges} mem edges "
            f"({s.memory_edges_broken} broken by aliasing), cp {s.critical_path_cycles:g} cyc"
            for name, s in stats.items()
        ]
        return "; ".join(clauses)

    def _path_description(self) -> str:
        if self.descriptor.describe_path is not None:
            return self.descriptor.describe_path(self)
        return describe_generic_path(self)


# --------------------------------------------------------------------------- #
# generic + folded numeric paths (registered with the registry below)
# --------------------------------------------------------------------------- #
def describe_generic_path(plan_: CompiledPlan) -> str:
    """Description of :meth:`CompiledPlan.execute_generic` for ``explain()``."""
    if plan_.config.tiling is not None:
        workers = plan_.config.workers
        if workers is not None and workers > 1:
            return (
                f"tessellated tiles on a {workers}-worker thread pool "
                "(stage barriers, disjoint tiles)"
            )
        return "tessellated tiles, sequential stage-by-stage execution"
    return "reference arithmetic, one sweep per time step"


def _execute_folded(plan_: CompiledPlan, grid: Grid, steps: int) -> np.ndarray:
    """Folded fast path with exact Dirichlet boundary handling."""
    if plan_.schedule is None:
        # Non-linear stencils cannot fold their arithmetic; the method
        # degenerates to the generic path (profile-wise it still models the
        # in-register m-step update, see repro.methods.profile_folded).
        return plan_.execute_generic(grid, steps)
    m = plan_.config.unroll
    schedule = plan_.schedule
    values = grid.values.copy()
    remaining = steps
    while remaining >= m:
        folded = schedule.numpy_step(values, grid.boundary)
        if grid.boundary is BoundaryCondition.DIRICHLET:
            folded = _fix_dirichlet_band(plan_.spec, values, folded, m)
        values = folded
        remaining -= m
    for _ in range(remaining):
        values = reference_step(plan_.spec, values, grid.boundary, aux=grid.aux)
    return values


def _fix_dirichlet_band(
    spec: StencilSpec, before: np.ndarray, folded: np.ndarray, m: int
) -> np.ndarray:
    """Recompute the boundary band step-by-step (ghost-zone handling).

    A folded ``m``-step update is exact only for points at distance
    ``>= (m-1)·r`` from a Dirichlet boundary; the band closer than that is
    recomputed with ``m`` single steps on a strip wide enough that the
    strip's interior edge cannot contaminate the kept band.
    """
    radius = spec.radius
    band = (m - 1) * radius
    if band <= 0:
        return folded
    out = folded
    strip_width = band + m * radius
    for axis in range(before.ndim):
        n = before.shape[axis]
        width = min(strip_width, n)
        for side in (0, 1):
            strip = [slice(None)] * before.ndim
            keep_local = [slice(None)] * before.ndim
            keep_global = [slice(None)] * before.ndim
            if side == 0:
                strip[axis] = slice(0, width)
                keep_local[axis] = slice(0, min(band, width))
                keep_global[axis] = slice(0, min(band, n))
            else:
                strip[axis] = slice(n - width, n)
                keep_local[axis] = slice(width - min(band, width), width)
                keep_global[axis] = slice(n - min(band, n), n)
            sub = before[tuple(strip)].copy()
            for _ in range(m):
                sub = reference_step(spec, sub, BoundaryCondition.DIRICHLET)
            out[tuple(keep_global)] = sub[tuple(keep_local)]
    return out


def _describe_folded(plan_: CompiledPlan) -> str:
    if plan_.schedule is None:
        return (
            f"non-linear stencil: in-register {plan_.config.unroll}-step update via "
            + describe_generic_path(plan_)
        )
    variant = (
        "separable fast path"
        if plan_.schedule.separable_fast_path
        else "counterpart reuse"
    )
    return (
        f"{plan_.config.unroll}-step temporal folding ({variant}), "
        "exact Dirichlet band recompute"
    )


# The folded profile builder is registered in repro.methods; its numeric
# executor lives here because it needs the folding machinery above.
set_executor("folded", _execute_folded, describe_path=_describe_folded)
