"""Vertical-folding counterparts and separability analysis (Section 3.3).

The vectorised folding scheme evaluates the folded update in two phases:

1. **vertical folding** — for every grid column, weighted sums over the rows
   of the folding matrix Λ.  The distinct column-weight vectors of Λ are the
   paper's *counterparts* ``c_n`` (Figure 5 / Equation 4); an ``m``-step
   update needs at most ``m·r + 1`` distinct counterparts for a symmetric
   stencil ("``m + 1`` counterparts at most" in the paper's ``r = 1``
   formulation).
2. **horizontal folding** — after the register transpose, each output point
   combines the ``2mr + 1`` per-column folded values of the counterpart that
   matches each relative position (Equation 5/6).

When Λ is an outer product of per-dimension factors (every column is a
scalar multiple of a single base vector), only one counterpart has to be
materialised and the scalar factors are absorbed into the horizontal weights
— the fast path that yields the paper's ``|C(E_Λ)| = 9``.  When it is not
(GB, star stencils), the regression plan of :mod:`repro.core.regression`
decides how each remaining counterpart is obtained most cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regression import CounterpartPlan, plan_counterparts

#: Relative tolerance used when testing exact algebraic relations between
#: counterpart vectors (they are products of the input weights, so anything
#: beyond a few ULPs means "not actually equal").
_REL_TOL = 1e-9


def separate_kernel(kernel: np.ndarray, rtol: float = _REL_TOL) -> Optional[List[np.ndarray]]:
    """Factor ``kernel`` into per-dimension 1-D vectors, if possible.

    Returns a list of 1-D arrays whose outer product equals ``kernel`` (up to
    ``rtol``), ordered from the first dimension to the last, or ``None`` when
    the kernel is not separable.  Uniform box stencils and their folding
    matrices are separable; star stencils and the asymmetric GB kernel are
    not.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.ndim == 1:
        return [kernel.copy()]
    mat = kernel.reshape(kernel.shape[0], -1)
    norms = np.linalg.norm(mat, axis=1)
    base_idx = int(np.argmax(norms))
    base = mat[base_idx]
    base_norm2 = float(base @ base)
    if base_norm2 == 0.0:
        return None
    coef = mat @ base / base_norm2
    reconstruction = np.outer(coef, base)
    scale = float(np.max(np.abs(mat))) or 1.0
    if not np.allclose(reconstruction, mat, rtol=0.0, atol=rtol * scale):
        return None
    rest = separate_kernel(base.reshape(kernel.shape[1:]), rtol)
    if rest is None:
        return None
    return [np.asarray(coef, dtype=np.float64)] + rest


def column_vectors(matrix: np.ndarray) -> List[np.ndarray]:
    """Return the counterpart weight vectors: one per relative column position.

    For a 2-D folding matrix ``Λ`` of shape ``(rows, cols)``, entry ``t`` of
    the returned list is ``Λ[:, t]`` — the weights applied to the rows of
    grid column ``j + t - R`` during vertical folding.  1-D matrices return a
    single trivial vector per position (each "column" is one weight).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim == 1:
        return [np.array([w]) for w in matrix]
    if matrix.ndim == 2:
        return [matrix[:, t].copy() for t in range(matrix.shape[1])]
    # Higher dimensional matrices: treat the leading axes as "rows" and the
    # last axis as the horizontal (vectorised) dimension.
    flat = matrix.reshape(-1, matrix.shape[-1])
    return [flat[:, t].copy() for t in range(flat.shape[1])]


def unique_counterparts(
    vectors: Sequence[np.ndarray], rtol: float = _REL_TOL
) -> List[Tuple[np.ndarray, List[int]]]:
    """Group equal counterpart vectors.

    Returns a list of ``(vector, positions)`` pairs where ``positions`` are
    the relative column indices that use ``vector``.  Zero vectors are
    dropped (their columns contribute nothing).
    """
    groups: List[Tuple[np.ndarray, List[int]]] = []
    for pos, vec in enumerate(vectors):
        if not np.any(vec):
            continue
        scale = float(np.max(np.abs(vec)))
        matched = False
        for gvec, positions in groups:
            if gvec.shape == vec.shape and np.allclose(gvec, vec, rtol=0.0, atol=rtol * scale):
                positions.append(pos)
                matched = True
                break
        if not matched:
            groups.append((vec.copy(), [pos]))
    return groups


@dataclass(frozen=True)
class CounterpartAnalysis:
    """Result of analysing the counterparts of one folding matrix.

    Attributes
    ----------
    matrix:
        The folding matrix Λ.
    positions:
        Number of relative column positions with a non-zero counterpart.
    num_unique:
        Number of distinct counterpart vectors.
    proportional:
        ``True`` when every counterpart is a scalar multiple of a single base
        vector (the separable fast path of Section 3.3).
    base_vector:
        The base counterpart when ``proportional`` (otherwise the first
        unique counterpart).
    scale_factors:
        Per-position scale factor relative to ``base_vector`` when
        ``proportional`` (``None`` otherwise).
    plan:
        The counterpart-reuse plan (Section 3.5).
    collect_direct:
        Collect when every unique counterpart is computed from the grid
        directly (no reuse).
    collect_with_reuse:
        Collect under ``plan`` — the minimised ``|C(E_Λ)|``.
    """

    matrix: np.ndarray
    positions: int
    num_unique: int
    proportional: bool
    base_vector: np.ndarray
    scale_factors: Optional[np.ndarray]
    plan: CounterpartPlan
    collect_direct: int
    collect_with_reuse: int


def analyze_counterparts(matrix: np.ndarray, rtol: float = _REL_TOL) -> CounterpartAnalysis:
    """Analyse the counterpart structure of folding matrix ``matrix``.

    The returned analysis contains both the "everything from scratch" collect
    and the minimised collect under the counterpart-reuse plan, so callers
    (and tests) can quantify what Section 3.5 buys for a given stencil.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    vectors = column_vectors(matrix)
    groups = unique_counterparts(vectors, rtol)
    if not groups:
        raise ValueError("folding matrix has no non-zero counterpart")

    positions = sum(len(positions) for _, positions in groups)

    # Proportionality check (all counterparts scalar multiples of one base).
    base = max((g for g, _ in groups), key=lambda v: float(np.linalg.norm(v)))
    base_norm2 = float(base @ base)
    proportional = True
    scales = np.zeros(len(vectors))
    for pos, vec in enumerate(vectors):
        if not np.any(vec):
            continue
        coef = float(vec @ base) / base_norm2
        scale = float(np.max(np.abs(vec)))
        if not np.allclose(coef * base, vec, rtol=0.0, atol=rtol * max(scale, 1e-300)):
            proportional = False
            break
        scales[pos] = coef

    plan = plan_counterparts(matrix, rtol=rtol)
    collect_direct = sum(int(np.count_nonzero(g)) for g, _ in groups) + max(0, positions - 1)

    return CounterpartAnalysis(
        matrix=matrix,
        positions=positions,
        num_unique=len(groups),
        proportional=proportional,
        base_vector=base,
        scale_factors=scales if proportional else None,
        plan=plan,
        collect_direct=collect_direct,
        collect_with_reuse=plan.total_collect,
    )
