"""Counterpart-reuse planning — the generalisation of Section 3.5.

For stencils whose folding matrix Λ is not separable, the counterpart weight
vectors are not all multiples of a single base, so the single-counterpart
fast path of Section 3.3 does not apply.  The paper generalises by modelling
each further counterpart as a *linear regression* over the counterparts that
are already available:

``c_n = ω_{n-1} c_{n-1} + … + ω_1 c_1 + b_n``            (Equation 7)

and searching for the parameters ω (and bias ``b_n``, a direct contribution
of the original square ``s_o``) that minimise the total collect ``|C(E_Λ)|``
(Equations 8–9), subject to producing the exact result.

This module implements that search exactly: candidate subsets of previously
computed counterparts are fitted by least squares (the "machine learning
algorithm" of the paper, which for a linear model with a handful of unknowns
has a closed-form solution); a fit whose residual is numerically zero is an
exact reuse, otherwise the residual becomes the bias ``b_n`` and is charged
as direct grid references.  For the paper's 2-step 9-point box example the
plan reproduces ``ω₂ = (2)`` and ``ω₃ = (0, 3)``.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

_REL_TOL = 1e-9

#: Memoized plans keyed by the folding-matrix content and search settings.
#: Every ``FoldingSchedule(spec, m)`` maps to one folding matrix, so this is
#: effectively a per-``(spec, m)`` cache: repeated plan compiles (parameter
#: sweeps, studies, batch set-up) stop re-deriving the regression search.
#: Bounded LRU; guarded by a lock so concurrent compiles stay safe.
_PLAN_CACHE: "OrderedDict[Tuple, CounterpartPlan]" = OrderedDict()
_PLAN_CACHE_LOCK = threading.Lock()
_PLAN_CACHE_MAX = 256


def clear_counterpart_cache() -> None:
    """Drop all memoized counterpart plans (test isolation hook)."""
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE.clear()


def counterpart_cache_info() -> Tuple[int, int]:
    """Return ``(entries, capacity)`` of the counterpart-plan cache."""
    with _PLAN_CACHE_LOCK:
        return len(_PLAN_CACHE), _PLAN_CACHE_MAX


@dataclass(frozen=True)
class CounterpartStep:
    """How one unique counterpart is obtained.

    Attributes
    ----------
    index:
        Position of this counterpart in the plan (0-based; the paper's
        ``c_{index+1}``).
    vector:
        The counterpart weight vector (over the folding-matrix rows).
    positions:
        Relative column positions of Λ that use this counterpart.
    mode:
        ``"direct"`` (computed from the grid), ``"scaled"`` (a scalar multiple
        of one previous counterpart, absorbed into the horizontal weights at
        no cost) or ``"combination"`` (a linear combination of previous
        counterparts, possibly with a bias of direct grid references).
    omega:
        Coefficients over previous counterparts, keyed by their plan index
        (empty for ``"direct"``).
    bias:
        Residual weight vector applied directly to the grid (the paper's
        ``b_n``); all zeros when the reuse is exact.
    cost:
        Collect contribution of obtaining this counterpart once per grid
        column.
    """

    index: int
    vector: np.ndarray
    positions: Tuple[int, ...]
    mode: str
    omega: Dict[int, float]
    bias: np.ndarray
    cost: int


@dataclass(frozen=True)
class CounterpartPlan:
    """Complete counterpart evaluation plan for one folding matrix.

    Attributes
    ----------
    steps:
        One :class:`CounterpartStep` per unique counterpart, in evaluation
        order.
    horizontal_cost:
        Operations of the horizontal folding phase (one per non-zero column
        position, minus one because the first term needs no accumulation).
    total_collect:
        The minimised ``|C(E_Λ)|``: vertical costs plus horizontal cost.
    """

    steps: Tuple[CounterpartStep, ...]
    horizontal_cost: int
    total_collect: int

    def reconstruct_matrix(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Rebuild the folding matrix from the plan (used by validation tests).

        Every counterpart's weight vector is re-derived from its ω
        coefficients and bias, then scattered back to the column positions it
        serves; the result must equal the original Λ exactly (up to FP
        round-off), proving the plan computes the right thing.
        """
        vectors: List[np.ndarray] = []
        for step in self.steps:
            if step.mode == "direct":
                vec = step.vector.copy()
            else:
                vec = step.bias.copy()
                for j, w in step.omega.items():
                    vec = vec + w * vectors[j]
            vectors.append(vec)
        rows = self.steps[0].vector.shape[0]
        cols = int(np.prod(shape)) // rows if rows else 0
        matrix = np.zeros((rows, cols), dtype=np.float64)
        for step, vec in zip(self.steps, vectors):
            for pos in step.positions:
                matrix[:, pos] = vec
        return matrix.reshape(shape)


def _unique_columns(matrix: np.ndarray, rtol: float) -> List[Tuple[np.ndarray, List[int]]]:
    """Group equal (non-zero) columns of ``matrix`` preserving first-seen order."""
    if matrix.ndim == 1:
        flat = matrix.reshape(1, -1)
    else:
        flat = matrix.reshape(-1, matrix.shape[-1])
    groups: List[Tuple[np.ndarray, List[int]]] = []
    for pos in range(flat.shape[1]):
        vec = flat[:, pos]
        if not np.any(vec):
            continue
        scale = float(np.max(np.abs(vec)))
        for gvec, positions in groups:
            if np.allclose(gvec, vec, rtol=0.0, atol=rtol * scale):
                positions.append(pos)
                break
        else:
            groups.append((vec.copy(), [pos]))
    return groups


def _fit_combination(
    target: np.ndarray,
    basis: Sequence[np.ndarray],
    subset: Sequence[int],
    rtol: float,
) -> Tuple[Dict[int, float], np.ndarray]:
    """Least-squares fit of ``target`` over ``basis[subset]``; returns (ω, bias)."""
    if not subset:
        return {}, target.copy()
    mat = np.stack([basis[j] for j in subset], axis=1)
    coef, *_ = np.linalg.lstsq(mat, target, rcond=None)
    fitted = mat @ coef
    bias = target - fitted
    scale = float(np.max(np.abs(target))) or 1.0
    bias[np.abs(bias) <= rtol * scale] = 0.0
    omega = {j: float(c) for j, c in zip(subset, coef) if abs(c) > rtol}
    return omega, bias


def plan_counterparts(
    matrix: np.ndarray,
    rtol: float = _REL_TOL,
    max_terms: int = 3,
) -> CounterpartPlan:
    """Find the cheapest way to obtain every counterpart of ``matrix``.

    Parameters
    ----------
    matrix:
        The folding matrix Λ (1-D, 2-D or higher; leading axes are treated as
        the vertical-fold rows, the last axis as the horizontal positions).
    rtol:
        Relative tolerance for "numerically zero" residuals.
    max_terms:
        Largest number of previous counterparts combined in one reuse step
        (the search is exhaustive over subsets up to this size; folding
        matrices have at most a handful of unique counterparts, so this is
        cheap).

    Returns
    -------
    CounterpartPlan
        Steps ordered so that the widest (most informative) counterpart is
        computed first — mirroring the paper, where ``c₁`` is the base the
        others reuse — plus the resulting minimised collect.  Plans are
        memoized by matrix content (see :func:`clear_counterpart_cache`);
        the returned object and its arrays must be treated as read-only.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    key = (matrix.shape, matrix.tobytes(), float(rtol), int(max_terms))
    with _PLAN_CACHE_LOCK:
        cached = _PLAN_CACHE.get(key)
        if cached is not None:
            _PLAN_CACHE.move_to_end(key)
            return cached
    plan = _plan_counterparts_uncached(matrix, rtol, max_terms)
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE[key] = plan
        _PLAN_CACHE.move_to_end(key)
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    return plan


def _plan_counterparts_uncached(
    matrix: np.ndarray, rtol: float, max_terms: int
) -> CounterpartPlan:
    groups = _unique_columns(matrix, rtol)
    if not groups:
        raise ValueError("folding matrix has no non-zero column")

    # Order: compute the counterpart with the most non-zeros first (it is the
    # most useful basis vector), then the rest by decreasing support.
    order = sorted(range(len(groups)), key=lambda i: -int(np.count_nonzero(groups[i][0])))

    steps: List[CounterpartStep] = []
    computed_vectors: List[np.ndarray] = []
    for plan_index, gidx in enumerate(order):
        vector, positions = groups[gidx]
        direct_cost = int(np.count_nonzero(vector))
        best_mode = "direct"
        best_omega: Dict[int, float] = {}
        best_bias = np.zeros_like(vector)
        best_cost = direct_cost

        if computed_vectors:
            indices = list(range(len(computed_vectors)))
            for size in range(1, min(max_terms, len(indices)) + 1):
                for subset in itertools.combinations(indices, size):
                    omega, bias = _fit_combination(vector, computed_vectors, subset, rtol)
                    if not omega and np.count_nonzero(bias) == np.count_nonzero(vector):
                        continue
                    bias_cost = int(np.count_nonzero(bias))
                    if len(omega) == 1 and bias_cost == 0:
                        # A pure scalar multiple of one previous counterpart is
                        # absorbed into the horizontal weights: zero cost.
                        cost = 0
                        mode = "scaled"
                    else:
                        cost = len(omega) + bias_cost
                        mode = "combination"
                    if cost < best_cost:
                        best_cost = cost
                        best_mode = mode
                        best_omega = omega
                        best_bias = bias
        step = CounterpartStep(
            index=plan_index,
            vector=vector.copy(),
            positions=tuple(positions),
            mode=best_mode,
            omega=best_omega,
            bias=best_bias if best_mode != "direct" else np.zeros_like(vector),
            cost=int(best_cost),
        )
        steps.append(step)
        computed_vectors.append(vector)

    positions_total = sum(len(s.positions) for s in steps)
    horizontal_cost = max(0, positions_total - 1)
    total = int(sum(s.cost for s in steps) + horizontal_cost)
    for step in steps:
        # Cached plans are shared between schedules: freeze the arrays so an
        # accidental in-place edit cannot poison later cache hits.
        step.vector.setflags(write=False)
        step.bias.setflags(write=False)
    return CounterpartPlan(steps=tuple(steps), horizontal_cost=horizontal_cost, total_collect=total)
