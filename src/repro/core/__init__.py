"""The paper's primary contribution.

* :mod:`repro.core.folding` — the folding matrix Λ, the instruction collects
  ``C(E)`` / ``C(E_Λ)`` and the profitability index of Section 3.2,
* :mod:`repro.core.counterparts` — vertical-folding counterparts and the
  separability analysis behind the single-counterpart fast path,
* :mod:`repro.core.regression` — the linear-regression generalisation of
  Section 3.5 that expresses counterparts as combinations of already
  computed ones for arbitrary (asymmetric) stencils,
* :mod:`repro.core.shifts_reuse` — the shifts-reusing optimisation of
  Section 3.4,
* :mod:`repro.core.vectorized_folding` — the vectorised multi-step schedules
  (Figure 5) on both the simulated SIMD machine and a fast NumPy path,
* :mod:`repro.core.plan` — the compile-once/run-many public API:
  :func:`~repro.core.plan.plan` (fluent builder) and
  :class:`~repro.core.plan.CompiledPlan` tying methods, tiling, batching and
  the performance model together.

(The deprecated ``StencilEngine`` wrapper was removed in 1.5; migrate with
the README's table — ``StencilEngine(spec, method=..., ...)`` becomes
``repro.plan(spec).method(...)....compile()``.)
"""

from repro.core.folding import (
    folding_matrix,
    collect_naive,
    collect_folded,
    collect_separable,
    profitability,
    ProfitabilityReport,
    analyze_folding,
)
from repro.core.counterparts import (
    CounterpartAnalysis,
    analyze_counterparts,
    separate_kernel,
)
from repro.core.regression import CounterpartPlan, CounterpartStep, plan_counterparts
from repro.core.shifts_reuse import ShiftsReuseReport, shifts_reuse_report
from repro.core.plan import CompiledPlan, PlanBuilder, PlanConfig, plan

__all__ = [
    "CompiledPlan",
    "PlanBuilder",
    "PlanConfig",
    "plan",
    "folding_matrix",
    "collect_naive",
    "collect_folded",
    "collect_separable",
    "profitability",
    "ProfitabilityReport",
    "analyze_folding",
    "CounterpartAnalysis",
    "analyze_counterparts",
    "separate_kernel",
    "CounterpartPlan",
    "CounterpartStep",
    "plan_counterparts",
    "ShiftsReuseReport",
    "shifts_reuse_report",
]
