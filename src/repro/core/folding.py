"""Temporal computation folding: the folding matrix and its profitability.

Section 3.2 of the paper analyses the scalar arithmetic of updating one grid
point over ``m`` time steps:

* the **naive** expansion recomputes every intermediate-step neighbour: for
  the 9-point box stencil with ``m = 2`` it needs 10 subexpressions of 9
  weighted point references each, a *collect* ``|C(E)| = 90``;
* **folding** replaces the expansion by a single weighted sum over the
  ``(2mr+1)^d`` neighbourhood with re-assigned weights λ — the *folding
  matrix* Λ, which is the m-fold self-convolution of the stencil kernel —
  giving ``|C(E_Λ)| = 25``;
* exploiting the **separability** of Λ (vertical folding + horizontal
  folding, Section 3.3) reduces the collect further to 9, for a profitability
  index ``P(E, E_Λ) = 90 / 9 = 10``.

This module computes those quantities for arbitrary stencils so the paper's
numbers become testable properties rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.counterparts import analyze_counterparts, separate_kernel
from repro.stencils.spec import StencilSpec


def folding_matrix(spec: StencilSpec, m: int) -> np.ndarray:
    """Return the folding matrix Λ for an ``m``-step update of ``spec``.

    Λ is the kernel of :meth:`repro.stencils.spec.StencilSpec.compose`; its
    entries are the re-assigned weights λ of the paper's Figure 4/5.  Raises
    for non-linear stencils, for which folding is undefined.
    """
    return spec.compose(m).kernel


def support_size(kernel: np.ndarray) -> int:
    """Number of non-zero weights of ``kernel``."""
    return int(np.count_nonzero(kernel))


def collect_naive(spec: StencilSpec, m: int) -> int:
    """``|C(E)|``: weighted point references of the naive ``m``-step expansion.

    Updating one point over ``m`` steps naively evaluates one subexpression
    per grid point needed at each intermediate level: the points of
    ``K^{*j}``'s support for level ``j`` (``j = 0`` is the final point
    itself), each subexpression touching every point of the kernel.  Hence

    ``|C(E)| = sum_{j=0}^{m-1} |support(K^{*j})| * npoints``.

    For the 2-step 9-point box this gives ``(1 + 9) * 9 = 90``, the number in
    the paper's Figure 4(a).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if not spec.linear:
        raise ValueError("collects are defined for linear stencils only")
    total = 0
    for j in range(m):
        total += support_size(_support_of_power(spec, j)) * spec.npoints
    return total


def _support_of_power(spec: StencilSpec, j: int) -> np.ndarray:
    """Kernel of ``j`` self-compositions (``j = 0`` → the identity kernel)."""
    if j == 0:
        ident = np.zeros_like(spec.kernel)
        ident[spec.centre] = 1.0
        return ident
    return spec.compose(j).kernel


def collect_folded(spec: StencilSpec, m: int) -> int:
    """``|C(E_Λ)|`` of plain folding: the support size of the folding matrix.

    25 for the 2-step 9-point box (Figure 4(b)).
    """
    return support_size(folding_matrix(spec, m))


def collect_separable(spec: StencilSpec, m: int) -> Optional[int]:
    """``|C(E_Λ)|`` when Λ separates into per-dimension factors, else ``None``.

    A separable Λ of factor lengths ``(w_1, …, w_d)`` is evaluated as ``d``
    nested foldings (vertical folding, then horizontal folding after the
    register transpose, Section 3.3); each output point then references
    ``w_1`` points in the first folding and one already-folded value per
    remaining factor position, for a collect of ``sum(w_i) - (d - 1)``.
    For the 2-step 9-point box: ``5 + 5 - 1 = 9``, the paper's number.
    """
    matrix = folding_matrix(spec, m)
    factors = separate_kernel(matrix)
    if factors is None:
        return None
    lengths = [support_size(f.reshape(-1)) for f in factors]
    return int(sum(lengths) - (len(lengths) - 1))


def collect_best(spec: StencilSpec, m: int) -> int:
    """The smallest collect achievable by the paper's techniques for ``spec``.

    The separable fast path when Λ separates, otherwise the counterpart-reuse
    plan of :mod:`repro.core.regression` (computed via
    :func:`repro.core.counterparts.analyze_counterparts`).
    """
    sep = collect_separable(spec, m)
    if sep is not None:
        return sep
    analysis = analyze_counterparts(folding_matrix(spec, m))
    return analysis.collect_with_reuse


@dataclass(frozen=True)
class ProfitabilityReport:
    """Summary of the folding profitability analysis for one stencil.

    Attributes
    ----------
    stencil:
        Stencil name.
    m:
        Unrolling factor (number of folded time steps).
    collect_naive:
        ``|C(E)|`` of the naive expansion.
    collect_folded:
        ``|C(E_Λ)|`` of plain folding (support of Λ).
    collect_optimized:
        The best collect achieved (separable fast path or counterpart reuse).
    separable:
        Whether Λ separates into per-dimension factors.
    profitability_folded:
        ``collect_naive / collect_folded`` (3.6 for the paper's example).
    profitability_optimized:
        ``collect_naive / collect_optimized`` (10 for the paper's example).
    """

    stencil: str
    m: int
    collect_naive: int
    collect_folded: int
    collect_optimized: int
    separable: bool
    profitability_folded: float
    profitability_optimized: float

    def is_profitable(self, threshold: float = 1.0) -> bool:
        """Equation 3: folding is profitable when P ≥ ``threshold`` (θ ≥ 1)."""
        return self.profitability_optimized >= threshold


def arithmetically_profitable(spec: StencilSpec, m: int) -> bool:
    """Whether folding beats simply executing ``m`` single steps in registers.

    The paper's profitability index (Equation 3) compares the folded collect
    against the *naive expansion* that recomputes every intermediate
    neighbour.  A production implementation has a cheaper alternative
    available: keep the data in registers and apply the single-step kernel
    ``m`` times, which costs ``m · npoints`` references per point.  Folding
    only reduces arithmetic when its optimised collect stays below that —
    true for box stencils (9 ≤ 18 for the 2-step 9-point box), false for
    sparse star stencils whose folded support grows faster than their point
    count.  The engine's folded method falls back to the in-register
    multi-step schedule when this predicate is false, so "Our (2 steps)"
    never does more arithmetic than "Our".
    """
    if not spec.linear:
        return False
    if m < 2:
        return False
    return collect_best(spec, m) <= m * spec.npoints


def profitability(spec: StencilSpec, m: int, optimized: bool = True) -> float:
    """Profitability index ``P(E, E_Λ)`` of Equation 3.

    Parameters
    ----------
    spec:
        Linear stencil.
    m:
        Unrolling factor.
    optimized:
        Use the best available evaluation scheme for the denominator
        (separable folding / counterpart reuse) instead of plain folding.
    """
    naive = collect_naive(spec, m)
    denom = collect_best(spec, m) if optimized else collect_folded(spec, m)
    return naive / denom


def analyze_folding(spec: StencilSpec, m: int) -> ProfitabilityReport:
    """Produce the full profitability report of Section 3.2 for ``spec``."""
    naive = collect_naive(spec, m)
    folded = collect_folded(spec, m)
    matrix = folding_matrix(spec, m)
    sep = collect_separable(spec, m)
    best = sep if sep is not None else analyze_counterparts(matrix).collect_with_reuse
    return ProfitabilityReport(
        stencil=spec.name,
        m=m,
        collect_naive=naive,
        collect_folded=folded,
        collect_optimized=int(best),
        separable=sep is not None,
        profitability_folded=naive / folded,
        profitability_optimized=naive / best,
    )


def optimal_unroll(
    spec: StencilSpec,
    max_m: int = 4,
    register_budget: Optional[int] = None,
    lanes: int = 4,
) -> int:
    """Choose the unrolling factor with the best profitability per register.

    The paper fixes ``m = 2`` for its evaluation; larger ``m`` keeps reducing
    arithmetic but enlarges the folded neighbourhood (radius ``m·r``), which
    raises the number of simultaneously live vectors during the vertical
    folding.  This helper scores each ``m`` by profitability and rejects
    values whose live-vector requirement exceeds ``register_budget`` (when
    given), returning the best feasible ``m``.

    Parameters
    ----------
    spec:
        Linear stencil.
    max_m:
        Largest unrolling factor to consider.
    register_budget:
        Architectural vector registers available (16 for AVX-2, 32 for
        AVX-512); ``None`` disables the pressure check.
    lanes:
        Vector length, used to estimate live vectors per square.
    """
    if max_m < 1:
        raise ValueError("max_m must be >= 1")
    best_m = 1
    best_score = 0.0
    for m in range(1, max_m + 1):
        if m == 1:
            score = 1.0
        else:
            score = profitability(spec, m)
        if register_budget is not None:
            radius = m * spec.radius
            # vertical folding keeps the loaded rows (lanes + 2·R), the
            # counterpart under construction and a handful of weight
            # broadcasts live at once.
            live = (lanes + 2 * radius) + lanes + 3
            if live > register_budget:
                continue
        if score > best_score:
            best_score = score
            best_m = m
    return best_m
