"""Shifts reusing (Section 3.4, Figure 6).

Two flavours of the same observation are used in the paper:

* **scalar / column reuse** — when the stencil slides by one point along the
  innermost dimension, all but one column of its neighbourhood were already
  read for the previous point.  Keeping the per-column partial sums alive
  turns a 9-reference 3×3 update into "3 new references + 1 combine" — the
  paper's ``|C(E_F)| = 9`` versus ``|C(E_G)| = 4`` and a reuse profitability
  of ``9 / 4 = 2.25``;
* **vector-set reuse** — in the vectorised folding scheme (Figure 5), the
  last ``m·r`` registers of the transposed counterpart of one computing
  square are exactly the leading dependence columns of the next square, so
  they are carried over in registers instead of being recomputed or
  reloaded.

This module quantifies both: :func:`shifts_reuse_report` produces the scalar
analysis for any 2-D/3-D stencil, and :func:`reusable_vectors` tells the
schedules how many per-square loads/folds the optimisation removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class ShiftsReuseReport:
    """Scalar shifts-reuse analysis for one stencil.

    Attributes
    ----------
    stencil:
        Stencil name.
    collect_without:
        Point references per update without any reuse (the stencil's point
        count — 9 for a 3×3 box).
    collect_with:
        Point references per update when per-column partial sums are carried
        between adjacent points: the new column's references plus one combine
        (4 for a 3×3 box, matching Figure 6).
    profitability:
        ``collect_without / collect_with`` (2.25 for the 3×3 box).
    """

    stencil: str
    collect_without: int
    collect_with: int
    profitability: float


def shifts_reuse_report(spec: StencilSpec) -> ShiftsReuseReport:
    """Quantify scalar shifts reuse for ``spec`` (Figure 6's counting).

    The reusable unit is a *column* of the kernel (all offsets sharing the
    same innermost coordinate).  Moving one point along the innermost
    dimension brings exactly one new column into the neighbourhood, so the
    per-point work with reuse is the size of the densest column plus one
    combine of the per-column partial sums.

    1-D stencils have single-point columns, so the reuse degenerates (every
    "column" is one reference); the report still returns the formal counts.
    """
    kernel = spec.kernel
    without = spec.npoints
    if kernel.ndim == 1:
        new_column = 1
    else:
        # Columns are slices along the last (innermost) dimension.
        cols = kernel.reshape(-1, kernel.shape[-1])
        per_column = [int(np.count_nonzero(cols[:, j])) for j in range(cols.shape[1])]
        new_column = max(per_column) if per_column else 0
    with_reuse = new_column + 1
    return ShiftsReuseReport(
        stencil=spec.name,
        collect_without=without,
        collect_with=with_reuse,
        profitability=without / with_reuse,
    )


def reusable_vectors(radius: int, m: int = 1) -> int:
    """Vectors of a computing square reusable as shifts by the next square.

    In the vectorised folding scheme the horizontal folding of square ``q``
    needs the ``m·r`` trailing transposed-counterpart registers of square
    ``q − 1``; processing squares left-to-right keeps them in registers, so
    ``m·r`` per-square vertical folds (and the loads feeding them) are saved.

    Parameters
    ----------
    radius:
        Spatial radius ``r`` of the (unfolded) stencil.
    m:
        Unrolling factor of the temporal folding (1 = no folding).
    """
    if radius < 0 or m < 1:
        raise ValueError("radius must be >= 0 and m >= 1")
    return radius * m


def loads_per_square(vl: int, radius: int, m: int, shifts_reuse: bool) -> int:
    """Row-vector loads needed per computing square of the folded scheme.

    A ``vl × vl`` square folded over ``m`` steps reads rows
    ``i − m·r … i + vl − 1 + m·r`` of the grid — ``vl + 2·m·r`` row vectors.
    With shifts reuse enabled along the row direction the ``m·r`` leading
    rows were already loaded by the previous square of the same row band and
    stay in registers, leaving ``vl + m·r`` fresh loads.
    """
    if vl < 1:
        raise ValueError("vl must be positive")
    total = vl + 2 * radius * m
    if shifts_reuse:
        total -= reusable_vectors(radius, m)
    return total
