"""Cache hierarchy substrate.

The paper's performance arguments are about *data movement*: how many bytes
must cross each level of the cache hierarchy per stencil update, and how the
transpose layout / temporal folding / tessellate tiling change that number.
Real hardware counters are unavailable here, so this subpackage provides:

* :mod:`repro.cache.hierarchy` — configuration objects derived from a
  :class:`repro.machine.MachineSpec`,
* :mod:`repro.cache.simulator` — an exact set-associative, write-back,
  write-allocate LRU simulator used on small grids to validate the analytic
  model and to expose locality differences between data layouts,
* :mod:`repro.cache.analytic` — a working-set traffic model used at the
  paper's problem sizes (where exact simulation from Python is infeasible),
* :mod:`repro.cache.irprofile` — the register-level schedules' own memory
  profile and exact byte-address streams, expanded from the typed IR's
  load/store tags (:mod:`repro.ir`) so the cache picture, the replay and
  the instruction tallies all come from one program.
"""

from repro.cache.hierarchy import CacheConfig, hierarchy_from_machine
from repro.cache.simulator import (
    CacheHierarchySimulator,
    CacheLevelStats,
    stencil_access_stream,
)
from repro.cache.analytic import (
    TrafficEstimate,
    estimate_traffic,
    neighborhood_working_set_bytes,
    residency_level,
    sweep_reuse_level,
)
from repro.cache.irprofile import ir_access_stream, ir_memory_profile

__all__ = [
    "ir_access_stream",
    "ir_memory_profile",
    "CacheConfig",
    "hierarchy_from_machine",
    "CacheHierarchySimulator",
    "CacheLevelStats",
    "TrafficEstimate",
    "estimate_traffic",
    "neighborhood_working_set_bytes",
    "residency_level",
    "stencil_access_stream",
    "sweep_reuse_level",
]
