"""Exact multi-level cache simulator.

A straightforward set-associative, write-back, write-allocate, true-LRU
simulator.  It is used on *small* grids to:

* validate the analytic traffic model of :mod:`repro.cache.analytic`,
* demonstrate the locality claims of the paper's Section 2 (the DLT layout
  scatters the elements of one vector across distant lines, the local
  transpose layout does not),
* provide hit/miss evidence for the tiling ablations.

Addresses are plain byte addresses; callers map array indices to addresses
with :meth:`CacheHierarchySimulator.touch_array` or by doing their own
``base + 8 * index`` arithmetic.  Long address streams should go through the
vectorized front end (:meth:`CacheHierarchySimulator.access_stream`, which
:meth:`~CacheHierarchySimulator.touch_array` uses): line/set indices are
computed with NumPy and consecutive same-line accesses are run-length
collapsed before the per-set LRU loop, with the per-access
:meth:`~CacheHierarchySimulator.access` path kept as the exact oracle.
Truly paper-scale traffic questions remain the analytic model's job.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.hierarchy import CacheConfig


def stencil_access_stream(
    shape: Sequence[int],
    offsets: Iterable[Tuple[int, ...]],
    read_base: int = 0,
    write_base: Optional[int] = None,
    itemsize: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Byte-address stream of one naive stencil sweep over a periodic grid.

    For every grid point, visited in row-major order, the stream reads each
    neighbour ``offset`` from the source array and then writes the point to
    the destination array — the access order of the point-by-point reference
    formulation.  The construction is dimension-generic (1-D, 2-D, 3-D grids
    all use the same index arithmetic) and fully vectorized, so paper-shaped
    3-D sweeps can be fed to :meth:`CacheHierarchySimulator.access_stream`
    without a per-point Python loop.

    Parameters
    ----------
    shape:
        Spatial extents of the grid.
    offsets:
        Neighbour offsets relative to the updated point (e.g. the keys of
        :meth:`repro.stencils.spec.StencilSpec.offsets_and_weights`); each
        must have ``len(shape)`` coordinates.  Offsets wrap periodically.
    read_base:
        Byte address of the source array.
    write_base:
        Byte address of the destination array; defaults to the end of the
        source array (two disjoint Jacobi-style arrays).
    itemsize:
        Bytes per grid element.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        Byte addresses and a matching boolean write-flag array, ready for
        :meth:`CacheHierarchySimulator.access_stream`.
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(s < 1 for s in shape):
        raise ValueError(f"invalid grid shape {shape}")
    offsets = list(offsets)
    if not offsets:
        raise ValueError("at least one neighbour offset is required")
    ndim = len(shape)
    npoints = int(np.prod(shape))
    if write_base is None:
        write_base = read_base + npoints * itemsize
    coords = np.indices(shape).reshape(ndim, npoints)
    columns: List[np.ndarray] = []
    for off in offsets:
        if len(off) != ndim:
            raise ValueError(f"offset {off!r} does not have {ndim} coordinates")
        neighbour = tuple((coords[d] + int(off[d])) % shape[d] for d in range(ndim))
        flat = np.ravel_multi_index(neighbour, shape)
        columns.append(read_base + itemsize * flat)
    columns.append(write_base + itemsize * np.arange(npoints, dtype=np.int64))
    addrs = np.stack(columns, axis=1).reshape(-1)
    writes = np.zeros((npoints, len(columns)), dtype=bool)
    writes[:, -1] = True
    return addrs, writes.reshape(-1)


@dataclass
class CacheLevelStats:
    """Hit/miss statistics of one cache level."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses that reached this level."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; ``0.0`` when the level was never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def bytes_from_below(self, line_bytes: int) -> int:
        """Bytes fetched into this level from the level below (misses × line)."""
        return self.misses * line_bytes


class _SetAssociativeCache:
    """One set-associative LRU cache level (internal helper)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheLevelStats(name=config.name)
        # One OrderedDict per set: tag -> dirty flag.  Most-recently-used last.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def _locate(self, line_addr: int) -> Tuple[int, int]:
        set_index = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        return set_index, tag

    def access(self, line_addr: int, is_write: bool) -> Tuple[bool, Optional[Tuple[int, bool]]]:
        """Access one cache line.

        Returns ``(hit, evicted)`` where ``evicted`` is ``None`` or a tuple
        ``(line_addr, dirty)`` describing the victim line.
        """
        set_index, tag = self._locate(line_addr)
        ways = self._sets[set_index]
        evicted: Optional[Tuple[int, bool]] = None
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return True, None
        self.stats.misses += 1
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            victim_line = victim_tag * self.config.num_sets + set_index
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            evicted = (victim_line, victim_dirty)
        ways[tag] = is_write
        return False, evicted

    def invalidate_all(self) -> None:
        """Drop every line (used between independent experiment phases)."""
        for ways in self._sets:
            ways.clear()

    def credit_resident_hits(self, line_addr: int, hits: int, any_write: bool) -> None:
        """Account ``hits`` guaranteed hits on the just-accessed ``line_addr``.

        Used by the vectorized front end after run-length-collapsing a burst
        of consecutive accesses to one line: the first access went through
        :meth:`access` (so the line is resident and most-recently-used) and
        the remaining ``hits`` accesses can only hit.  ``any_write`` ORs the
        collapsed accesses' write flags into the dirty bit, exactly as the
        per-access loop would have.
        """
        set_index, tag = self._locate(line_addr)
        ways = self._sets[set_index]
        self.stats.hits += hits
        if any_write:
            # Assigning an existing key keeps its (already MRU) position.
            ways[tag] = True


class CacheHierarchySimulator:
    """Inclusive multi-level cache hierarchy with DRAM as the final level.

    Parameters
    ----------
    levels:
        Cache configurations ordered from L1 outward.

    Notes
    -----
    * The hierarchy is modelled as *non-exclusive* and writeback victims are
      simply counted (they do not generate additional fills).
    * ``dram_reads``/``dram_writes`` count cache lines moved to/from memory.
    """

    def __init__(self, levels: Sequence[CacheConfig]):
        if not levels:
            raise ValueError("at least one cache level is required")
        self._levels = [_SetAssociativeCache(cfg) for cfg in levels]
        self.line_bytes = levels[0].line_bytes
        for cfg in levels:
            if cfg.line_bytes != self.line_bytes:
                raise ValueError("all levels must share one line size")
        self.dram_reads = 0
        self.dram_writes = 0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> List[CacheLevelStats]:
        """Per-level statistics, ordered L1 outward."""
        return [lvl.stats for lvl in self._levels]

    def stats_by_name(self) -> Dict[str, CacheLevelStats]:
        """Statistics keyed by level name."""
        return {lvl.stats.name: lvl.stats for lvl in self._levels}

    @property
    def dram_bytes(self) -> int:
        """Total bytes exchanged with DRAM (reads + writebacks)."""
        return (self.dram_reads + self.dram_writes) * self.line_bytes

    def reset_stats(self) -> None:
        """Zero all counters but keep cache contents."""
        for lvl in self._levels:
            lvl.stats = CacheLevelStats(name=lvl.config.name)
        self.dram_reads = 0
        self.dram_writes = 0

    def flush(self) -> None:
        """Invalidate every level (cold caches) and keep statistics."""
        for lvl in self._levels:
            lvl.invalidate_all()

    # ------------------------------------------------------------------ #
    # accesses
    # ------------------------------------------------------------------ #
    def access(self, byte_addr: int, size: int = 8, is_write: bool = False) -> None:
        """Access ``size`` bytes starting at ``byte_addr``.

        The access is split into the cache lines it touches; each line walks
        down the hierarchy until it hits, allocating in every level it missed
        (write-allocate) on the way back.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        first_line = byte_addr // self.line_bytes
        last_line = (byte_addr + size - 1) // self.line_bytes
        for line in range(first_line, last_line + 1):
            self._access_line(line, is_write)

    def _access_line(self, line_addr: int, is_write: bool) -> None:
        for depth, level in enumerate(self._levels):
            hit, evicted = level.access(line_addr, is_write)
            if evicted is not None and depth == len(self._levels) - 1 and evicted[1]:
                self.dram_writes += 1
            if hit:
                return
        # Missed everywhere: one DRAM read fills the line.
        self.dram_reads += 1

    def touch_array(
        self,
        base_addr: int,
        indices: Iterable[int],
        itemsize: int = 8,
        is_write: bool = False,
    ) -> None:
        """Access ``base_addr + itemsize * i`` for every ``i`` in ``indices``.

        ``indices`` may be any iterable of integers or a NumPy index array;
        the address arithmetic is vectorized and the accesses are routed
        through :meth:`access_stream`, so no per-element Python loop runs.
        The resulting statistics are exactly those of calling :meth:`access`
        per element.
        """
        if isinstance(indices, np.ndarray):
            idx = indices.astype(np.int64, copy=False).ravel()
        else:
            idx = np.fromiter(indices, dtype=np.int64)
        self.access_stream(base_addr + itemsize * idx, size=itemsize, is_write=is_write)

    def access_stream(
        self,
        byte_addrs: np.ndarray,
        size: int = 8,
        is_write=False,
    ) -> None:
        """Access a whole address stream with vectorized front-end arithmetic.

        Exactly equivalent to ``for a, w in zip(byte_addrs, is_write):
        self.access(a, size, w)`` but orders of magnitude faster on long
        streams: line and set indices are computed with NumPy, consecutive
        accesses to the same cache line are run-length-collapsed (the
        trailing accesses of a run are guaranteed hits on a resident,
        most-recently-used line), and only the deduplicated stream enters the
        per-set LRU loop.  The per-access :meth:`access` path is kept
        unchanged as the oracle this fast path is tested against.

        Parameters
        ----------
        byte_addrs:
            Integer array (any shape; flattened in C order) of byte
            addresses.
        size:
            Bytes accessed per address; accesses crossing a line boundary
            touch each line in ascending order, like :meth:`access`.
        is_write:
            A single flag for the whole stream, or a boolean array matching
            ``byte_addrs``.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        addr_array = np.asarray(byte_addrs, dtype=np.int64)
        if addr_array.size == 0:
            return
        writes = np.broadcast_to(np.asarray(is_write, dtype=bool), addr_array.shape).ravel()
        addrs = addr_array.ravel()
        line = self.line_bytes
        first_line = addrs // line
        last_line = (addrs + size - 1) // line
        span = last_line - first_line + 1
        if span.max() == 1:
            lines = first_line
        else:
            # Expand multi-line accesses into one entry per touched line,
            # preserving the ascending within-access order of access().
            total = int(span.sum())
            offsets = np.arange(total) - np.repeat(np.cumsum(span) - span, span)
            lines = np.repeat(first_line, span) + offsets
            writes = np.repeat(writes, span)
        # Run-length collapse of consecutive same-line accesses.
        boundary = np.empty(lines.size, dtype=bool)
        boundary[0] = True
        np.not_equal(lines[1:], lines[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        run_lines = lines[starts]
        run_counts = np.diff(np.append(starts, lines.size))
        first_writes = writes[starts]
        any_writes = np.logical_or.reduceat(writes, starts)
        l1 = self._levels[0]
        for line_addr, count, w0, any_w in zip(
            run_lines.tolist(), run_counts.tolist(), first_writes.tolist(), any_writes.tolist()
        ):
            self._access_line(line_addr, w0)
            if count > 1:
                l1.credit_resident_hits(line_addr, count - 1, any_w and not w0)

    def sweep_array(
        self,
        base_addr: int,
        n_items: int,
        itemsize: int = 8,
        is_write: bool = False,
    ) -> None:
        """Sequentially access an ``n_items`` array (one access per line)."""
        total_bytes = n_items * itemsize
        for line_start in range(0, total_bytes, self.line_bytes):
            size = min(self.line_bytes, total_bytes - line_start)
            self.access(base_addr + line_start, size, is_write)
