"""Exact multi-level cache simulator.

A straightforward set-associative, write-back, write-allocate, true-LRU
simulator.  It is used on *small* grids to:

* validate the analytic traffic model of :mod:`repro.cache.analytic`,
* demonstrate the locality claims of the paper's Section 2 (the DLT layout
  scatters the elements of one vector across distant lines, the local
  transpose layout does not),
* provide hit/miss evidence for the tiling ablations.

Addresses are plain byte addresses; callers map array indices to addresses
with :meth:`CacheHierarchySimulator.touch_array` or by doing their own
``base + 8 * index`` arithmetic.  Python-level simulation costs make it
unsuitable for the paper-scale grids — that is what the analytic model is
for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.hierarchy import CacheConfig


@dataclass
class CacheLevelStats:
    """Hit/miss statistics of one cache level."""

    name: str
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses that reached this level."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate in [0, 1]; ``0.0`` when the level was never accessed."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def bytes_from_below(self, line_bytes: int) -> int:
        """Bytes fetched into this level from the level below (misses × line)."""
        return self.misses * line_bytes


class _SetAssociativeCache:
    """One set-associative LRU cache level (internal helper)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheLevelStats(name=config.name)
        # One OrderedDict per set: tag -> dirty flag.  Most-recently-used last.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def _locate(self, line_addr: int) -> Tuple[int, int]:
        set_index = line_addr % self.config.num_sets
        tag = line_addr // self.config.num_sets
        return set_index, tag

    def access(self, line_addr: int, is_write: bool) -> Tuple[bool, Optional[Tuple[int, bool]]]:
        """Access one cache line.

        Returns ``(hit, evicted)`` where ``evicted`` is ``None`` or a tuple
        ``(line_addr, dirty)`` describing the victim line.
        """
        set_index, tag = self._locate(line_addr)
        ways = self._sets[set_index]
        evicted: Optional[Tuple[int, bool]] = None
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag)
            ways[tag] = dirty or is_write
            return True, None
        self.stats.misses += 1
        if len(ways) >= self.config.associativity:
            victim_tag, victim_dirty = ways.popitem(last=False)
            victim_line = victim_tag * self.config.num_sets + set_index
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            evicted = (victim_line, victim_dirty)
        ways[tag] = is_write
        return False, evicted

    def invalidate_all(self) -> None:
        """Drop every line (used between independent experiment phases)."""
        for ways in self._sets:
            ways.clear()


class CacheHierarchySimulator:
    """Inclusive multi-level cache hierarchy with DRAM as the final level.

    Parameters
    ----------
    levels:
        Cache configurations ordered from L1 outward.

    Notes
    -----
    * The hierarchy is modelled as *non-exclusive* and writeback victims are
      simply counted (they do not generate additional fills).
    * ``dram_reads``/``dram_writes`` count cache lines moved to/from memory.
    """

    def __init__(self, levels: Sequence[CacheConfig]):
        if not levels:
            raise ValueError("at least one cache level is required")
        self._levels = [_SetAssociativeCache(cfg) for cfg in levels]
        self.line_bytes = levels[0].line_bytes
        for cfg in levels:
            if cfg.line_bytes != self.line_bytes:
                raise ValueError("all levels must share one line size")
        self.dram_reads = 0
        self.dram_writes = 0

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> List[CacheLevelStats]:
        """Per-level statistics, ordered L1 outward."""
        return [lvl.stats for lvl in self._levels]

    def stats_by_name(self) -> Dict[str, CacheLevelStats]:
        """Statistics keyed by level name."""
        return {lvl.stats.name: lvl.stats for lvl in self._levels}

    @property
    def dram_bytes(self) -> int:
        """Total bytes exchanged with DRAM (reads + writebacks)."""
        return (self.dram_reads + self.dram_writes) * self.line_bytes

    def reset_stats(self) -> None:
        """Zero all counters but keep cache contents."""
        for lvl in self._levels:
            lvl.stats = CacheLevelStats(name=lvl.config.name)
        self.dram_reads = 0
        self.dram_writes = 0

    def flush(self) -> None:
        """Invalidate every level (cold caches) and keep statistics."""
        for lvl in self._levels:
            lvl.invalidate_all()

    # ------------------------------------------------------------------ #
    # accesses
    # ------------------------------------------------------------------ #
    def access(self, byte_addr: int, size: int = 8, is_write: bool = False) -> None:
        """Access ``size`` bytes starting at ``byte_addr``.

        The access is split into the cache lines it touches; each line walks
        down the hierarchy until it hits, allocating in every level it missed
        (write-allocate) on the way back.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        first_line = byte_addr // self.line_bytes
        last_line = (byte_addr + size - 1) // self.line_bytes
        for line in range(first_line, last_line + 1):
            self._access_line(line, is_write)

    def _access_line(self, line_addr: int, is_write: bool) -> None:
        for depth, level in enumerate(self._levels):
            hit, evicted = level.access(line_addr, is_write)
            if evicted is not None and depth == len(self._levels) - 1 and evicted[1]:
                self.dram_writes += 1
            if hit:
                return
        # Missed everywhere: one DRAM read fills the line.
        self.dram_reads += 1

    def touch_array(
        self,
        base_addr: int,
        indices: Iterable[int],
        itemsize: int = 8,
        is_write: bool = False,
    ) -> None:
        """Access ``base_addr + itemsize * i`` for every ``i`` in ``indices``."""
        for i in indices:
            self.access(base_addr + itemsize * int(i), itemsize, is_write)

    def sweep_array(
        self,
        base_addr: int,
        n_items: int,
        itemsize: int = 8,
        is_write: bool = False,
    ) -> None:
        """Sequentially access an ``n_items`` array (one access per line)."""
        total_bytes = n_items * itemsize
        for line_start in range(0, total_bytes, self.line_bytes):
            self.access(base_addr + line_start, min(self.line_bytes, total_bytes - line_start), is_write)
