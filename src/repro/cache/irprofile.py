"""Cache-layer instruction profile derived from the schedule IR.

The cache simulator historically consumed the access order of the *naive*
reference formulation (:func:`repro.cache.simulator.stencil_access_stream`).
This module derives the memory behaviour of the *register-level schedule*
itself from the same typed IR the trace backend replays and the cost model
counts: the IR's load/store tags are expanded over every block position in
the interpreted sweep's execution order, producing the exact byte-address
stream one folded sweep issues.  Because the stream, the replay and the
instruction tally all come from one :class:`~repro.ir.ops.ScheduleIR`, the
cache picture cannot drift from the simulated execution.

Address conventions match the interpreted sweeps:

* 1-D schedules address the grid in the transpose layout (vector set ``s``
  starts at element ``s·vl²``; register ``j`` at element offset ``j·vl``).
* 2-D/3-D schedules address the row-major grid; a ``("row", dz, s)`` load of
  the square at ``(plane, block row, block col)`` touches the ``vl``
  elements starting at ``((plane+dz) mod P, (row+s) mod R, col₀)``.
* Stores go to a disjoint destination array (Jacobi-style), defaulting to
  the end of the source array.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.ops import ScheduleIR
from repro.simd.isa import InstructionClass

__all__ = ["ir_access_stream", "ir_memory_profile"]


def ir_memory_profile(ir: ScheduleIR, shape) -> Dict[str, float]:
    """Per-sweep memory-instruction profile of one lowered schedule.

    Returns architectural loads/stores (the IR's memory ops times their
    segment trip counts), the spill store/reload traffic charged by the
    register-pressure model, and the total bytes the architectural accesses
    move — all derived from the same IR the replay executes.
    """
    counts, _peak, spills = ir.sweep_counts(shape)
    loads = counts.get(InstructionClass.LOAD) - spills
    stores = counts.get(InstructionClass.STORE) - spills
    vector_bytes = ir.vl * 8
    return {
        "loads": loads,
        "stores": stores,
        "spill_loads": spills,
        "spill_stores": spills,
        "bytes": (loads + stores) * vector_bytes,
    }


def ir_access_stream(
    ir: ScheduleIR,
    shape,
    read_base: int = 0,
    write_base: Optional[int] = None,
    itemsize: int = 8,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Byte-address stream of one folded sweep, in schedule execution order.

    Parameters
    ----------
    ir:
        A lowered (optionally optimized) schedule program.
    shape:
        Grid shape (1-D length, or 2-D/3-D extents).
    read_base / write_base:
        Byte addresses of the source and destination arrays;  the
        destination defaults to the end of the source (two disjoint
        Jacobi-style arrays).
    itemsize:
        Bytes per grid element.

    Returns
    -------
    (addrs, writes, access_bytes)
        Byte addresses, matching write flags, and the uniform access width
        (``vl · itemsize``) — ready for
        :meth:`repro.cache.simulator.CacheHierarchySimulator.access_stream`.
    """
    vl = ir.vl
    access_bytes = vl * itemsize
    if ir.dims == 1:
        n = int(shape if np.isscalar(shape) else tuple(shape)[0])
        npoints = n
    else:
        npoints = int(np.prod(tuple(shape)))
    if write_base is None:
        write_base = read_base + npoints * itemsize

    if ir.dims == 1:
        return _stream_1d(ir, n, read_base, write_base, itemsize, access_bytes)
    return _stream_squares(ir, tuple(shape), read_base, write_base, itemsize, access_bytes)


def _segment_mem_ops(ir: ScheduleIR, name: str):
    """Memory ops of stage ``name``, tolerant of software-pipelined programs.

    A pipelined program merges the vertical/horizontal stages into one
    ``pipelined`` segment; its memory ops partition cleanly by tag family
    (vertical row loads vs. horizontal ``out_row`` stores), so the stage-wise
    address-stream generators keep working on the merged form.
    """
    try:
        return [op for op in ir.segment(name).ops if op.is_memory]
    except KeyError:
        merged = ir.segment("pipelined")
        if name == "vertical":
            return [op for op in merged.ops if op.opcode == "load"]
        if name == "horizontal":
            return [op for op in merged.ops if op.opcode == "store"]
        raise


def _stream_1d(
    ir: ScheduleIR, n: int, read_base: int, write_base: int, itemsize: int, access_bytes: int
) -> Tuple[np.ndarray, np.ndarray, int]:
    vl = ir.vl
    (nsets,) = ir.block_axes(n)
    mem_ops = _segment_mem_ops(ir, "block")
    sets = np.arange(nsets)
    cols: List[np.ndarray] = []
    writes: List[bool] = []
    for op in mem_ops:
        if op.opcode == "load":
            _, delta, j = op.tag
            start = ((sets + delta) % nsets) * (vl * vl) + j * vl
            cols.append(read_base + itemsize * start)
            writes.append(False)
        else:
            _, j = op.tag
            start = sets * (vl * vl) + j * vl
            cols.append(write_base + itemsize * start)
            writes.append(True)
    addrs = np.stack(cols, axis=1).reshape(-1)
    flags = np.broadcast_to(np.asarray(writes, dtype=bool), (nsets, len(writes))).reshape(-1)
    return addrs, flags.copy(), access_bytes


def _stream_squares(
    ir: ScheduleIR,
    shape: Tuple[int, ...],
    read_base: int,
    write_base: int,
    itemsize: int,
    access_bytes: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    vl = ir.vl
    planes, nrb, ncb = ir.block_axes(shape)
    rows, cols = shape[-2], shape[-1]
    vertical = _segment_mem_ops(ir, "vertical")
    horizontal = _segment_mem_ops(ir, "horizontal")

    def vertical_addrs(z: int, br: int, bc: int) -> np.ndarray:
        base_row = br * vl
        col0 = bc * vl
        out = np.empty(len(vertical), dtype=np.int64)
        for i, op in enumerate(vertical):
            _, dz, s = op.tag
            plane = (z + dz) % planes
            row = (base_row + s) % rows
            out[i] = read_base + itemsize * ((plane * rows + row) * cols + col0)
        return out

    def horizontal_addrs(z: int, br: int, bc: int) -> np.ndarray:
        base_row = br * vl
        col0 = bc * vl
        out = np.empty(len(horizontal), dtype=np.int64)
        for i, op in enumerate(horizontal):
            _, oi = op.tag
            out[i] = write_base + itemsize * ((z * rows + base_row + oi) * cols + col0)
        return out

    chunks: List[np.ndarray] = []
    flags: List[np.ndarray] = []
    v_flags = np.zeros(len(vertical), dtype=bool)
    h_flags = np.ones(len(horizontal), dtype=bool)
    for z in range(planes):
        for br in range(nrb):
            # Shifts reuse primes each block row with the previous and
            # current squares before the steady bc loop — the interpreted
            # sweeps' exact order.
            chunks.append(vertical_addrs(z, br, ncb - 1))
            flags.append(v_flags)
            chunks.append(vertical_addrs(z, br, 0))
            flags.append(v_flags)
            for bc in range(ncb):
                chunks.append(vertical_addrs(z, br, (bc + 1) % ncb))
                flags.append(v_flags)
                chunks.append(horizontal_addrs(z, br, bc))
                flags.append(h_flags)
    return np.concatenate(chunks), np.concatenate(flags), access_bytes
