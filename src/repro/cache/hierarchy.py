"""Cache hierarchy configuration.

Bridges :class:`repro.machine.MachineSpec` (which describes the paper's Xeon
Gold 6140) and the exact simulator / analytic traffic model.  A
:class:`CacheConfig` is just the subset of cache-level attributes those
consumers need, with helpers for deriving set counts and for listing the
capacity seen by a single core (the paper's sequential experiments) versus a
full socket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.machine import MachineSpec


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one simulated cache level.

    Attributes
    ----------
    name:
        Level name (``"L1"``, ``"L2"``, ``"L3"``).
    capacity_bytes:
        Capacity available to the simulated core.
    line_bytes:
        Cache line size.
    associativity:
        Number of ways per set.
    """

    name: str
    capacity_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        lines = self.capacity_bytes // self.line_bytes
        if lines % self.associativity != 0:
            raise ValueError(
                f"{self.name}: {lines} lines not divisible by associativity {self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (``lines / associativity``)."""
        return self.num_lines // self.associativity


def hierarchy_from_machine(
    machine: MachineSpec,
    cores_sharing_l3: int = 1,
) -> List[CacheConfig]:
    """Build the per-core cache configuration list for ``machine``.

    Parameters
    ----------
    machine:
        The machine description.
    cores_sharing_l3:
        How many cores share the L3 in the scenario being modelled; the L3
        capacity seen by one core is divided accordingly (1 for the paper's
        sequential block-free experiments, ``cores_per_socket`` for the
        full-socket runs).

    Returns
    -------
    list of CacheConfig
        Levels ordered from L1 outwards.
    """
    if cores_sharing_l3 < 1:
        raise ValueError("cores_sharing_l3 must be >= 1")
    configs: List[CacheConfig] = []
    for level in machine.caches:
        capacity = level.capacity_bytes
        associativity = level.associativity
        if level.shared and cores_sharing_l3 > 1:
            capacity = max(level.line_bytes * associativity, capacity // cores_sharing_l3)
        # Keep the set count integral after partitioning the shared level.
        lines = capacity // level.line_bytes
        lines = max(associativity, (lines // associativity) * associativity)
        capacity = lines * level.line_bytes
        configs.append(
            CacheConfig(
                name=level.name,
                capacity_bytes=capacity,
                line_bytes=level.line_bytes,
                associativity=associativity,
            )
        )
    return configs


def level_capacities(machine: MachineSpec) -> Tuple[Tuple[str, int], ...]:
    """Return ``(name, capacity_bytes)`` for each level plus ``("Memory", inf-ish)``.

    Convenience for choosing the problem sizes of the paper's Figure 8, whose
    x-axis is "problem resident in L1 / L2 / L3 / memory".
    """
    out = [(lvl.name, lvl.capacity_bytes) for lvl in machine.caches]
    out.append(("Memory", 1 << 62))
    return tuple(out)
