"""Analytic working-set traffic model.

Exact cache simulation of the paper's problem sizes (up to 10,240,000 points
× 1000 time steps) is not feasible from Python, so the experiment harness
uses the standard working-set argument instead:

* if the problem's working set fits in cache level ``L``, then after the
  first (cold) sweep essentially no traffic crosses level ``L``'s outer
  boundary;
* otherwise every sweep over the grid streams the arrays through that
  boundary: ``8`` bytes read of the source array, ``8`` bytes written of the
  destination array and — for write-allocate caches — ``8`` bytes of
  ownership read for the destination line, i.e. 24 bytes per point per sweep
  for a Jacobi-style stencil with two arrays;
* temporal blocking (tessellate tiling, and temporal computation folding
  inside registers) divides the number of sweeps per time step.

The model intentionally ignores halo/edge effects, conflict misses and
prefetch imperfections: those perturb constants, not the crossover structure
the reproduction needs to recover (which method wins at which residency
level — the paper's Figure 8 / Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.machine import MachineSpec

#: Streaming bytes per point per sweep for a two-array (Jacobi) stencil:
#: one read stream + one write stream + write-allocate fill of the store.
STREAM_BYTES_PER_POINT = 24.0

#: Streaming bytes per point per sweep when the destination can be written
#: with non-temporal stores or re-read immediately (no write-allocate): used
#: for layout-transform sweeps.
STREAM_BYTES_NO_ALLOCATE = 16.0


def neighborhood_working_set_bytes(
    shape: Sequence[int], radius: int, itemsize: int = 8
) -> float:
    """Bytes that must stay resident for full neighbour reuse in one sweep.

    A row-major streaming sweep re-reads every loaded element until the sweep
    front has advanced ``radius`` positions along the leading axis, so the
    reuse window is a slab of ``2r + 1`` leading-axis entries: points in 1-D,
    rows in 2-D, whole planes in 3-D.  The slab is what must fit in a cache
    level for the stencil's neighbour loads to hit there — the reason 3-D
    stencils fall out of small caches at far smaller extents than 2-D ones,
    and the quantity the 3-D blocking sizes of Table 1 are chosen against.
    """
    shape = tuple(int(s) for s in shape)
    if not shape or any(s < 1 for s in shape):
        raise ValueError(f"invalid grid shape {shape}")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    window = 2 * radius + 1
    for extent in shape[1:]:
        window *= extent
    return float(window * itemsize)


def sweep_reuse_level(
    shape: Sequence[int],
    machine: MachineSpec,
    radius: int,
    itemsize: int = 8,
    cores_sharing_l3: int = 1,
) -> str:
    """Innermost level holding one sweep's neighbour-reuse slab.

    ``"L1"``/``"L2"``/``"L3"`` mean the stencil's neighbour loads hit that
    level during a plain streaming sweep; ``"Memory"`` means even single-sweep
    reuse misses cache and spatial blocking is mandatory.
    """
    return residency_level(
        neighborhood_working_set_bytes(shape, radius, itemsize), machine, cores_sharing_l3
    )


def residency_level(
    working_set_bytes: float, machine: MachineSpec, cores_sharing_l3: int = 1
) -> str:
    """Return the innermost storage level that holds ``working_set_bytes``.

    Parameters
    ----------
    working_set_bytes:
        Total bytes of the arrays the kernel touches repeatedly.
    machine:
        Machine description supplying the cache capacities.
    cores_sharing_l3:
        Number of cores competing for the shared L3 (1 in the sequential
        experiments).

    Returns
    -------
    str
        ``"L1"``, ``"L2"``, ``"L3"`` or ``"Memory"``.
    """
    if working_set_bytes <= 0:
        raise ValueError("working_set_bytes must be positive")
    for level in machine.caches:
        capacity = level.capacity_bytes
        if level.shared and cores_sharing_l3 > 1:
            capacity = capacity / cores_sharing_l3
        if working_set_bytes <= capacity:
            return level.name
    return "Memory"


@dataclass
class TrafficEstimate:
    """Bytes per grid point per time step crossing each cache boundary.

    Attributes
    ----------
    per_level:
        Mapping from level name to bytes/point/step entering that level from
        the next outer level.  ``"Memory"`` denotes the DRAM interface.
    residency:
        The innermost level holding the working set.
    working_set_bytes:
        The working set used for the estimate.
    """

    per_level: Dict[str, float] = field(default_factory=dict)
    residency: str = "Memory"
    working_set_bytes: float = 0.0

    def bytes_from(self, level: str) -> float:
        """Bytes/point/step fetched across the boundary of ``level`` (0 if absent)."""
        return self.per_level.get(level, 0.0)

    @property
    def dram_bytes_per_point_per_step(self) -> float:
        """Convenience accessor for the DRAM boundary."""
        return self.bytes_from("Memory")


def estimate_traffic(
    working_set_bytes: float,
    machine: MachineSpec,
    sweeps_per_step: float = 1.0,
    temporal_reuse: Dict[str, float] | None = None,
    stream_bytes_per_point: float = STREAM_BYTES_PER_POINT,
    extra_memory_sweeps_per_step: float = 0.0,
    cores_sharing_l3: int = 1,
) -> TrafficEstimate:
    """Estimate per-level traffic for a stencil execution scheme.

    Parameters
    ----------
    working_set_bytes:
        Bytes of the repeatedly-touched arrays (normally ``2 * 8 * N`` for a
        Jacobi stencil on ``N`` points; 3 arrays for APOP).
    machine:
        Machine description supplying cache capacities.
    sweeps_per_step:
        Full passes over the working set per logical time step.  ``1.0`` for
        ordinary execution, ``0.5`` for 2-step temporal folding (two time
        steps advance per pass), etc.
    temporal_reuse:
        Optional per-level reuse factors from temporal blocking: a tile kept
        resident in level ``L`` for ``t`` consecutive time steps divides the
        traffic crossing ``L``'s boundary by ``t``.  Keys are level names
        (``"L3"``, ``"Memory"``...); missing levels default to 1.0.
    stream_bytes_per_point:
        Bytes per point per sweep when streaming (default: 24, two arrays
        with write-allocate).
    extra_memory_sweeps_per_step:
        Additional full-array sweeps per step charged to the DRAM boundary
        regardless of residency — used for the DLT global layout transforms,
        which are amortised over the run by the caller.
    cores_sharing_l3:
        Cores competing for the L3 slice.

    Returns
    -------
    TrafficEstimate
        Bytes/point/step at every boundary plus the residency level.
    """
    if working_set_bytes <= 0:
        raise ValueError("working_set_bytes must be positive")
    if sweeps_per_step <= 0:
        raise ValueError("sweeps_per_step must be positive")
    temporal_reuse = dict(temporal_reuse or {})

    residency = residency_level(working_set_bytes, machine, cores_sharing_l3)
    level_names = [lvl.name for lvl in machine.caches] + ["Memory"]
    residency_idx = level_names.index(residency)

    per_level: Dict[str, float] = {}
    base = stream_bytes_per_point * sweeps_per_step
    for idx, name in enumerate(level_names):
        if idx == 0:
            # Traffic into L1 is governed by the instruction stream (vector
            # loads/stores); the cost model accounts for it separately.
            continue
        if idx <= residency_idx:
            reuse = max(1.0, temporal_reuse.get(name, 1.0))
            per_level[name] = base / reuse
        else:
            per_level[name] = 0.0
    if extra_memory_sweeps_per_step > 0.0:
        per_level["Memory"] = per_level.get("Memory", 0.0) + (
            STREAM_BYTES_NO_ALLOCATE * extra_memory_sweeps_per_step
        )
    return TrafficEstimate(
        per_level=per_level,
        residency=residency,
        working_set_bytes=float(working_set_bytes),
    )


def problem_size_for_level(
    machine: MachineSpec,
    level: str,
    bytes_per_point: float = 16.0,
    fill_fraction: float = 0.5,
) -> int:
    """Return a point count whose working set sits inside ``level``.

    Used to pick the Figure 8 problem sizes ("resident in L1 / L2 / L3 /
    memory").  ``fill_fraction`` keeps some headroom below the capacity so
    that boundary effects do not flip the residency; the ``"Memory"`` level
    returns a problem four times larger than the last cache.

    Parameters
    ----------
    machine:
        Machine description.
    level:
        ``"L1"``, ``"L2"``, ``"L3"`` or ``"Memory"``.
    bytes_per_point:
        Working-set bytes per grid point (two arrays of doubles by default).
    fill_fraction:
        Fraction of the capacity to fill.
    """
    if not 0.0 < fill_fraction <= 1.0:
        raise ValueError("fill_fraction must lie in (0, 1]")
    caches = {lvl.name: lvl.capacity_bytes for lvl in machine.caches}
    if level == "Memory":
        capacity = max(caches.values()) * 4.0
        return int(capacity / bytes_per_point)
    if level not in caches:
        raise KeyError(f"unknown level {level!r}")
    return max(1, int(caches[level] * fill_fraction / bytes_per_point))
