"""Symbolic trace recording: lowering schedules to the typed IR.

:class:`TraceRecorder` is a :class:`~repro.simd.machine.SimdMachine` proxy
that *records* the instruction stream of a schedule instead of executing it.
The folding sweeps never branch on register *values* — their control flow is
fully determined by the schedule structure and the grid geometry — so one
symbolic execution of a per-block pipeline piece captures the complete
instruction trace of every block position at once.

The recorder emits the typed IR of :mod:`repro.ir.ops` directly: every
instruction becomes an :class:`~repro.ir.ops.IrOp` (explicit opcode,
instruction class, operand/result virtual registers, lane width, memory tag)
appended to the current :class:`~repro.ir.ops.IrSegment`.

Design notes
------------
* Lane semantics of the data-organisation instructions (blend, rotate,
  unpack, ``permute2f128``, block exchanges) are derived by *probing*: the
  recorder runs the instruction once on a scratch
  :class:`~repro.simd.machine.SimdMachine` with distinguishing lane values
  and reads off the source lane of every destination lane.  The probe reuses
  the real machine's implementation, so recorded semantics (and argument
  validation) cannot drift from interpreted execution.
* Register pressure mirrors the machine's accounting exactly, *per segment*:
  :meth:`note_live_registers` records the segment's peak live count and
  charges any excess over the architectural register count as spill
  stores/reloads, which :meth:`repro.ir.ops.IrSegment.counts` folds back
  into the derived tallies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.ops import IrOp, IrSegment
from repro.simd.isa import InstructionClass, IsaSpec
from repro.simd.machine import SimdMachine
from repro.simd.vector import Vector

#: Back-compat aliases: the recorder's op/segment types were promoted into
#: the typed IR of :mod:`repro.ir.ops`.
TraceOp = IrOp
TraceSegment = IrSegment


class TraceReg:
    """A virtual register produced during trace recording."""

    __slots__ = ("vid", "lanes")

    def __init__(self, vid: int, lanes: int):
        self.vid = vid
        self.lanes = lanes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceReg(v{self.vid})"


class TraceRecorder(SimdMachine):
    """Records the instruction stream of a schedule as typed IR segments.

    The recorder presents the full :class:`~repro.simd.machine.SimdMachine`
    instruction surface, so the per-block pipeline pieces of
    :class:`~repro.core.vectorized_folding.FoldingSchedule` run against it
    unchanged.  Memory traffic goes through :meth:`emit_load` /
    :meth:`emit_store` (bound by the lowering through the pieces'
    ``load``/``store`` callables) so every access carries an abstract
    block-relative tag instead of a concrete address.
    """

    def __init__(self, isa: IsaSpec):
        super().__init__(isa)
        self._probe = SimdMachine(isa)
        self._probe_a = Vector(np.arange(self.vl, dtype=np.float64))
        self._probe_b = Vector(self.vl + np.arange(self.vl, dtype=np.float64))
        self.segments: List[IrSegment] = []
        self._nregs = 0

    # ------------------------------------------------------------------ #
    # segment and register management
    # ------------------------------------------------------------------ #
    @property
    def nregs(self) -> int:
        """Number of virtual registers allocated so far."""
        return self._nregs

    def begin_segment(self, name: str, trip: str = "once") -> None:
        """Start a new trace segment with trip role ``trip``."""
        self.segments.append(IrSegment(name=name, trip=trip))

    def _segment(self) -> IrSegment:
        if not self.segments:
            raise RuntimeError("begin_segment() must be called before recording")
        return self.segments[-1]

    def _new_reg(self) -> TraceReg:
        reg = TraceReg(self._nregs, self.vl)
        self._nregs += 1
        return reg

    def _emit(
        self,
        opcode: str,
        cls: Optional[InstructionClass],
        srcs: Tuple[TraceReg, ...] = (),
        imm: object = None,
        tag: object = None,
    ) -> TraceReg:
        for src in srcs:
            if not isinstance(src, TraceReg):
                raise TypeError(f"trace operand is not a TraceReg: {src!r}")
            if src.lanes != self.vl:
                raise ValueError("operand width does not match machine vector length")
        dst = self._new_reg()
        self._segment().ops.append(
            IrOp(
                opcode,
                dst.vid,
                tuple(s.vid for s in srcs),
                imm=imm,
                tag=tag,
                cls=cls,
                lanes=self.vl,
            )
        )
        return dst

    # ------------------------------------------------------------------ #
    # tagged memory traffic (bound through the pipeline-piece callables)
    # ------------------------------------------------------------------ #
    def emit_load(self, tag: object) -> TraceReg:
        """Record a vector load from the abstract address ``tag``."""
        return self._emit("load", InstructionClass.LOAD, tag=tag)

    def emit_store(self, tag: object, vec: TraceReg) -> None:
        """Record a vector store of ``vec`` to the abstract address ``tag``."""
        if not isinstance(vec, TraceReg):
            raise TypeError("emit_store expects a TraceReg")
        self._segment().ops.append(
            IrOp(
                "store",
                -1,
                (vec.vid,),
                tag=tag,
                cls=InstructionClass.STORE,
                lanes=self.vl,
            )
        )

    def emit_input(self, tag: object) -> TraceReg:
        """Declare a register produced by an earlier stage (no instruction)."""
        return self._emit("input", None, tag=tag)

    # ------------------------------------------------------------------ #
    # SimdMachine instruction surface
    # ------------------------------------------------------------------ #
    def load(self, array, start, aligned=True):  # pragma: no cover - guard
        raise RuntimeError("trace recording addresses memory via emit_load(tag)")

    def store(self, vec, array, start, aligned=True):  # pragma: no cover - guard
        raise RuntimeError("trace recording addresses memory via emit_store(tag)")

    def broadcast(self, value: float) -> TraceReg:
        return self._emit("const", InstructionClass.BROADCAST, imm=float(value))

    def add(self, a: TraceReg, b: TraceReg) -> TraceReg:
        return self._emit("add", InstructionClass.ARITH, (a, b))

    def sub(self, a: TraceReg, b: TraceReg) -> TraceReg:
        return self._emit("sub", InstructionClass.ARITH, (a, b))

    def mul(self, a: TraceReg, b: TraceReg) -> TraceReg:
        return self._emit("mul", InstructionClass.ARITH, (a, b))

    def maximum(self, a: TraceReg, b: TraceReg) -> TraceReg:
        return self._emit("max", InstructionClass.MAX, (a, b))

    def fma(self, a: TraceReg, b: TraceReg, c: TraceReg) -> TraceReg:
        return self._emit("fma", InstructionClass.FMA, (a, b, c))

    def _probe2(self, method: str, *args) -> Tuple[int, ...]:
        """Derive a two-source lane map by probing the real machine."""
        result = getattr(self._probe, method)(self._probe_a, self._probe_b, *args)
        return tuple(int(v) for v in result)

    def blend(self, a: TraceReg, b: TraceReg, mask: Sequence[bool]) -> TraceReg:
        lane_map = self._probe2("blend", mask)
        return self._emit("shuf2", InstructionClass.BLEND, (a, b), imm=lane_map)

    def permute_lanes(self, a: TraceReg, order: Sequence[int]) -> TraceReg:
        probe = self._probe.permute_lanes(self._probe_a, order)
        lane_map = tuple(int(v) for v in probe)
        return self._emit("shuf1", InstructionClass.PERMUTE, (a,), imm=lane_map)

    def unpacklo(self, a: TraceReg, b: TraceReg) -> TraceReg:
        lane_map = self._probe2("unpacklo")
        return self._emit("shuf2", InstructionClass.SHUFFLE, (a, b), imm=lane_map)

    def unpackhi(self, a: TraceReg, b: TraceReg) -> TraceReg:
        lane_map = self._probe2("unpackhi")
        return self._emit("shuf2", InstructionClass.SHUFFLE, (a, b), imm=lane_map)

    def permute2f128(self, a: TraceReg, b: TraceReg, sel_lo: int, sel_hi: int) -> TraceReg:
        lane_map = self._probe2("permute2f128", sel_lo, sel_hi)
        return self._emit("shuf2", InstructionClass.PERMUTE, (a, b), imm=lane_map)

    def exchange_blocks(self, a: TraceReg, b: TraceReg, block: int, high: bool) -> TraceReg:
        lane_map = self._probe2("exchange_blocks", block, high)
        cls = InstructionClass.SHUFFLE if block == 1 else InstructionClass.PERMUTE
        return self._emit("shuf2", cls, (a, b), imm=lane_map)

    def note_live_registers(self, live: int) -> None:
        """Mirror the machine's register-pressure accounting per segment."""
        if live < 0:
            raise ValueError("live register count cannot be negative")
        seg = self._segment()
        seg.peak_live = max(seg.peak_live, live)
        excess = live - self.isa.registers
        if excess > 0:
            seg.spills += excess
