"""Trace recording: lowering register-level schedules to the typed IR.

The interpreted simulator executes register-level schedules one Python
``Vector`` instruction at a time, which is exact but caps the grid sizes a
``simulate()`` call can afford.  This package holds the *recording* half of
the record-once/replay-many scheme:

* :mod:`repro.trace.recorder` — a :class:`~repro.trace.recorder.TraceRecorder`
  proxy machine that captures the per-block instruction stream of a
  :class:`~repro.core.vectorized_folding.FoldingSchedule` sweep as typed
  :class:`~repro.ir.ops.IrOp` segments by running the schedule's own
  pipeline pieces symbolically.

Compilation and replay live in :mod:`repro.ir`: the recorded segments become
a :class:`~repro.ir.ops.ScheduleIR` (:func:`repro.ir.lower.lower_schedule`),
optionally rewritten by the optimizing pass pipeline
(:mod:`repro.ir.passes`), and executed by the dimension-generic
:class:`~repro.ir.executor.CompiledSweep`.  Replay is bit-identical to the
interpreted sweep; an unoptimized program also reproduces its
:class:`~repro.simd.machine.InstructionCounts` identically.  It is the
default backend of :meth:`repro.core.plan.CompiledPlan.simulate` (opt out
with ``backend="interpret"``, opt into the pass pipeline with
``optimize=True``).
"""

from repro.trace.compiler import (
    CompiledSweep,
    CompiledSweep1D,
    CompiledSweep2D,
    CompiledSweep3D,
    compile_sweep,
)
from repro.trace.recorder import TraceOp, TraceRecorder, TraceReg, TraceSegment

__all__ = [
    "CompiledSweep",
    "CompiledSweep1D",
    "CompiledSweep2D",
    "CompiledSweep3D",
    "TraceOp",
    "TraceRecorder",
    "TraceReg",
    "TraceSegment",
    "compile_sweep",
]
