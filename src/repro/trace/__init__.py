"""Trace-compiled simulation: record-once/replay-many SIMD sweeps.

The interpreted simulator executes register-level schedules one Python
``Vector`` instruction at a time, which is exact but caps the grid sizes a
``simulate()`` call can afford.  This package removes the per-instruction
Python overhead without giving up exactness:

* :mod:`repro.trace.recorder` — a :class:`~repro.trace.recorder.TraceRecorder`
  proxy machine that captures the per-block instruction trace of a
  :class:`~repro.core.vectorized_folding.FoldingSchedule` sweep (opcode,
  operand slots, block-relative grid offsets, instruction class) by running
  the schedule's own pipeline pieces symbolically,
* :mod:`repro.trace.compiler` — compiles that trace into a batched NumPy
  program replaying it over *all* block positions at once
  (:func:`compile_sweep`), with instruction counts derived analytically from
  the trace times the block count (spill accounting included).

Replay is bit-identical to the interpreted sweep and produces identical
:class:`~repro.simd.machine.InstructionCounts`; it is the default backend of
:meth:`repro.core.plan.CompiledPlan.simulate` (opt out with
``backend="interpret"``).
"""

from repro.trace.compiler import (
    CompiledSweep1D,
    CompiledSweep2D,
    CompiledSweep3D,
    compile_sweep,
)
from repro.trace.recorder import TraceOp, TraceRecorder, TraceReg, TraceSegment

__all__ = [
    "CompiledSweep1D",
    "CompiledSweep2D",
    "CompiledSweep3D",
    "TraceOp",
    "TraceRecorder",
    "TraceReg",
    "TraceSegment",
    "compile_sweep",
]
