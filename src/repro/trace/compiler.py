"""Trace compilation and batched replay of the register-level schedules.

The interpreted SIMD sweeps (:meth:`FoldingSchedule.simd_sweep_1d` /
:meth:`~repro.core.vectorized_folding.FoldingSchedule.simd_sweep_2d`) execute
one Python :class:`~repro.simd.vector.Vector` instruction at a time, which
makes every ``simulate()`` call scale with the grid size times the Python
interpreter overhead.  This module removes that overhead with a classic
record-once/replay-many scheme:

1. **Record** — the per-block pipeline pieces of the schedule are executed
   once against a :class:`~repro.trace.recorder.TraceRecorder`, capturing the
   per-block instruction trace (opcode, operand slots, block-relative grid
   offsets, instruction class).  Recording is symbolic: no grid is needed and
   its cost is independent of the grid size.
2. **Compile** — the trace becomes a straight-line batched NumPy program:
   every virtual register turns into an array with leading *block* axes
   (all vector sets of the 1-D layout, all ``vl × vl`` squares of the 2-D
   grid, or all (plane, square) positions of a 3-D grid), loads become
   gathers whose index arithmetic mirrors the interpreted sweep's periodic
   addressing, and cross-block operands (the 2-D/3-D shifts reuse) become
   rolls of the column-block axis.
3. **Replay** — one pass over the trace updates *every* block position at
   once.  Because each replayed instruction applies the identical ``float64``
   elementwise operation the machine would have applied per block, the result
   is bit-identical to the interpreted sweep.

Instruction accounting is not re-executed; it is derived analytically from
the per-segment tallies recorded in step 1 times the number of times the
interpreted sweep executes each segment (including spill charging), which
reproduces the interpreted :class:`~repro.simd.machine.InstructionCounts`
exactly — see :meth:`CompiledSweep1D.sweep_counts` /
:meth:`CompiledSweep2D.sweep_counts`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.simd.isa import IsaSpec
from repro.simd.machine import InstructionCounts
from repro.trace.recorder import TraceOp, TraceRecorder, TraceSegment

__all__ = ["CompiledSweep1D", "CompiledSweep2D", "CompiledSweep3D", "compile_sweep"]


class _SegmentProgram:
    """An executable form of one trace segment.

    Shuffle immediates are pre-decoded into NumPy index/selector arrays and a
    register-liveness table is computed so replay can drop large intermediate
    arrays as soon as their last consumer has run.
    """

    def __init__(self, ops: Sequence[TraceOp], vl: int, keep: Optional[Set[int]] = None):
        self.vl = vl
        keep = keep or set()
        defined = {op.dst for op in ops if op.dst >= 0}
        last_use: Dict[int, int] = {}
        for i, op in enumerate(ops):
            for src in op.srcs:
                last_use[src] = i
        self.steps: List[Tuple[TraceOp, object, Tuple[int, ...]]] = []
        for i, op in enumerate(ops):
            if op.opcode == "input" and op.dst not in last_use and op.dst not in keep:
                # Dead stage input: the trace declares every possible
                # cross-stage operand, but e.g. the horizontal fold only
                # reads the R boundary columns of its neighbour squares.
                # Skipping the op avoids materializing a rolled full-grid
                # copy nobody reads.
                continue
            imm = op.imm
            if op.opcode == "shuf1":
                imm = np.asarray(imm, dtype=np.intp)
            elif op.opcode == "shuf2":
                lane_map = np.asarray(imm, dtype=np.intp)
                sel_b = lane_map >= vl
                imm = (sel_b, np.where(sel_b, lane_map - vl, lane_map))
            frees = tuple(
                src
                for src in dict.fromkeys(op.srcs)
                if src in defined and src not in keep and last_use[src] == i
            )
            self.steps.append((op, imm, frees))

    def run(
        self,
        env: List[Optional[np.ndarray]],
        load_fn: Optional[Callable[[object], np.ndarray]] = None,
        store_fn: Optional[Callable[[object, np.ndarray], None]] = None,
        input_fn: Optional[Callable[[object], np.ndarray]] = None,
    ) -> None:
        """Execute the segment over ``env`` (virtual register id → array)."""
        for op, imm, frees in self.steps:
            oc = op.opcode
            if oc == "fma":
                a, b, c = op.srcs
                env[op.dst] = env[a] * env[b] + env[c]
            elif oc == "mul":
                a, b = op.srcs
                env[op.dst] = env[a] * env[b]
            elif oc == "add":
                a, b = op.srcs
                env[op.dst] = env[a] + env[b]
            elif oc == "sub":
                a, b = op.srcs
                env[op.dst] = env[a] - env[b]
            elif oc == "max":
                a, b = op.srcs
                env[op.dst] = np.maximum(env[a], env[b])
            elif oc == "shuf1":
                env[op.dst] = env[op.srcs[0]][..., imm]
            elif oc == "shuf2":
                sel_b, idx = imm
                a, b = op.srcs
                env[op.dst] = np.where(sel_b, env[b][..., idx], env[a][..., idx])
            elif oc == "load":
                env[op.dst] = load_fn(op.tag)
            elif oc == "store":
                store_fn(op.tag, env[op.srcs[0]])
            elif oc == "input":
                env[op.dst] = input_fn(op.tag)
            elif oc == "const":
                env[op.dst] = np.full(self.vl, imm, dtype=np.float64)
            else:  # pragma: no cover - recorder emits no other opcodes
                raise RuntimeError(f"unknown trace opcode {oc!r}")
            for src in frees:
                env[src] = None


def _combine_counts(
    parts: Sequence[Tuple[TraceSegment, float]],
) -> Tuple[InstructionCounts, int, float]:
    """Sum segment tallies scaled by their execution multiplicity."""
    counts = InstructionCounts()
    peak = 0
    spills = 0.0
    for segment, mult in parts:
        counts = counts.merge(segment.counts.scaled(mult))
        if mult > 0:
            peak = max(peak, segment.peak_live)
        spills += segment.spills * mult
    return counts, peak, spills


def _check_contiguous_out(out: Optional[np.ndarray], template: np.ndarray) -> np.ndarray:
    if out is None:
        return np.empty_like(template)
    if not out.flags.c_contiguous:
        raise ValueError("trace replay requires a C-contiguous output array")
    if out.shape != template.shape:
        raise ValueError(f"output shape {out.shape} does not match grid shape {template.shape}")
    return out


class CompiledSweep1D:
    """Batched replay of :meth:`FoldingSchedule.simd_sweep_1d`.

    The trace holds a ``prologue`` segment (weight broadcasts, executed once
    per sweep) and a ``block`` segment (one vector set, executed once per set
    by the interpreted sweep and once *in bulk* by :meth:`replay`).
    """

    dims = 1

    def __init__(self, schedule, isa: IsaSpec):
        if schedule.dims != 1:
            raise ValueError("CompiledSweep1D applies to 1-D stencils only")
        vl = isa.vector_lanes
        if schedule.radius > vl:
            raise ValueError(
                f"folded radius {schedule.radius} exceeds the vector length {vl}; "
                "the assembled-vector construction supports radius <= vl"
            )
        self.schedule = schedule
        self.isa = isa
        self.vl = vl
        rec = TraceRecorder(isa)
        rec.begin_segment("prologue")
        weight_vecs = schedule._sweep_1d_weight_vectors(rec)
        rec.begin_segment("block")
        schedule._sweep_1d_block(
            rec,
            weight_vecs,
            load=lambda delta, j: rec.emit_load(("set", delta, j)),
            store=lambda j, vec: rec.emit_store(("set", j), vec),
        )
        self._prologue, self._block = rec.segments
        base_env: List[Optional[np.ndarray]] = [None] * rec.nregs
        _SegmentProgram(self._prologue.ops, vl, keep=set(range(rec.nregs))).run(base_env)
        self._base_env = base_env
        self._block_prog = _SegmentProgram(self._block.ops, vl)

    def replay(self, values_t: np.ndarray, out_t: Optional[np.ndarray] = None) -> np.ndarray:
        """One folded update of all vector sets at once (transpose layout)."""
        values_t = np.asarray(values_t, dtype=np.float64)
        vl = self.vl
        n = values_t.size
        block = vl * vl
        if n % block != 0:
            raise ValueError(f"array length {n} must be a multiple of vl²={block}")
        nsets = n // block
        v3 = np.ascontiguousarray(values_t).reshape(nsets, vl, vl)
        out_t = _check_contiguous_out(out_t, values_t)
        out3 = out_t.reshape(nsets, vl, vl)

        def load_fn(tag):
            _, delta, j = tag
            column = v3[:, j, :]
            if delta == 0:
                return column
            return np.roll(column, -delta, axis=0)

        def store_fn(tag, val):
            _, j = tag
            out3[:, j, :] = val

        env = list(self._base_env)
        self._block_prog.run(env, load_fn=load_fn, store_fn=store_fn)
        return out_t

    def sweep_counts(
        self, shape: Union[int, Sequence[int]]
    ) -> Tuple[InstructionCounts, int, float]:
        """Exact per-sweep ``(counts, peak_live, spills)`` for a length-``n`` grid.

        Derived as prologue + block-segment tallies × the number of vector
        sets — identical to what the interpreted sweep would record.
        """
        n = int(shape if np.isscalar(shape) else shape[0])
        nsets = n // (self.vl * self.vl)
        return _combine_counts([(self._prologue, 1.0), (self._block, float(nsets))])


class CompiledSweep2D:
    """Batched replay of :meth:`FoldingSchedule.simd_sweep_2d`.

    Three segments: ``prologue`` (weight broadcasts, once per sweep),
    ``vertical`` (vertical folds + register transpose of one square; the
    interpreted sweep runs it ``n_row_blocks · (n_col_blocks + 2)`` times
    because shifts reuse still primes each row with two extra squares) and
    ``horizontal`` (horizontal folding + weighted transpose + stores, once
    per square).  Replay evaluates ``vertical`` once for *all* squares and
    resolves the shifts-reuse operands of ``horizontal`` by rolling the
    column-block axis.
    """

    dims = 2

    def __init__(self, schedule, isa: IsaSpec, transpose_back: bool = True):
        if schedule.dims != 2:
            raise ValueError("CompiledSweep2D applies to 2-D stencils only")
        vl = isa.vector_lanes
        if schedule.radius > vl:
            raise ValueError("folded radius must not exceed the vector length")
        self.schedule = schedule
        self.isa = isa
        self.vl = vl
        self.transpose_back = transpose_back
        rec = TraceRecorder(isa)
        rec.begin_segment("prologue")
        weights = schedule._sweep_square_weight_vectors(rec)
        rec.begin_segment("vertical")
        vt = schedule._sweep_2d_vertical(
            rec, weights, load_row=lambda s: rec.emit_load(("row", s))
        )
        self._vt_out = [[reg.vid for reg in cols] for cols in vt]
        rec.begin_segment("horizontal")
        n_mat = len(vt)

        def stage_inputs(delta: int):
            return [
                [rec.emit_input(("vt", delta, ci, k)) for k in range(vl)]
                for ci in range(n_mat)
            ]

        prev_t, cur_t, next_t = stage_inputs(-1), stage_inputs(0), stage_inputs(+1)
        out_cols = schedule._sweep_square_horizontal(rec, weights, prev_t, cur_t, next_t)
        schedule._sweep_square_store(
            rec,
            out_cols,
            store=lambda oi, vec: rec.emit_store(("out_row", oi), vec),
            transpose_back=transpose_back,
        )
        self._prologue, self._vertical, self._horizontal = rec.segments
        base_env: List[Optional[np.ndarray]] = [None] * rec.nregs
        _SegmentProgram(self._prologue.ops, vl, keep=set(range(rec.nregs))).run(base_env)
        self._base_env = base_env
        vt_vids = {vid for cols in self._vt_out for vid in cols}
        self._vertical_prog = _SegmentProgram(self._vertical.ops, vl, keep=vt_vids)
        self._horizontal_prog = _SegmentProgram(self._horizontal.ops, vl)

    def replay(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One folded update of all ``vl × vl`` squares at once."""
        values = np.asarray(values, dtype=np.float64)
        vl = self.vl
        if values.ndim != 2:
            raise ValueError("CompiledSweep2D.replay expects a 2-D grid")
        rows, cols = values.shape
        if rows % vl != 0 or cols % vl != 0:
            raise ValueError(f"grid shape {values.shape} must be a multiple of vl={vl}")
        nrb, ncb = rows // vl, cols // vl
        values = np.ascontiguousarray(values)
        v4 = values.reshape(nrb, vl, ncb, vl)
        out = _check_contiguous_out(out, values)
        out4 = out.reshape(nrb, vl, ncb, vl)

        def load_fn(tag):
            _, s = tag
            if 0 <= s < vl:
                return v4[:, s]
            rowsel = (np.arange(nrb) * vl + s) % rows
            return values[rowsel].reshape(nrb, ncb, vl)

        env = list(self._base_env)
        self._vertical_prog.run(env, load_fn=load_fn)
        vt_arrays = [[env[vid] for vid in col_vids] for col_vids in self._vt_out]

        def input_fn(tag):
            _, delta, ci, k = tag
            arr = vt_arrays[ci][k]
            if delta == 0:
                return arr
            return np.roll(arr, -delta, axis=1)

        def store_fn(tag, val):
            _, oi = tag
            out4[:, oi] = val

        self._horizontal_prog.run(env, store_fn=store_fn, input_fn=input_fn)
        if not self.transpose_back:
            from repro.core.vectorized_folding import _untranspose_tiles

            out = _untranspose_tiles(out, vl)
        return out

    def sweep_counts(self, shape: Sequence[int]) -> Tuple[InstructionCounts, int, float]:
        """Exact per-sweep ``(counts, peak_live, spills)`` for a 2-D grid.

        The vertical segment is weighted by ``n_row_blocks · (n_col_blocks +
        2)`` — the interpreted sweep recomputes the previous and current
        squares when it enters each block row — and the horizontal segment by
        the number of squares, which reproduces the interpreted tally
        identically.
        """
        rows, cols = shape
        nrb, ncb = rows // self.vl, cols // self.vl
        return _combine_counts(
            [
                (self._prologue, 1.0),
                (self._vertical, float(nrb * (ncb + 2))),
                (self._horizontal, float(nrb * ncb)),
            ]
        )


class CompiledSweep3D:
    """Batched replay of :meth:`FoldingSchedule.simd_sweep_3d`.

    Same three segments as :class:`CompiledSweep2D` — ``prologue``,
    ``vertical`` (full leading (plane, row) fold + register transpose of one
    square) and ``horizontal`` — but the block axes are
    ``(planes, row blocks, column blocks)``: replay evaluates ``vertical``
    once for every square of every plane and resolves the shifts-reuse
    operands of ``horizontal`` by rolling the column-block axis, exactly as
    the 2-D replay does.
    """

    dims = 3

    def __init__(self, schedule, isa: IsaSpec, transpose_back: bool = True):
        if schedule.dims != 3:
            raise ValueError("CompiledSweep3D applies to 3-D stencils only")
        vl = isa.vector_lanes
        if schedule.radius > vl:
            raise ValueError("folded radius must not exceed the vector length")
        self.schedule = schedule
        self.isa = isa
        self.vl = vl
        self.transpose_back = transpose_back
        rec = TraceRecorder(isa)
        rec.begin_segment("prologue")
        weights = schedule._sweep_square_weight_vectors(rec)
        rec.begin_segment("vertical")
        vt = schedule._sweep_3d_vertical(
            rec, weights, load_row=lambda dz, s: rec.emit_load(("row", dz, s))
        )
        self._vt_out = [[reg.vid for reg in cols] for cols in vt]
        rec.begin_segment("horizontal")
        n_mat = len(vt)

        def stage_inputs(delta: int):
            return [
                [rec.emit_input(("vt", delta, ci, k)) for k in range(vl)]
                for ci in range(n_mat)
            ]

        prev_t, cur_t, next_t = stage_inputs(-1), stage_inputs(0), stage_inputs(+1)
        out_cols = schedule._sweep_square_horizontal(rec, weights, prev_t, cur_t, next_t)
        schedule._sweep_square_store(
            rec,
            out_cols,
            store=lambda oi, vec: rec.emit_store(("out_row", oi), vec),
            transpose_back=transpose_back,
        )
        self._prologue, self._vertical, self._horizontal = rec.segments
        base_env: List[Optional[np.ndarray]] = [None] * rec.nregs
        _SegmentProgram(self._prologue.ops, vl, keep=set(range(rec.nregs))).run(base_env)
        self._base_env = base_env
        vt_vids = {vid for cols in self._vt_out for vid in cols}
        self._vertical_prog = _SegmentProgram(self._vertical.ops, vl, keep=vt_vids)
        self._horizontal_prog = _SegmentProgram(self._horizontal.ops, vl)

    def replay(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One folded update of every ``vl × vl`` square of every plane at once."""
        values = np.asarray(values, dtype=np.float64)
        vl = self.vl
        if values.ndim != 3:
            raise ValueError("CompiledSweep3D.replay expects a 3-D grid")
        planes, rows, cols = values.shape
        if rows % vl != 0 or cols % vl != 0:
            raise ValueError(
                f"grid shape {values.shape} must be a multiple of vl={vl} "
                "along its two innermost extents"
            )
        nrb, ncb = rows // vl, cols // vl
        values = np.ascontiguousarray(values)
        v5 = values.reshape(planes, nrb, vl, ncb, vl)
        out = _check_contiguous_out(out, values)
        out5 = out.reshape(planes, nrb, vl, ncb, vl)

        def load_fn(tag):
            _, dz, s = tag
            if dz == 0 and 0 <= s < vl:
                return v5[:, :, s]
            zsel = (np.arange(planes) + dz) % planes
            rowsel = (np.arange(nrb) * vl + s) % rows
            return values[np.ix_(zsel, rowsel)].reshape(planes, nrb, ncb, vl)

        env = list(self._base_env)
        self._vertical_prog.run(env, load_fn=load_fn)
        vt_arrays = [[env[vid] for vid in col_vids] for col_vids in self._vt_out]

        def input_fn(tag):
            _, delta, ci, k = tag
            arr = vt_arrays[ci][k]
            if delta == 0:
                return arr
            return np.roll(arr, -delta, axis=2)

        def store_fn(tag, val):
            _, oi = tag
            out5[:, :, oi] = val

        self._horizontal_prog.run(env, store_fn=store_fn, input_fn=input_fn)
        if not self.transpose_back:
            from repro.core.vectorized_folding import _untranspose_plane_tiles

            out = _untranspose_plane_tiles(out, vl)
        return out

    def sweep_counts(self, shape: Sequence[int]) -> Tuple[InstructionCounts, int, float]:
        """Exact per-sweep ``(counts, peak_live, spills)`` for a 3-D grid.

        The vertical segment runs ``planes · n_row_blocks · (n_col_blocks +
        2)`` times in the interpreted sweep (shifts reuse still primes every
        block row of every plane with two extra squares) and the horizontal
        segment once per square, which reproduces the interpreted tally
        identically.
        """
        planes, rows, cols = shape
        nrb, ncb = rows // self.vl, cols // self.vl
        return _combine_counts(
            [
                (self._prologue, 1.0),
                (self._vertical, float(planes * nrb * (ncb + 2))),
                (self._horizontal, float(planes * nrb * ncb)),
            ]
        )


def compile_sweep(schedule, isa: IsaSpec, transpose_back: bool = True):
    """Record and compile the SIMD sweep of ``schedule`` for ``isa``.

    Returns a :class:`CompiledSweep1D`, :class:`CompiledSweep2D` or
    :class:`CompiledSweep3D` according to the schedule's dimensionality.
    ``transpose_back`` mirrors the
    :meth:`~repro.core.vectorized_folding.FoldingSchedule.simd_sweep_2d` /
    :meth:`~repro.core.vectorized_folding.FoldingSchedule.simd_sweep_3d`
    flag (ignored for 1-D schedules, which always stay in the transpose
    layout).
    """
    if schedule.dims == 1:
        return CompiledSweep1D(schedule, isa)
    if schedule.dims == 2:
        return CompiledSweep2D(schedule, isa, transpose_back=transpose_back)
    if schedule.dims == 3:
        return CompiledSweep3D(schedule, isa, transpose_back=transpose_back)
    raise ValueError("trace compilation supports 1-D, 2-D and 3-D schedules only")
