"""Back-compat façade over the IR executor (:mod:`repro.ir.executor`).

The three per-dimensionality compiled sweeps that used to live here were
collapsed into the single dimension-generic
:class:`~repro.ir.executor.CompiledSweep`, which replays a typed
:class:`~repro.ir.ops.ScheduleIR` (produced by
:func:`repro.ir.lower.lower_schedule`) over all block positions at once.
This module keeps the historical import surface: :func:`compile_sweep` and
the ``CompiledSweep1D/2D/3D`` names, which now all resolve to the generic
executor.
"""

from __future__ import annotations

from repro.ir.executor import CompiledSweep, compile_sweep

#: Historical aliases — the per-dimensionality classes were collapsed into
#: the dimension-generic IR executor; isinstance checks against any of them
#: keep working.
CompiledSweep1D = CompiledSweep
CompiledSweep2D = CompiledSweep
CompiledSweep3D = CompiledSweep

__all__ = [
    "CompiledSweep",
    "CompiledSweep1D",
    "CompiledSweep2D",
    "CompiledSweep3D",
    "compile_sweep",
]
