"""Memoization of the analytic evaluation pipeline.

A parameter sweep revisits the same ``(method, stencil, isa, unroll)`` cell
many times: every storage level of Figure 8 profiles the same five methods,
every core count of Figure 10 re-derives the same tiled profiles, Table 2 /
Table 3 replay Figure 8 / Figure 10 wholesale.  :class:`EvalCache` memoizes
the two expensive stages — :func:`repro.methods.build_profile` (schedule
analysis, counterpart planning) and the performance estimates
(:func:`repro.perfmodel.costmodel.estimate_performance` /
:func:`repro.parallel.model.multicore_estimate`) — keyed by the canonical
configuration hash of their inputs (:mod:`repro.study.hashing`), so repeated
cells are free.

The cache is thread-safe with single-flight semantics: when several study
workers ask for the same key concurrently, exactly one computes and the
rest wait for its result, which keeps hit/miss accounting exact and the
work deduplicated.  Cached values are shared, never copied — safe because
every producer in the pipeline is pure and every consumer treats its inputs
as read-only.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.machine import MachineSpec
from repro.study.hashing import config_hash, freeze

__all__ = ["CacheStats", "EvalCache"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of an :class:`EvalCache`'s accounting.

    ``hits + misses`` equals the number of memoized calls served; ``entries``
    is the number of distinct keys currently held; ``store_hits`` counts the
    misses that were satisfied by the persistent store backing the cache
    (a subset of ``misses`` — the in-memory table still missed).
    """

    hits: int
    misses: int
    entries: int
    store_hits: int = 0

    @property
    def calls(self) -> int:
        """Total memoized calls served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from memory (0.0 when nothing was served)."""
        calls = self.calls
        return self.hits / calls if calls else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready accounting — the one shape the runner CLI and the
        service ``/stats`` endpoint both report."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "store_hits": self.store_hits,
            "hit_rate": self.hit_rate,
        }


class _Cell:
    """One cache slot with single-flight population."""

    __slots__ = ("ready", "value", "error")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class EvalCache:
    """Thread-safe memo table for profiles, estimates and folding reports.

    One cache instance is created per study run (or shared across runs and
    experiments by passing it explicitly); its lifetime bounds the validity
    of the keys, so plug-in methods registered mid-process cannot leak stale
    profiles between unrelated sweeps.
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        """``store`` optionally layers a persistent table under the memory one.

        Any object with ``load(kind, key_hash) -> (found, value)`` and
        ``save(kind, key_hash, value) -> bool`` works (the service's
        :class:`repro.service.store.ResultStore` is the canonical one): a
        memory miss consults the store before computing, and freshly computed
        values are written through best-effort, so identical keys are hits
        across process restarts.
        """
        self._lock = threading.Lock()
        self._cells: Dict[Hashable, _Cell] = {}
        self._hits = 0
        self._misses = 0
        self._store_hits = 0
        self._by_kind: Dict[str, List[int]] = {}
        self._store = store

    # ------------------------------------------------------------------ #
    # core memoization
    # ------------------------------------------------------------------ #
    def memoize(self, kind: str, key_parts: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``(kind, key_parts)``, computing once.

        ``kind`` namespaces the key (``"profile"``, ``"estimate"``, ...);
        ``key_parts`` is frozen canonically, so equal configurations share a
        slot regardless of container identity.  Concurrent callers of the
        same key block until the single in-flight computation finishes
        (single-flight); a computation that raises releases the slot so a
        later call may retry.  The computing thread re-raises the original
        exception; concurrent waiters receive a fresh ``RuntimeError``
        chained to it (re-raising one exception instance from several
        threads would corrupt its traceback).
        """
        key = (kind, freeze(key_parts))
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = _Cell()
                self._cells[key] = cell
                self._misses += 1
                self._kind_counts(kind)[1] += 1
                owner = True
            else:
                self._hits += 1
                self._kind_counts(kind)[0] += 1
                owner = False
        if owner:
            if self._store is not None:
                found, value = self._store_load(kind, key_parts)
                if found:
                    cell.value = value
                    cell.ready.set()
                    with self._lock:
                        self._store_hits += 1
                        self._kind_counts(kind)[2] += 1
                    return value
            try:
                cell.value = compute()
            except BaseException as exc:
                cell.error = exc
                with self._lock:
                    # Release the slot: the failure is reported to everyone
                    # currently waiting, but the key is computable again.
                    if self._cells.get(key) is cell:
                        del self._cells[key]
                raise
            finally:
                cell.ready.set()
            if self._store is not None:
                self._store_save(kind, key_parts, cell.value)
            return cell.value
        cell.ready.wait()
        if cell.error is not None:
            raise RuntimeError(
                f"memoized {kind!r} computation failed in another thread: {cell.error!r}"
            ) from cell.error
        return cell.value

    def _kind_counts(self, kind: str) -> List[int]:
        """[hits, misses, store_hits] counters of ``kind`` (lock held)."""
        counts = self._by_kind.get(kind)
        if counts is None:
            counts = self._by_kind[kind] = [0, 0, 0]
        return counts

    def _store_load(self, kind: str, key_parts: Any) -> Tuple[bool, Any]:
        """Best-effort persistent lookup; unreadable entries are cold misses."""
        try:
            return self._store.load(kind, config_hash(kind, key_parts))
        except Exception:
            return False, None

    def _store_save(self, kind: str, key_parts: Any, value: Any) -> bool:
        """Best-effort write-through; unserialisable values simply stay
        memory-only (the store, not the cache, owns what it can persist)."""
        try:
            return bool(self._store.save(kind, config_hash(kind, key_parts), value))
        except Exception:
            return False

    # ------------------------------------------------------------------ #
    # non-blocking access (the async service front end cannot sit on the
    # single-flight Event, so it peeks, runs its own async dedup, and puts)
    # ------------------------------------------------------------------ #
    def peek(self, kind: str, key_parts: Any) -> Tuple[bool, Any]:
        """``(True, value)`` when ``(kind, key_parts)`` is ready in memory.

        Never blocks and never counts as a hit or miss on its own: an
        in-flight or failed cell reads as absent.  Pair with :meth:`put` for
        callers that dedupe concurrent computations themselves.
        """
        key = (kind, freeze(key_parts))
        with self._lock:
            cell = self._cells.get(key)
            if cell is None or not cell.ready.is_set() or cell.error is not None:
                return False, None
            self._hits += 1
            self._kind_counts(kind)[0] += 1
            return True, cell.value

    def put(self, kind: str, key_parts: Any, value: Any, persist: bool = True) -> None:
        """Insert a ready value, counting one miss (the computation happened).

        ``persist`` additionally writes the value through to the backing
        store (when one is attached), making it a hit across restarts.
        An existing ready cell for the key is left untouched.
        """
        key = (kind, freeze(key_parts))
        with self._lock:
            cell = self._cells.get(key)
            if cell is not None and cell.ready.is_set() and cell.error is None:
                return
            fresh = _Cell()
            fresh.value = value
            fresh.ready.set()
            self._cells[key] = fresh
            self._misses += 1
            self._kind_counts(kind)[1] += 1
        if persist and self._store is not None:
            self._store_save(kind, key_parts, value)

    def load_persistent(self, kind: str, key_parts: Any) -> Tuple[bool, Any]:
        """Look up the backing store directly (no memory-table promotion).

        Counts as a store hit when found; ``(False, None)`` without a store.
        """
        if self._store is None:
            return False, None
        found, value = self._store_load(kind, key_parts)
        if found:
            with self._lock:
                self._store_hits += 1
                self._kind_counts(kind)[2] += 1
        return found, value

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def profile(
        self,
        method: str,
        spec: Any,
        isa: str = "avx2",
        m: int = 2,
        shifts_reuse: bool = True,
        **extra: Any,
    ) -> Any:
        """Memoized :func:`repro.methods.build_profile`.

        ``extra`` reaches richer profile builders (e.g. the SDSL baseline's
        split-tiling configuration) and participates in the key.
        """
        from repro.methods import build_profile

        return self.memoize(
            "profile",
            (method, spec, isa, m, shifts_reuse, extra),
            lambda: build_profile(
                method, spec, isa=isa, m=m, shifts_reuse=shifts_reuse, **extra
            ),
        )

    def estimate(
        self,
        profile: Any,
        npoints: int,
        time_steps: int,
        machine: MachineSpec,
        **kwargs: Any,
    ) -> Any:
        """Memoized single-core :func:`~repro.perfmodel.costmodel.estimate_performance`."""
        from repro.perfmodel.costmodel import estimate_performance

        return self.memoize(
            "estimate",
            (profile, npoints, time_steps, machine, kwargs),
            lambda: estimate_performance(
                profile, npoints=npoints, time_steps=time_steps, machine=machine, **kwargs
            ),
        )

    def multicore(
        self,
        profile: Any,
        grid_shape: Sequence[int],
        time_steps: int,
        machine: MachineSpec,
        cores: int,
        radius: int,
        tiling: Any = None,
        **kwargs: Any,
    ) -> Any:
        """Memoized :func:`repro.parallel.model.multicore_estimate`."""
        from repro.parallel.model import multicore_estimate

        grid_shape = tuple(grid_shape)
        return self.memoize(
            "multicore",
            (profile, grid_shape, time_steps, machine, cores, radius, tiling, kwargs),
            lambda: multicore_estimate(
                profile,
                grid_shape=grid_shape,
                time_steps=time_steps,
                machine=machine,
                cores=cores,
                radius=radius,
                tiling=tiling,
                **kwargs,
            ),
        )

    def folding(self, spec: Any, m: int) -> Any:
        """Memoized :func:`repro.core.folding.analyze_folding`."""
        from repro.core.folding import analyze_folding

        return self.memoize("folding", (spec, m), lambda: analyze_folding(spec, m))

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/entry counts (atomic snapshot)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._cells),
                store_hits=self._store_hits,
            )

    def stats_by_kind(self) -> Dict[str, CacheStats]:
        """Per-kind accounting (``entries`` is not tracked per kind: 0).

        The runner CLI's ``--json`` output and the service's ``/stats``
        endpoint both report this mapping, so the two surfaces agree on what
        "hit rate per kind" means.
        """
        with self._lock:
            return {
                kind: CacheStats(hits=h, misses=m, entries=0, store_hits=s)
                for kind, (h, m, s) in sorted(self._by_kind.items())
            }

    def clear(self) -> None:
        """Drop every entry and reset the accounting."""
        with self._lock:
            self._cells.clear()
            self._hits = 0
            self._misses = 0
            self._store_hits = 0
            self._by_kind.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return f"EvalCache(entries={s.entries}, hits={s.hits}, misses={s.misses})"
