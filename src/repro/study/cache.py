"""Memoization of the analytic evaluation pipeline.

A parameter sweep revisits the same ``(method, stencil, isa, unroll)`` cell
many times: every storage level of Figure 8 profiles the same five methods,
every core count of Figure 10 re-derives the same tiled profiles, Table 2 /
Table 3 replay Figure 8 / Figure 10 wholesale.  :class:`EvalCache` memoizes
the two expensive stages — :func:`repro.methods.build_profile` (schedule
analysis, counterpart planning) and the performance estimates
(:func:`repro.perfmodel.costmodel.estimate_performance` /
:func:`repro.parallel.model.multicore_estimate`) — keyed by the canonical
configuration hash of their inputs (:mod:`repro.study.hashing`), so repeated
cells are free.

The cache is thread-safe with single-flight semantics: when several study
workers ask for the same key concurrently, exactly one computes and the
rest wait for its result, which keeps hit/miss accounting exact and the
work deduplicated.  Cached values are shared, never copied — safe because
every producer in the pipeline is pure and every consumer treats its inputs
as read-only.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Sequence

from repro.machine import MachineSpec
from repro.study.hashing import freeze

__all__ = ["CacheStats", "EvalCache"]


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of an :class:`EvalCache`'s accounting.

    ``hits + misses`` equals the number of memoized calls served; ``entries``
    is the number of distinct keys currently held.
    """

    hits: int
    misses: int
    entries: int

    @property
    def calls(self) -> int:
        """Total memoized calls served (hits + misses)."""
        return self.hits + self.misses


class _Cell:
    """One cache slot with single-flight population."""

    __slots__ = ("ready", "value", "error")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class EvalCache:
    """Thread-safe memo table for profiles, estimates and folding reports.

    One cache instance is created per study run (or shared across runs and
    experiments by passing it explicitly); its lifetime bounds the validity
    of the keys, so plug-in methods registered mid-process cannot leak stale
    profiles between unrelated sweeps.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: Dict[Hashable, _Cell] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # core memoization
    # ------------------------------------------------------------------ #
    def memoize(self, kind: str, key_parts: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``(kind, key_parts)``, computing once.

        ``kind`` namespaces the key (``"profile"``, ``"estimate"``, ...);
        ``key_parts`` is frozen canonically, so equal configurations share a
        slot regardless of container identity.  Concurrent callers of the
        same key block until the single in-flight computation finishes
        (single-flight); a computation that raises releases the slot so a
        later call may retry.  The computing thread re-raises the original
        exception; concurrent waiters receive a fresh ``RuntimeError``
        chained to it (re-raising one exception instance from several
        threads would corrupt its traceback).
        """
        key = (kind, freeze(key_parts))
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = _Cell()
                self._cells[key] = cell
                self._misses += 1
                owner = True
            else:
                self._hits += 1
                owner = False
        if owner:
            try:
                cell.value = compute()
            except BaseException as exc:
                cell.error = exc
                with self._lock:
                    # Release the slot: the failure is reported to everyone
                    # currently waiting, but the key is computable again.
                    if self._cells.get(key) is cell:
                        del self._cells[key]
                raise
            finally:
                cell.ready.set()
            return cell.value
        cell.ready.wait()
        if cell.error is not None:
            raise RuntimeError(
                f"memoized {kind!r} computation failed in another thread: {cell.error!r}"
            ) from cell.error
        return cell.value

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def profile(
        self,
        method: str,
        spec: Any,
        isa: str = "avx2",
        m: int = 2,
        shifts_reuse: bool = True,
        **extra: Any,
    ) -> Any:
        """Memoized :func:`repro.methods.build_profile`.

        ``extra`` reaches richer profile builders (e.g. the SDSL baseline's
        split-tiling configuration) and participates in the key.
        """
        from repro.methods import build_profile

        return self.memoize(
            "profile",
            (method, spec, isa, m, shifts_reuse, extra),
            lambda: build_profile(
                method, spec, isa=isa, m=m, shifts_reuse=shifts_reuse, **extra
            ),
        )

    def estimate(
        self,
        profile: Any,
        npoints: int,
        time_steps: int,
        machine: MachineSpec,
        **kwargs: Any,
    ) -> Any:
        """Memoized single-core :func:`~repro.perfmodel.costmodel.estimate_performance`."""
        from repro.perfmodel.costmodel import estimate_performance

        return self.memoize(
            "estimate",
            (profile, npoints, time_steps, machine, kwargs),
            lambda: estimate_performance(
                profile, npoints=npoints, time_steps=time_steps, machine=machine, **kwargs
            ),
        )

    def multicore(
        self,
        profile: Any,
        grid_shape: Sequence[int],
        time_steps: int,
        machine: MachineSpec,
        cores: int,
        radius: int,
        tiling: Any = None,
        **kwargs: Any,
    ) -> Any:
        """Memoized :func:`repro.parallel.model.multicore_estimate`."""
        from repro.parallel.model import multicore_estimate

        grid_shape = tuple(grid_shape)
        return self.memoize(
            "multicore",
            (profile, grid_shape, time_steps, machine, cores, radius, tiling, kwargs),
            lambda: multicore_estimate(
                profile,
                grid_shape=grid_shape,
                time_steps=time_steps,
                machine=machine,
                cores=cores,
                radius=radius,
                tiling=tiling,
                **kwargs,
            ),
        )

    def folding(self, spec: Any, m: int) -> Any:
        """Memoized :func:`repro.core.folding.analyze_folding`."""
        from repro.core.folding import analyze_folding

        return self.memoize("folding", (spec, m), lambda: analyze_folding(spec, m))

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/entry counts (atomic snapshot)."""
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._cells))

    def clear(self) -> None:
        """Drop every entry and reset the accounting."""
        with self._lock:
            self._cells.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return f"EvalCache(entries={s.entries}, hits={s.hits}, misses={s.misses})"
