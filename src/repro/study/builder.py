"""Declarative parameter sweeps over compiled-plan configurations.

The paper's whole evaluation section is a grid of sweeps — method × stencil
× ISA × storage level × core count.  :func:`study` is the sweep counterpart
of :func:`repro.plan`: a fluent builder collects the axes, the target
machine and the per-cell metric, then :meth:`StudyBuilder.run` expands the
cross-product, fans the cells out over a worker pool (the same ordered
fan-out primitive the batch executor uses,
:func:`repro.parallel.executor.map_ordered`), memoizes the expensive
pipeline stages through an :class:`~repro.study.cache.EvalCache`, and
returns an immutable :class:`~repro.study.resultset.ResultSet`::

    import repro

    rs = (
        repro.study("mystudy")
        .over(method=repro.method_keys(), isa=("avx2", "avx512"))
        .on(repro.machine_for_isa("avx2"))
        .metric(lambda cell: {
            "method": cell["method"],
            "isa": cell["isa"],
            "gflops": cell.cache.estimate(
                cell.cache.profile(cell["method"], spec, isa=cell["isa"]),
                npoints=1 << 20, time_steps=1000, machine=cell.machine,
            ).gflops,
        })
        .run(workers=4)
    )

Axis order matters: the first ``over`` axis varies slowest (outermost loop),
exactly like nested ``for`` loops, so figure-shaped row orders fall out of
the axis declaration.  Because metrics and the evaluation pipeline are
pure, a run with ``workers > 1`` returns rows identical to the sequential
run — the harness's experiment tests assert this.
"""

from __future__ import annotations

import itertools
import time
from types import MappingProxyType
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.machine import MachineSpec
from repro.parallel.executor import map_ordered
from repro.study.cache import EvalCache
from repro.study.hashing import config_hash
from repro.study.resultset import Provenance, ResultSet

__all__ = ["StudyCell", "StudyBuilder", "study"]

#: A metric maps one cell to its result rows: a dict (one row), a sequence
#: of dicts (several rows) or ``None`` (cell not applicable — e.g. SDSL on a
#: benchmark the package does not support).
Metric = Callable[["StudyCell"], Any]


class StudyCell:
    """One point of a study's cross-product, handed to the metric function.

    Attributes
    ----------
    axes:
        Read-only mapping of axis name → this cell's value (also reachable
        via ``cell["name"]``).
    index:
        Position of the cell in evaluation order (0-based, after ``where``
        filtering).
    machine:
        The study's target :class:`~repro.machine.MachineSpec` (``None``
        for machine-independent studies).
    cache:
        The run's :class:`~repro.study.cache.EvalCache`; metrics should
        route ``profile``/``estimate``/``multicore``/``folding`` calls
        through it so repeated cells are free.
    """

    __slots__ = ("axes", "index", "machine", "cache")

    def __init__(
        self,
        axes: Mapping[str, Any],
        index: int,
        machine: Optional[MachineSpec],
        cache: EvalCache,
    ):
        self.axes = MappingProxyType(dict(axes))
        self.index = index
        self.machine = machine
        self.cache = cache

    def __getitem__(self, name: str) -> Any:
        return self.axes[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Axis value, or ``default`` when the axis does not exist."""
        return self.axes.get(name, default)

    def __repr__(self) -> str:
        return f"StudyCell(#{self.index}, {dict(self.axes)!r})"


class StudyBuilder:
    """Fluent configurator for a parameter sweep.

    Every setter returns the builder; nothing runs until :meth:`run`.
    """

    def __init__(self, name: str = "study"):
        self._name = str(name)
        self._axes: Dict[str, Tuple[Any, ...]] = {}
        self._machine: Optional[MachineSpec] = None
        self._metric: Optional[Metric] = None
        self._predicates: List[Callable[[Mapping[str, Any]], bool]] = []
        self._cache: Optional[EvalCache] = None
        self._workers: int = 1

    def over(self, **axes: Sequence[Any]) -> "StudyBuilder":
        """Add sweep axes; the first declared axis varies slowest.

        Each value is an iterable of the axis's levels.  Re-declaring an
        axis is an error (axis order defines row order, so silent overrides
        would silently reorder results).
        """
        for name, values in axes.items():
            if name in self._axes:
                raise ValueError(f"axis {name!r} is already declared")
            levels = tuple(values)
            if not levels:
                raise ValueError(f"axis {name!r} has no values")
            self._axes[name] = levels
        return self

    def on(self, machine: MachineSpec) -> "StudyBuilder":
        """Target the sweep at ``machine`` (any :class:`MachineSpec`)."""
        if not isinstance(machine, MachineSpec):
            raise TypeError("on() expects a MachineSpec")
        self._machine = machine
        return self

    def metric(self, fn: Metric) -> "StudyBuilder":
        """Set the per-cell metric: ``fn(cell) -> dict | [dict, ...] | None``."""
        if not callable(fn):
            raise TypeError("metric() expects a callable")
        self._metric = fn
        return self

    def where(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "StudyBuilder":
        """Keep only cells whose axis mapping satisfies ``predicate``.

        Several ``where`` clauses conjoin.  Filtering happens before
        evaluation, so infeasible combinations cost nothing.
        """
        if not callable(predicate):
            raise TypeError("where() expects a callable")
        self._predicates.append(predicate)
        return self

    def cache(self, cache: Optional[EvalCache]) -> "StudyBuilder":
        """Share an existing :class:`EvalCache` (e.g. across several studies).

        ``None`` (the default) gives every :meth:`run` a fresh cache.
        """
        if cache is not None and not isinstance(cache, EvalCache):
            raise TypeError("cache() expects an EvalCache or None")
        self._cache = cache
        return self

    def workers(self, n: int) -> "StudyBuilder":
        """Default worker-pool width for :meth:`run` (overridable per run)."""
        n = int(n)
        if n < 1:
            raise ValueError("workers must be >= 1")
        self._workers = n
        return self

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _expand_cells(self) -> List[Dict[str, Any]]:
        """Cross-product of the axes, in declaration order, after filtering."""
        names = list(self._axes)
        cells = []
        for combo in itertools.product(*(self._axes[n] for n in names)):
            axes = dict(zip(names, combo))
            if all(pred(axes) for pred in self._predicates):
                cells.append(axes)
        return cells

    def run(self, workers: Optional[int] = None) -> ResultSet:
        """Evaluate every cell and return the :class:`ResultSet`.

        ``workers`` overrides the builder default; any value returns rows
        identical to the sequential run because metrics are pure and the
        memoization cache is single-flight.
        """
        if self._metric is None:
            raise ValueError("study has no metric; call .metric(fn) before .run()")
        if not self._axes:
            raise ValueError("study has no axes; call .over(...) before .run()")
        pool_width = self._workers if workers is None else int(workers)
        if pool_width < 1:
            raise ValueError("workers must be >= 1")
        cache = self._cache if self._cache is not None else EvalCache()
        stats_before = cache.stats

        started = time.perf_counter()
        combos = self._expand_cells()
        cells = [
            StudyCell(axes, index, self._machine, cache)
            for index, axes in enumerate(combos)
        ]
        results = map_ordered(self._metric, cells, pool_width)

        rows: List[Mapping[str, Any]] = []
        for result in results:
            if result is None:
                continue
            if isinstance(result, Mapping):
                rows.append(result)
            else:
                for row in result:
                    if not isinstance(row, Mapping):
                        raise TypeError(
                            "metric must return a mapping, a sequence of mappings or None"
                        )
                    rows.append(row)
        elapsed = time.perf_counter() - started

        stats_after = cache.stats
        provenance = Provenance(
            study=self._name,
            machine=self._machine.name if self._machine is not None else None,
            config_hash=config_hash(
                self._name, self._axes, self._machine, self._metric, self._predicates
            ),
            cells=len(cells),
            rows=len(rows),
            workers=pool_width,
            wall_seconds=elapsed,
            cache_hits=stats_after.hits - stats_before.hits,
            cache_misses=stats_after.misses - stats_before.misses,
        )
        return ResultSet(rows, provenance)


def study(name: str = "study") -> StudyBuilder:
    """Start configuring a declarative parameter sweep named ``name``."""
    return StudyBuilder(name)
