"""Canonical freezing and git-style hashing of sweep configurations.

The study memoization cache (:mod:`repro.study.cache`) and the provenance
record of a :class:`~repro.study.resultset.ResultSet` both need a *stable*
identity for arbitrary configuration values: stencil specs (which carry
numpy kernels), machine descriptions, tiling configurations, method
profiles, plain scalars and containers of all of these.  :func:`freeze`
maps any such value onto a canonical, hashable, order-preserving structure,
and :func:`config_hash` digests that structure into a short git-style hex
string.

Two values that compare equal as configurations freeze to the same
structure; values that differ anywhere (a kernel weight, a cache size, an
unroll factor) hash differently.  Callables are identified by their
qualified name — good enough for the library's deterministic post-rules and
metric functions, which is the only place callables enter a cache key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from typing import Any, Hashable

import numpy as np

#: Length of the hex digest returned by :func:`config_hash` (git-style short
#: object id).
HASH_LENGTH = 12


def freeze(value: Any) -> Hashable:
    """Return a canonical hashable structure identifying ``value``.

    Supported inputs: ``None``, booleans, numbers, strings, bytes, enums,
    numpy scalars and arrays, dataclasses (frozen or not — including
    :class:`~repro.stencils.spec.StencilSpec`,
    :class:`~repro.machine.MachineSpec`,
    :class:`~repro.perfmodel.profiles.MethodProfile` and the tiling
    configurations), mappings, sequences, sets and callables.  Unknown
    objects fall back to ``repr`` — stable within a process, which is the
    cache's lifetime.
    """
    if value is None or isinstance(value, (bool, int, str, bytes)):
        return value
    if isinstance(value, float):
        # Normalise -0.0 so equal configurations freeze identically.
        return value + 0.0
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__name__, value.name)
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        return ("ndarray", contiguous.shape, contiguous.dtype.str, contiguous.tobytes())
    if isinstance(value, np.generic):
        return ("npscalar", value.dtype.str, value.item())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = tuple((f.name, freeze(getattr(value, f.name))) for f in dataclasses.fields(value))
        return ("dataclass", type(value).__name__, fields)
    if isinstance(value, dict):
        # Sort by the frozen key's repr: two dicts that compare equal freeze
        # identically regardless of insertion order, which is what makes the
        # hash usable as a cross-process request/store key (JSON parsers and
        # callers do not agree on key order).
        items = tuple(
            sorted(((freeze(k), freeze(v)) for k, v in value.items()), key=lambda kv: repr(kv[0]))
        )
        return ("dict", items)
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(freeze(v) for v in value))
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted(map(repr, value))))
    if callable(value):
        return (
            "callable",
            getattr(value, "__module__", ""),
            getattr(value, "__qualname__", repr(value)),
        )
    return ("repr", repr(value))


def config_hash(*parts: Any) -> str:
    """Digest ``parts`` into a short git-style hex identifier.

    The digest is deterministic across processes for everything
    :func:`freeze` canonicalises structurally (numbers, strings, arrays,
    dataclasses, containers); it is what the study API stamps into
    :class:`~repro.study.resultset.Provenance` so two runs of the same sweep
    on the same machine description carry the same configuration id.
    """
    digest = hashlib.sha1(repr(freeze(parts)).encode("utf-8")).hexdigest()
    return digest[:HASH_LENGTH]
