"""repro.study — declarative experiment sweeps over the evaluation pipeline.

The sweep counterpart of the compile-once/run-many plan API: declare axes
with :meth:`~repro.study.builder.StudyBuilder.over`, target a machine with
:meth:`~repro.study.builder.StudyBuilder.on`, attach a per-cell metric, and
:meth:`~repro.study.builder.StudyBuilder.run` fans the cross-product out
over a worker pool with memoized profiles/estimates and returns an
immutable, queryable :class:`~repro.study.resultset.ResultSet`.

Every figure and table of :mod:`repro.harness.experiments` is a thin study
definition; user code composes new sweeps the same way.
"""

from repro.study.builder import StudyBuilder, StudyCell, study
from repro.study.cache import CacheStats, EvalCache
from repro.study.hashing import config_hash, freeze
from repro.study.resultset import Provenance, ResultSet

__all__ = [
    "StudyBuilder",
    "StudyCell",
    "study",
    "CacheStats",
    "EvalCache",
    "config_hash",
    "freeze",
    "Provenance",
    "ResultSet",
]
