"""Immutable, queryable results of a study sweep.

A :class:`ResultSet` is what :meth:`repro.study.builder.StudyBuilder.run`
returns: an ordered, read-only collection of row mappings plus a
:class:`Provenance` record (machine, git-style configuration hash, timings,
cache accounting).  The query surface mirrors how the paper's artefacts are
consumed — select rows (:meth:`ResultSet.filter`), pull one column
(:meth:`ResultSet.series`), arrange a figure-style matrix
(:meth:`ResultSet.pivot`), find a winner (:meth:`ResultSet.best`) and
serialise everything (:meth:`ResultSet.to_json`).

Rows are exposed as read-only mapping views and every query returns a *new*
``ResultSet`` sharing the provenance, so derived views stay traceable to
the sweep that produced them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Provenance", "ResultSet"]


@dataclass(frozen=True)
class Provenance:
    """Where a :class:`ResultSet` came from and what producing it cost.

    Attributes
    ----------
    study:
        Name given to the study.
    machine:
        Name of the :class:`~repro.machine.MachineSpec` the sweep targeted
        (``None`` for machine-independent studies).
    config_hash:
        Git-style short hash of the full sweep configuration (axes, machine,
        metric) — two runs of the same sweep carry the same id.
    cells:
        Number of cross-product cells evaluated (after ``where`` filtering).
    rows:
        Number of result rows the cells produced.
    workers:
        Worker-pool width the sweep ran with (1 = sequential).
    wall_seconds:
        Wall-clock time of the whole sweep.
    cache_hits / cache_misses:
        Memoization accounting accumulated *during this run* — repeated
        cells show up as hits.
    """

    study: str
    machine: Optional[str]
    config_hash: str
    cells: int
    rows: int
    workers: int
    wall_seconds: float
    cache_hits: int
    cache_misses: int


def _freeze_rows(rows: Sequence[Mapping[str, Any]]) -> Tuple[Mapping[str, Any], ...]:
    """Copy ``rows`` into read-only mapping views (defensive + immutable)."""
    return tuple(MappingProxyType(dict(row)) for row in rows)


class ResultSet:
    """Ordered, immutable rows of one sweep plus provenance.

    Supports ``len``, iteration, indexing and the query methods below; all
    derived views share the original :class:`Provenance`.
    """

    __slots__ = ("_rows", "_provenance", "_sealed")

    def __init__(self, rows: Sequence[Mapping[str, Any]], provenance: Provenance):
        self._rows = _freeze_rows(rows)
        self._provenance = provenance
        self._sealed = True

    def __setattr__(self, name: str, value: Any) -> None:
        if getattr(self, "_sealed", False):
            raise AttributeError("ResultSet is immutable; derive a new one via filter()")
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    @property
    def rows(self) -> Tuple[Mapping[str, Any], ...]:
        """The rows, in evaluation order, as read-only mappings."""
        return self._rows

    @property
    def provenance(self) -> Provenance:
        """Provenance of the sweep that produced these rows."""
        return self._provenance

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Mapping[str, Any]]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> Mapping[str, Any]:
        return self._rows[index]

    def __repr__(self) -> str:
        p = self._provenance
        return (
            f"ResultSet({len(self._rows)} rows, study={p.study!r}, "
            f"machine={p.machine!r}, config={p.config_hash!r})"
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def filter(
        self,
        predicate: Optional[Callable[[Mapping[str, Any]], bool]] = None,
        **criteria: Any,
    ) -> "ResultSet":
        """Rows matching all ``column=value`` criteria (and ``predicate``).

        Returns a new :class:`ResultSet` sharing this one's provenance.
        """
        selected = []
        for row in self._rows:
            if criteria and not all(row.get(k) == v for k, v in criteria.items()):
                continue
            if predicate is not None and not predicate(row):
                continue
            selected.append(row)
        return ResultSet(selected, self._provenance)

    def series(self, key: str) -> List[Any]:
        """Column ``key`` across all rows (missing values become ``None``)."""
        return [row.get(key) for row in self._rows]

    def pivot(self, index: str, columns: str, value: str) -> Dict[Any, Dict[Any, Any]]:
        """Arrange ``value`` as a matrix: one row per ``index``, one column per ``columns``.

        Insertion order of both axes follows first appearance in the rows, so
        a pivot of a figure study reads exactly like the paper's figure.
        """
        table: Dict[Any, Dict[Any, Any]] = {}
        for row in self._rows:
            table.setdefault(row.get(index), {})[row.get(columns)] = row.get(value)
        return table

    def best(
        self,
        value: str,
        by: Optional[str] = None,
        mode: str = "max",
    ) -> Any:
        """The row maximising (or minimising) column ``value``.

        With ``by`` given, returns an ordered dict mapping each distinct
        ``by`` value to its best row — e.g. the winning method per storage
        level.  Rows without the ``value`` column are ignored; raises
        ``ValueError`` when nothing qualifies.
        """
        if mode not in ("max", "min"):
            raise ValueError("mode must be 'max' or 'min'")
        better = (lambda a, b: a > b) if mode == "max" else (lambda a, b: a < b)
        if by is None:
            winner: Optional[Mapping[str, Any]] = None
            for row in self._rows:
                v = row.get(value)
                if v is None:
                    continue
                if winner is None or better(v, winner.get(value)):
                    winner = row
            if winner is None:
                raise ValueError(f"no row carries a value for {value!r}")
            return winner
        winners: Dict[Any, Mapping[str, Any]] = {}
        for row in self._rows:
            v = row.get(value)
            if v is None:
                continue
            group = row.get(by)
            current = winners.get(group)
            if current is None or better(v, current.get(value)):
                winners[group] = row
        if not winners:
            raise ValueError(f"no row carries a value for {value!r}")
        return winners

    # ------------------------------------------------------------------ #
    # serialisation / interop
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data representation (provenance + copied rows)."""
        return {
            "provenance": asdict(self._provenance),
            "rows": [dict(row) for row in self._rows],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON document with the provenance and every row."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_experiment(self, name: str, description: str, notes: str = "") -> Any:
        """Wrap the rows in a legacy :class:`~repro.harness.experiments.ExperimentResult`.

        Rows are copied into plain mutable dicts, matching what the
        benchmark suite historically consumed.  Imported lazily to keep the
        study layer free of harness dependencies.
        """
        from repro.harness.experiments import ExperimentResult

        return ExperimentResult(
            name=name,
            description=description,
            rows=[dict(row) for row in self._rows],
            notes=notes,
        )
