"""The paper's local transpose layout (Section 2.2, Figure 1).

Every aligned block of ``vl * vl`` contiguous elements of the innermost
dimension is viewed as a ``vl × vl`` matrix (rows = runs of ``vl``
consecutive elements) and transposed in place.  After the transform, the
``j``-th aligned SIMD vector of a block holds the elements whose in-block
offset is congruent to ``j`` mod ``vl`` — i.e. column ``j`` of the matrix
view.  Two properties follow:

* the elements of one vector lie within ``vl² `` positions of each other in
  the original array (data locality is preserved for cache tiling), and
* the left/right dependence vectors of a whole vector set can be assembled
  with one blend + one permute each (Figure 2), instead of one unaligned load
  per stencil point (multiple-loads) or a chain of inter-vector permutes
  (data reorganisation).

The transform is an involution (applying it twice restores the original
layout), which the paper exploits by storing results in the alternate array
with the inverse transform fused into the final "weighted transpose".

Trailing elements that do not fill a complete ``vl²`` block are left in
their original order; the execution schedules treat that tail scalarly, as a
real implementation would.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def _check_vl(vl: int) -> None:
    if vl < 2:
        raise ValueError("vector length must be at least 2")


def to_transpose_layout(array: np.ndarray, vl: int) -> np.ndarray:
    """Return ``array`` with every ``vl²`` block of the innermost axis transposed.

    Parameters
    ----------
    array:
        1-D, 2-D or 3-D array; the transform is applied independently to each
        row of the innermost (contiguous) dimension.
    vl:
        SIMD vector length in elements (4 for AVX-2 doubles, 8 for AVX-512).

    Returns
    -------
    numpy.ndarray
        A new array of the same shape in transpose layout.
    """
    _check_vl(vl)
    arr = np.asarray(array, dtype=np.float64)
    out = arr.copy()
    n = arr.shape[-1]
    block = vl * vl
    nblocks = n // block
    if nblocks == 0:
        return out
    body = out[..., : nblocks * block]
    shape = body.shape[:-1] + (nblocks, vl, vl)
    transposed = body.reshape(shape).swapaxes(-1, -2).reshape(body.shape)
    out[..., : nblocks * block] = transposed
    return out


def from_transpose_layout(array: np.ndarray, vl: int) -> np.ndarray:
    """Inverse of :func:`to_transpose_layout`.

    Because the per-block transpose is an involution, this simply applies the
    same transform again; the function exists for readability at call sites.
    """
    return to_transpose_layout(array, vl)


def transpose_layout_index(i: int, vl: int, n: int) -> int:
    """Map the original index ``i`` to its position in the transpose layout.

    Indices in the incomplete tail block map to themselves.

    Parameters
    ----------
    i:
        Original (row-major) index within the innermost dimension.
    vl:
        Vector length.
    n:
        Length of the innermost dimension.
    """
    _check_vl(vl)
    if not 0 <= i < n:
        raise IndexError(f"index {i} out of range for length {n}")
    block = vl * vl
    nblocks = n // block
    b, r = divmod(i, block)
    if b >= nblocks:
        return i
    row, col = divmod(r, vl)
    return b * block + col * vl + row


def vector_lane_indices(vector_index: int, vl: int, n: int) -> List[int]:
    """Original indices of the lanes of aligned vector ``vector_index``.

    Vector ``k`` occupies layout positions ``[k*vl, (k+1)*vl)``.  In a full
    block this corresponds to original indices ``base + j*vl + (k mod vl)``
    — the column of the matrix view — which is what makes the assembled
    neighbour construction of Figure 2 possible.
    """
    _check_vl(vl)
    start = vector_index * vl
    if start + vl > n:
        raise IndexError("vector extends past the end of the array")
    block = vl * vl
    nblocks = n // block
    b = start // block
    if b >= nblocks:
        return list(range(start, start + vl))
    col = (start - b * block) // vl
    return [b * block + j * vl + col for j in range(vl)]


def vector_element_spread(vl: int, n: int) -> int:
    """Maximum original-index distance between two lanes of one aligned vector.

    For the transpose layout this is ``vl * (vl - 1)`` (independent of the
    array length), versus ``(vl - 1) * n / vl`` for DLT — the quantitative
    form of the paper's locality argument.
    """
    _check_vl(vl)
    if n < vl * vl:
        return vl - 1
    return vl * (vl - 1)


def blocks_in(n: int, vl: int) -> Tuple[int, int]:
    """Return ``(complete_blocks, tail_elements)`` for an innermost length ``n``."""
    _check_vl(vl)
    block = vl * vl
    return n // block, n % block
