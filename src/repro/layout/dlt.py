"""Dimension-lifted transpose (DLT) layout — the Henretty et al. baseline.

DLT views the innermost dimension of length ``N`` as a ``vl × (N / vl)``
matrix filled row-major (row ``r`` holds elements ``r·N/vl … (r+1)·N/vl−1``)
and stores its transpose: layout position ``j·vl + r`` holds original element
``r·(N/vl) + j``.  An aligned vector at position ``j·vl`` therefore holds the
``vl`` elements ``{j, j + N/vl, j + 2N/vl, …}``:

* stencil neighbours (``±1`` in the original index) are simply the adjacent
  aligned vectors, so the steady-state inner loop needs **no** shuffles and
  no unaligned loads — the property that made DLT a milestone;
* but the lanes of one vector are ``N/vl`` elements apart, which destroys the
  spatial locality that cache tiling relies on, and the transform itself is a
  global out-of-place pass over the array executed before and after the time
  loop (plus boundary-column fixups every step).

The functions here implement the layout transform and its index mapping for
the innermost axis of 1-D/2-D/3-D arrays; the execution schedule that
consumes it lives in :mod:`repro.baselines.dlt`.
"""

from __future__ import annotations

from typing import List

import numpy as np


def _check(n: int, vl: int) -> None:
    if vl < 2:
        raise ValueError("vector length must be at least 2")
    if n % vl != 0:
        raise ValueError(
            f"DLT requires the innermost extent ({n}) to be divisible by the vector length ({vl})"
        )


def to_dlt_layout(array: np.ndarray, vl: int) -> np.ndarray:
    """Return ``array`` with its innermost axis stored in DLT layout.

    Parameters
    ----------
    array:
        1-D, 2-D or 3-D array whose innermost extent is divisible by ``vl``.
    vl:
        SIMD vector length in elements.
    """
    arr = np.asarray(array, dtype=np.float64)
    n = arr.shape[-1]
    _check(n, vl)
    seg = n // vl
    shape = arr.shape[:-1] + (vl, seg)
    return arr.reshape(shape).swapaxes(-1, -2).reshape(arr.shape).copy()


def from_dlt_layout(array: np.ndarray, vl: int) -> np.ndarray:
    """Inverse of :func:`to_dlt_layout`."""
    arr = np.asarray(array, dtype=np.float64)
    n = arr.shape[-1]
    _check(n, vl)
    seg = n // vl
    shape = arr.shape[:-1] + (seg, vl)
    return arr.reshape(shape).swapaxes(-1, -2).reshape(arr.shape).copy()


def dlt_index(i: int, vl: int, n: int) -> int:
    """Map original index ``i`` to its position in the DLT layout."""
    _check(n, vl)
    if not 0 <= i < n:
        raise IndexError(f"index {i} out of range for length {n}")
    seg = n // vl
    r, j = divmod(i, seg)
    return j * vl + r


def dlt_vector_lane_indices(vector_index: int, vl: int, n: int) -> List[int]:
    """Original indices of the lanes of aligned DLT vector ``vector_index``."""
    _check(n, vl)
    seg = n // vl
    if not 0 <= vector_index < seg:
        raise IndexError("vector index out of range")
    return [r * seg + vector_index for r in range(vl)]


def dlt_vector_element_spread(vl: int, n: int) -> int:
    """Maximum original-index distance between two lanes of one DLT vector.

    ``(vl - 1) * N / vl`` — proportional to the array length, which is the
    locality drawback the paper's transpose layout removes.
    """
    _check(n, vl)
    return (vl - 1) * (n // vl)
