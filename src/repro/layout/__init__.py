"""Data-layout transformations.

Two vectorization-oriented layouts are implemented:

* :mod:`repro.layout.transpose_layout` — the paper's contribution: a *local*
  ``vl × vl`` transpose of every aligned block of ``vl²`` contiguous
  elements.  Elements of one SIMD vector stay within ``vl²`` positions of
  each other, so cache blocking still works, while neighbour access needs
  only two data-organisation instructions per vector set.
* :mod:`repro.layout.dlt` — the dimension-lifted transpose (DLT) of Henretty
  et al., the main prior-work baseline: a *global* transpose of the
  ``vl × N/vl`` matrix view of the innermost dimension.  It removes alignment
  conflicts entirely but scatters the elements of one vector ``N/vl`` apart
  and requires an out-of-place full-array transform before and after the
  time loop.

Both transforms are exposed as pure NumPy functions (operating on the
innermost axis of 1-D/2-D/3-D arrays) plus index-mapping helpers used by the
cache-locality analyses and tests.
"""

from repro.layout.transpose_layout import (
    to_transpose_layout,
    from_transpose_layout,
    transpose_layout_index,
    vector_lane_indices,
    vector_element_spread,
)
from repro.layout.dlt import (
    to_dlt_layout,
    from_dlt_layout,
    dlt_index,
    dlt_vector_lane_indices,
    dlt_vector_element_spread,
)

__all__ = [
    "to_transpose_layout",
    "from_transpose_layout",
    "transpose_layout_index",
    "vector_lane_indices",
    "vector_element_spread",
    "to_dlt_layout",
    "from_dlt_layout",
    "dlt_index",
    "dlt_vector_lane_indices",
    "dlt_vector_element_spread",
]
