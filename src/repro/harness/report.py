"""Rendering of experiment results.

Turns the row dictionaries produced by :mod:`repro.harness.experiments` into
aligned text tables suitable for the terminal and for pasting into
``EXPERIMENTS.md``.  The formatting is intentionally stable (fixed column
order, fixed float precision) so diffs of regenerated experiment output stay
readable.
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.experiments import ExperimentResult
from repro.utils.tables import format_table


def format_experiment(result: ExperimentResult, float_fmt: str = ".3f") -> str:
    """Render ``result`` as a titled text table."""
    title = f"== {result.name}: {result.description}"
    if result.notes:
        title += f"  [{result.notes}]"
    if not result.rows:
        return title + "\n(no rows)\n"
    headers = list(result.rows[0].keys())
    return format_table(result.rows, headers=headers, float_fmt=float_fmt, title=title)


def pivot_rows(
    result: ExperimentResult,
    index: str,
    columns: str,
    value: str,
    float_fmt: str = ".3f",
) -> str:
    """Render a pivoted view (one row per ``index``, one column per ``columns``).

    Useful for the figure-style experiments whose natural presentation is a
    matrix (e.g. Figure 8: storage level × method).
    """
    column_values: List[object] = []
    index_values: List[object] = []
    cell: Dict[object, Dict[object, object]] = {}
    for row in result.rows:
        i, c = row.get(index), row.get(columns)
        if i not in index_values:
            index_values.append(i)
        if c not in column_values:
            column_values.append(c)
        cell.setdefault(i, {})[c] = row.get(value)
    table_rows = []
    for i in index_values:
        entry: Dict[str, object] = {index: i}
        for c in column_values:
            entry[str(c)] = cell.get(i, {}).get(c, "")
        table_rows.append(entry)
    headers = [index] + [str(c) for c in column_values]
    title = f"== {result.name} ({value} by {index} × {columns})"
    return format_table(table_rows, headers=headers, float_fmt=float_fmt, title=title)
