"""The paper's evaluation experiments, as declarative studies.

Each function reproduces one table or figure of Section 4 and returns an
:class:`ExperimentResult` whose rows mirror the series of the original
artefact.  Absolute GFLOP/s values come from the analytic performance model
(the substrate substitution documented in ``DESIGN.md``); the assertions the
benchmark suite makes are about the *shape* of the results — method
orderings, crossover points, scaling behaviour — which is what a
reproduction on a different substrate can meaningfully claim.

Every experiment is a thin :mod:`repro.study` definition: the sweep axes
(method × storage level × ISA × core count × benchmark) are declared on the
study builder, the per-cell metric routes the profile/estimate pipeline
through the study's memoization cache, and the resulting
:class:`~repro.study.resultset.ResultSet` is wrapped in the legacy
:class:`ExperimentResult` row format the benchmark suite consumes.  All
experiments accept

* ``machine=`` — any :class:`~repro.machine.MachineSpec` (the paper's Xeon
  Gold 6140 stays the default); the multicore experiments derive the
  AVX-512 variant via :func:`repro.machine.isa_variant` and sweep core
  counts derived from the target machine's topology
  (:func:`repro.machine.scalability_cores`);
* ``workers=`` — worker-pool width for the sweep fan-out (results are
  identical to the sequential run for any value);
* ``cache=`` — a shared :class:`~repro.study.cache.EvalCache`, so repeated
  cells across experiments (Table 2 replays Figure 8, Table 3 replays
  Figure 10) are free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.analytic import problem_size_for_level, sweep_reuse_level
from repro.machine import (
    MachineSpec,
    XEON_GOLD_6140_AVX2,
    isa_variant,
    machine_for_isa,
    scalability_cores,
)
from repro.perfmodel.profiles import MethodProfile
from repro.registry import label_for, method_keys
from repro.stencils.library import BENCHMARKS, BenchmarkCase, get_benchmark
from repro.study import EvalCache, StudyCell, study
from repro.tiling.splittiling import SplitTilingConfig
from repro.tiling.tessellate import TessellationConfig

#: Storage levels of Figure 8, in the order the paper plots them.
STORAGE_LEVELS = ("L1", "L2", "L3", "Memory")

#: Methods of the sequential block-free comparison (Figure 8 / Table 2) —
#: the registry's figure line-up, in the order the paper plots it.
SEQUENTIAL_METHODS = method_keys()

#: Core counts swept by the scalability experiment (Figure 10) on the
#: paper's machine; a non-default ``machine=`` derives its own sweep from
#: its topology via :func:`repro.machine.scalability_cores`.
SCALABILITY_CORES = scalability_cores(XEON_GOLD_6140_AVX2)

#: Benchmarks the SDSL package does not support (Table 3 shows "-").
SDSL_UNSUPPORTED = frozenset({"apop", "game-of-life", "gb"})

#: Series of the multicore experiments (Figure 9 / Figure 10 / Table 3), in
#: the order the paper plots them.
MULTICORE_SERIES = ("sdsl", "tessellation", "transpose", "folded", "folded_avx512")

#: Display label of the paper's "gains with AVX-512" series.
AVX512_LABEL = "Our (2 steps, AVX-512)"


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure plus provenance metadata."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def series(self, key: str) -> List[object]:
        """Column ``key`` across all rows (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all ``column=value`` criteria."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out

    def to_dict(self) -> Dict[str, object]:
        """Plain-data representation (for ``--json`` serialisation)."""
        return {
            "name": self.name,
            "description": self.description,
            "notes": self.notes,
            "rows": [dict(row) for row in self.rows],
        }


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _resolve_machine(isa: Optional[str], machine: Optional[MachineSpec]) -> MachineSpec:
    """The machine an ISA-parameterised sequential experiment targets.

    ``machine=None`` keeps the paper's Xeon Gold 6140 in the requested ISA
    configuration; an explicit machine is re-derived for the requested ISA
    (a no-op when it already matches).
    """
    if machine is None:
        return machine_for_isa(isa or "avx2")
    if isa is None:
        return machine
    return isa_variant(machine, isa)


def _tiling_from_case(case: BenchmarkCase, spec_radius: int) -> TessellationConfig:
    """Derive the tessellation configuration from a Table 1 blocking entry."""
    dims = len(case.problem_size)
    blocking = case.blocking_size
    spatial = list(blocking[:dims])
    while len(spatial) < dims:
        spatial.append(blocking[-1])
    if len(blocking) > dims:
        time_range = int(blocking[dims])
    else:
        time_range = max(1, min(spatial) // (2 * spec_radius))
    # Clamp the time range so every block satisfies the tessellation
    # feasibility constraint block >= 2 * r * TR.
    feasible = min(b // (2 * spec_radius) for b in spatial)
    time_range = max(1, min(time_range, feasible))
    return TessellationConfig(block_sizes=tuple(spatial), time_range=time_range)


#: Largest time-block depth credited to the SDSL baseline.  Split tiling on
#: the DLT layout pays boundary-column fixups on every tile face at every
#: time level, which keeps its published configurations shallow compared to
#: the tessellation's time ranges.
SDSL_MAX_TIME_RANGE = 8


def _sdsl_config(case: BenchmarkCase, spec_radius: int) -> SplitTilingConfig:
    """Split-tiling configuration of the SDSL baseline for one benchmark."""
    tiling = _tiling_from_case(case, spec_radius)
    return SplitTilingConfig(
        block_size=tiling.block_sizes[0] or case.problem_size[0],
        time_range=min(tiling.time_range, SDSL_MAX_TIME_RANGE),
    )


def _series_inputs(
    case: BenchmarkCase,
    series: str,
    machine_avx2: MachineSpec,
    machine_avx512: MachineSpec,
    cache: EvalCache,
) -> Optional[Tuple[MethodProfile, MachineSpec, Optional[TessellationConfig], str, str]]:
    """Resolve one multicore series for ``case``: profile, machine, tiling, label, isa.

    Returns ``None`` for combinations the paper marks "-" (SDSL on the
    benchmarks the package does not support).  Profiles are memoized through
    ``cache``, so the same series resolved for many core counts is free.
    """
    spec = case.spec
    radius = spec.radius
    tiling = _tiling_from_case(case, radius)
    if series == "sdsl":
        if case.key in SDSL_UNSUPPORTED:
            return None
        profile = cache.profile(
            "sdsl",
            spec,
            isa="avx2",
            config=_sdsl_config(case, radius),
            grid_shape=case.problem_size,
            machine=machine_avx2,
            hybrid_blocks=tiling.block_sizes,
        )
        # Split tiling's temporal reuse is baked into the SDSL profile, so
        # no tessellation config is attached on top.
        return profile, machine_avx2, None, label_for("sdsl"), "avx2"
    if series == "tessellation":
        profile = cache.profile("data_reorg", spec, isa="avx2")
        return profile, machine_avx2, tiling, label_for("tessellation"), "avx2"
    if series == "transpose":
        profile = cache.profile("transpose", spec, isa="avx2")
        return profile, machine_avx2, tiling, label_for("transpose"), "avx2"
    if series == "folded":
        profile = cache.profile("folded", spec, isa="avx2", m=2)
        return profile, machine_avx2, tiling, label_for("folded"), "avx2"
    if series == "folded_avx512":
        profile = cache.profile("folded", spec, isa="avx512", m=2)
        return profile, machine_avx512, tiling, AVX512_LABEL, "avx512"
    raise KeyError(f"unknown multicore series {series!r}")


def _multicore_machines(
    machine: Optional[MachineSpec],
) -> Tuple[MachineSpec, MachineSpec]:
    """Both ISA variants of the multicore experiments' target machine.

    Each variant is derived from the caller's spec directly, so passing an
    AVX-512 (or AVX-2) machine keeps that exact spec for its own series —
    identity matters for cache keys and provenance.
    """
    base = machine if machine is not None else machine_for_isa("avx2")
    return isa_variant(base, "avx2"), isa_variant(base, "avx512")


# --------------------------------------------------------------------------- #
# Figure 8 — sequential block-free performance across storage levels
# --------------------------------------------------------------------------- #
def figure8(
    isa: Optional[str] = None,
    time_steps_values: Sequence[int] = (1000, 10000),
    benchmark: str = "1d-heat",
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Sequential block-free comparison of the five vectorization methods.

    For each storage level a problem size resident in that level is chosen
    (as the paper does — the levels come from the target machine's own cache
    hierarchy) and every method's single-core performance is estimated
    without any spatial/temporal blocking, for both total time-step counts
    the paper examines.
    """
    machine = _resolve_machine(isa, machine)
    isa = machine.isa
    case = get_benchmark(benchmark)
    spec = case.spec
    description = (
        "Absolute performance (GFLOP/s) of the vectorization methods in "
        "single-thread blocking-free runs, by storage level"
    )
    notes = f"stencil={spec.name}, isa={isa}"
    if not tuple(time_steps_values):
        # An empty selection is a legal (empty) sweep, not an error.
        return ExperimentResult(name="figure8", description=description, notes=notes)

    def metric(cell: StudyCell) -> Dict[str, object]:
        npoints = problem_size_for_level(cell.machine, cell["level"], bytes_per_point=16.0)
        profile = cell.cache.profile(cell["method"], spec, isa=isa, m=2)
        est = cell.cache.estimate(
            profile, npoints=npoints, time_steps=cell["time_steps"], machine=cell.machine
        )
        return {
            "time_steps": cell["time_steps"],
            "level": cell["level"],
            "method": cell["method"],
            "label": label_for(cell["method"]),
            "npoints": npoints,
            "gflops": est.gflops,
            "bound": est.bound,
        }

    result = (
        study("figure8")
        .over(
            time_steps=tuple(time_steps_values),
            level=STORAGE_LEVELS,
            method=SEQUENTIAL_METHODS,
        )
        .on(machine)
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return result.to_experiment(name="figure8", description=description, notes=notes)


# --------------------------------------------------------------------------- #
# Table 2 — relative improvements per storage level
# --------------------------------------------------------------------------- #
def table2(
    isa: Optional[str] = None,
    benchmark: str = "1d-heat",
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Relative improvement of every method over multiple loads, per level.

    Reproduces Table 2: one row per storage level plus the mean row, with
    multiple loads normalised to 1.00x in every row.
    """
    base = figure8(
        isa=isa,
        time_steps_values=(1000,),
        benchmark=benchmark,
        machine=machine,
        workers=workers,
        cache=cache,
    )
    result = ExperimentResult(
        name="table2",
        description="Performance improvements relative to the multiple-loads method",
        notes=base.notes,
    )
    ratios_per_method: Dict[str, List[float]] = {m: [] for m in SEQUENTIAL_METHODS}
    for level in STORAGE_LEVELS:
        rows = base.filter(level=level, time_steps=1000)
        by_method = {row["method"]: row["gflops"] for row in rows}
        reference = by_method["multiple_loads"]
        entry: Dict[str, object] = {"level": level}
        for method in SEQUENTIAL_METHODS:
            ratio = by_method[method] / reference
            entry[method] = ratio
            ratios_per_method[method].append(ratio)
        result.rows.append(entry)
    mean_row: Dict[str, object] = {"level": "Mean"}
    for method in SEQUENTIAL_METHODS:
        mean_row[method] = float(np.mean(ratios_per_method[method]))
    result.rows.append(mean_row)
    return result


# --------------------------------------------------------------------------- #
# Figure 9 — multicore cache-blocking performance and speedups
# --------------------------------------------------------------------------- #
def figure9(
    cores: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Multicore cache-blocking comparison over the nine benchmarks.

    For every benchmark of Table 1 the SDSL baseline, the tessellation
    baseline, our transpose-layout method and our 2-step folded method are
    evaluated with AVX-2, plus the folded method with AVX-512 (the paper's
    "gains with AVX-512" series).  Speedups are reported relative to the
    first method available for the benchmark (SDSL where supported,
    tessellation otherwise), mirroring the paper's normalisation.
    """
    machine_avx2, machine_avx512 = _multicore_machines(machine)
    if cores is None:
        cores = machine_avx2.total_cores

    def metric(cell: StudyCell) -> Optional[Dict[str, object]]:
        case = get_benchmark(cell["key"])
        resolved = _series_inputs(
            case, cell["series"], machine_avx2, machine_avx512, cell.cache
        )
        if resolved is None:
            return None
        profile, mach, tiling, label, isa = resolved
        est = cell.cache.multicore(
            profile,
            grid_shape=case.problem_size,
            time_steps=case.time_steps,
            machine=mach,
            cores=cores,
            radius=case.spec.radius,
            tiling=tiling,
        )
        return {
            "benchmark": case.display_name,
            "key": case.key,
            "method": cell["series"],
            "label": label,
            "isa": isa,
            "gflops": est.gflops,
        }

    swept = (
        study("figure9")
        .over(key=tuple(BENCHMARKS), series=MULTICORE_SERIES)
        .on(machine_avx2)
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    result = swept.to_experiment(
        name="figure9",
        description="Multicore cache-blocking performance (GFLOP/s) and speedups",
        notes=f"cores={cores}",
    )
    # The paper normalises each benchmark's bars to its first available
    # series; this needs the whole benchmark group, so it runs as a
    # post-pass over the (ordered) sweep rows.
    base_gflops: Dict[str, float] = {}
    for row in result.rows:
        base = base_gflops.setdefault(row["key"], row["gflops"])
        row["speedup"] = row["gflops"] / base
    return result


# --------------------------------------------------------------------------- #
# Figure 10 — scalability
# --------------------------------------------------------------------------- #
def figure10(
    cores_list: Optional[Sequence[int]] = None,
    benchmarks: Optional[Sequence[str]] = None,
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Scalability curves (GFLOP/s versus active cores) for every benchmark.

    ``cores_list`` defaults to a sweep derived from the target machine's
    core topology (:func:`repro.machine.scalability_cores`) — the paper's
    ``(1, 2, 4, 8, 12, 18, 24, 30, 36)`` on the default Xeon Gold 6140.
    """
    machine_avx2, machine_avx512 = _multicore_machines(machine)
    if cores_list is None:
        cores_list = scalability_cores(machine_avx2)
    cores_list = tuple(cores_list)
    keys = tuple(benchmarks) if benchmarks is not None else tuple(BENCHMARKS)
    if not keys or not cores_list:
        # An empty selection is a legal (empty) sweep, not an error.
        return ExperimentResult(
            name="figure10",
            description="Scalability of the tiled methods",
            notes=f"cores={cores_list}",
        )

    def metric(cell: StudyCell) -> Optional[Dict[str, object]]:
        case = get_benchmark(cell["key"])
        resolved = _series_inputs(
            case, cell["series"], machine_avx2, machine_avx512, cell.cache
        )
        if resolved is None:
            return None
        profile, mach, tiling, label, _isa = resolved
        est = cell.cache.multicore(
            profile,
            grid_shape=case.problem_size,
            time_steps=case.time_steps,
            machine=mach,
            cores=cell["cores"],
            radius=case.spec.radius,
            tiling=tiling,
        )
        return {
            "benchmark": case.display_name,
            "key": case.key,
            "method": cell["series"],
            "label": label,
            "cores": cell["cores"],
            "gflops": est.gflops,
        }

    swept = (
        study("figure10")
        .over(key=keys, series=MULTICORE_SERIES, cores=cores_list)
        .on(machine_avx2)
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return swept.to_experiment(
        name="figure10",
        description=f"Scalability of the tiled methods from 1 to {max(cores_list)} cores",
        notes=f"cores={cores_list}",
    )


# --------------------------------------------------------------------------- #
# Table 3 — speedup over a single core at 36 cores
# --------------------------------------------------------------------------- #
def table3(
    cores: Optional[int] = None,
    benchmarks: Optional[Sequence[str]] = None,
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Speedup over a single core for every stencil and method (Table 3)."""
    machine_avx2, _ = _multicore_machines(machine)
    if cores is None:
        cores = machine_avx2.total_cores
    scal = figure10(
        cores_list=(1, cores),
        benchmarks=benchmarks,
        machine=machine,
        workers=workers,
        cache=cache,
    )
    result = ExperimentResult(
        name="table3",
        description=f"Speedup over single core at {cores} cores",
        notes=scal.notes,
    )
    keys = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    for method in MULTICORE_SERIES:
        entry: Dict[str, object] = {"method": label_for(method, default=method)}
        for key in keys:
            case = get_benchmark(key)
            rows = scal.filter(key=key, method=method)
            if not rows:
                entry[case.display_name] = None
                continue
            by_cores = {row["cores"]: row["gflops"] for row in rows}
            if 1 not in by_cores or cores not in by_cores:
                entry[case.display_name] = None
                continue
            entry[case.display_name] = by_cores[cores] / by_cores[1]
        result.rows.append(entry)
    return result


# --------------------------------------------------------------------------- #
# Section 3.2 — collects / profitability analysis
# --------------------------------------------------------------------------- #
def collects_analysis(
    m: int = 2,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Arithmetic-collect analysis (Section 3.2) for every linear benchmark.

    Reports ``|C(E)|``, ``|C(E_Λ)|`` (plain and optimised) and the
    profitability index; for the paper's 2-step 9-point box the row is
    90 / 25 / 9 / 10.0.
    """
    linear_keys = tuple(key for key, case in BENCHMARKS.items() if case.spec.linear)

    def metric(cell: StudyCell) -> Dict[str, object]:
        case = get_benchmark(cell["key"])
        report = cell.cache.folding(case.spec, m)
        return {
            "benchmark": case.display_name,
            "collect_naive": report.collect_naive,
            "collect_folded": report.collect_folded,
            "collect_optimized": report.collect_optimized,
            "separable": report.separable,
            "profitability": report.profitability_optimized,
        }

    swept = (
        study("collects")
        .over(key=linear_keys)
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return swept.to_experiment(
        name="collects",
        description="Arithmetic collects and profitability of temporal folding",
        notes=f"m={m}",
    )


# --------------------------------------------------------------------------- #
# IR pass ablation — optimizing-pipeline count reductions per stencil × ISA
# --------------------------------------------------------------------------- #
#: Canonical per-dimensionality grid shapes of the pass-ablation sweep
#: (small enough to stay cheap, large enough that the prologue amortises).
_ABLATION_SHAPES = {
    1: lambda vl: (16 * vl * vl,),
    2: lambda vl: (8 * vl, 8 * vl),
    3: lambda vl: (4, 4 * vl, 4 * vl),
}


def pass_ablation(
    stencils: Sequence[str] = ("1d-heat", "1d5p", "2d9p", "2d-heat", "gb", "3d-heat"),
    m: int = 2,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """Per-sweep instruction reduction of the IR pass pipeline, per stencil × ISA.

    Every linear benchmark whose folded schedule the register-level
    constructions can express is lowered to the typed IR, run through the
    default optimizing pipeline (:data:`repro.ir.passes.DEFAULT_PASSES`) and
    accounted on a canonical grid: the rows report unoptimized vs optimized
    per-sweep totals, the data-organisation and spill deltas, and which pass
    removed how many static instructions.  Cells the IR cannot express
    (non-linear stencils, folded radius beyond the vector length) are
    skipped, mirroring the paper's "-" entries.
    """
    from repro.core.vectorized_folding import FoldingSchedule
    from repro.ir.lower import lower_schedule
    from repro.ir.passes import PassManager
    from repro.simd.isa import isa_for

    def metric(cell: StudyCell) -> Optional[Dict[str, object]]:
        case = get_benchmark(cell["stencil"])
        spec = case.spec
        isa = isa_for(cell["isa"])
        if not spec.linear:
            return None

        def analyse():
            schedule = FoldingSchedule(spec, m)
            if schedule.radius > isa.vector_lanes:
                return None
            shape = _ABLATION_SHAPES[spec.dims](isa.vector_lanes)
            ir = lower_schedule(schedule, isa)
            opt, reports = PassManager(True).run(ir)
            base, _, base_spills = ir.sweep_counts(shape if spec.dims > 1 else shape[0])
            best, _, best_spills = opt.sweep_counts(shape if spec.dims > 1 else shape[0])
            row: Dict[str, object] = {
                "benchmark": case.display_name,
                "isa": isa.name,
                "unoptimized": base.total,
                "optimized": best.total,
                "reduction_pct": 100.0 * (1.0 - best.total / base.total),
                "data_org_saved": base.data_organization - best.data_organization,
                "spills_saved": base_spills - best_spills,
            }
            for report in reports:
                row[report.name] = float(
                    report.counts_after.total - report.counts_before.total
                )
            return row

        return cell.cache.memoize(
            "pass-ablation", (case.key, isa.name, m), analyse
        )

    swept = (
        study("pass_ablation")
        .over(stencil=tuple(stencils), isa=("avx2", "avx512"))
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return swept.to_experiment(
        name="pass_ablation",
        description=(
            "IR pass-pipeline ablation: per-sweep instruction counts of the "
            "folded schedules, unoptimized vs optimized"
        ),
        notes=f"m={m}, passes=default pipeline",
    )


# --------------------------------------------------------------------------- #
# 3-D stencils — method × ISA sweep over the Table 1 3-D benchmarks
# --------------------------------------------------------------------------- #
def dims3(
    stencils: Sequence[str] = ("3d-heat", "3d27p"),
    m: int = 2,
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """3-D benchmark sweep: every lineup method × both ISAs at paper scale.

    Sweeps the paper's 3-D stencils (7-point heat, 27-point box) through the
    full method lineup on both ISA variants of the target machine, at the
    Table 1 problem sizes.  Each row also reports the sweep's neighbour-reuse
    slab residency (:func:`repro.cache.analytic.sweep_reuse_level`) — for 3-D
    stencils the slab is a pair of grid planes, which is what pushes their
    streaming reuse out of the inner cache levels and makes the folded
    method's sweep reduction count double.
    """
    machine_avx2, machine_avx512 = _multicore_machines(machine)
    machines = {"avx2": machine_avx2, "avx512": machine_avx512}

    def metric(cell: StudyCell) -> Dict[str, object]:
        case = get_benchmark(cell["stencil"])
        spec = case.spec
        isa = cell["isa"]
        target = machines[isa]
        profile = cell.cache.profile(cell["method"], spec, isa=isa, m=m)
        npoints = int(np.prod(case.problem_size))
        est = cell.cache.estimate(
            profile, npoints=npoints, time_steps=case.time_steps, machine=target
        )
        return {
            "benchmark": case.display_name,
            "stencil": spec.name,
            "isa": isa,
            "method": cell["method"],
            "label": label_for(cell["method"]),
            "gflops": est.gflops,
            "bound": est.bound,
            "residency": est.residency,
            "reuse_level": sweep_reuse_level(case.problem_size, target, spec.radius),
        }

    result = (
        study("dims3")
        .over(stencil=tuple(stencils), isa=("avx2", "avx512"), method=SEQUENTIAL_METHODS)
        .on(machine_avx2)
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return result.to_experiment(
        name="dims3",
        description=(
            "3-D stencils: method lineup × ISA at the Table 1 problem sizes, "
            "with neighbour-reuse slab residency"
        ),
        notes=f"m={m}, stencils={', '.join(stencils)}",
    )


# --------------------------------------------------------------------------- #
# measured vs estimated — cost-model validation on the kernel backend
# --------------------------------------------------------------------------- #
def measured_vs_estimated(
    stencils: Sequence[str] = ("1d-heat", "2d9p", "3d-heat"),
    m: int = 2,
    steps: Optional[int] = None,
    backend: str = "kernel",
    repeats: int = 3,
    machine: Optional[MachineSpec] = None,
    workers: Optional[int] = None,
    cache: Optional[EvalCache] = None,
    clock=None,
) -> ExperimentResult:
    """Estimated vs measured cycles per point, per stencil × ISA, one axis.

    Every cell compiles the folded plan, asks the cost model for its
    predicted cycles per point, then *measures* the same workload on the
    generated-megakernel backend (:mod:`repro.backend`) — warmup + repeated
    timed runs, median — and converts the measurement with the estimate's
    effective frequency so both figures sit on the cost model's axis.  The
    ``measured_over_estimated`` ratio is the Python/NumPy interpretation gap;
    rows where it approaches 1 are where the model is validated against the
    hardware rather than merely predictive.  Cells the register-level
    schedule cannot express (non-linear stencils, folded radius beyond the
    vector length) are skipped.

    ``clock`` injects the timing source (:mod:`repro.backend.measure`), which
    is how the test suite runs this experiment deterministically.  Timings
    are memoized per (stencil, isa, m, steps, backend, repeats) within the
    study cache — share a cache across calls only when re-measuring is not
    the point.
    """
    from repro.backend.measure import measured_vs_estimated as compare
    from repro.core.plan import plan as build_plan
    from repro.core.vectorized_folding import FoldingSchedule
    from repro.simd.isa import isa_for
    from repro.stencils.grid import Grid

    machine_avx2, machine_avx512 = _multicore_machines(machine)
    time_steps = steps if steps is not None else 2 * m

    def metric(cell: StudyCell) -> Optional[Dict[str, object]]:
        case = get_benchmark(cell["stencil"])
        spec = case.spec
        isa = isa_for(cell["isa"])
        if not spec.linear:
            return None

        def measure():
            if FoldingSchedule(spec, m).radius > isa.vector_lanes:
                return None
            compiled = build_plan(spec).method("folded").isa(isa.name).unroll(m).compile()
            shape = _ABLATION_SHAPES[spec.dims](isa.vector_lanes)
            grid = Grid.random(shape, seed=0)
            report = compare(
                compiled,
                grid,
                time_steps,
                backend=backend,
                machine=machine_avx512 if isa.name == "avx512" else machine_avx2,
                repeats=repeats,
                clock=clock,
            )
            return {
                "benchmark": case.display_name,
                "isa": isa.name,
                "estimated_cycles_per_point": report["estimated_cycles_per_point"],
                "measured_cycles_per_point": report["measured_cycles_per_point"],
                "measured_over_estimated": report["measured_over_estimated"],
                "median_seconds": report["median_seconds"],
                "frequency_ghz": report["frequency_ghz"],
                "bound": report["bound"],
            }

        return cell.cache.memoize(
            "measured-vs-estimated",
            (case.key, isa.name, m, time_steps, backend, repeats),
            measure,
        )

    swept = (
        study("measured_vs_estimated")
        .over(stencil=tuple(stencils), isa=("avx2", "avx512"))
        .metric(metric)
        .cache(cache)
        .run(workers=workers if workers is not None else 1)
    )
    return swept.to_experiment(
        name="measured_vs_estimated",
        description=(
            "Cost-model validation: estimated vs measured cycles per point "
            f"on the {backend} execution backend"
        ),
        notes=f"m={m}, steps={time_steps}, backend={backend}, repeats={repeats}",
    )


# --------------------------------------------------------------------------- #
# autotune lineup — the staged tuner vs the hand-picked study-table configs
# --------------------------------------------------------------------------- #
def autotune_lineup(
    stencils: Optional[Sequence[str]] = None,
    machine: Optional[MachineSpec] = None,
    cache: Optional[EvalCache] = None,
) -> ExperimentResult:
    """The staged tuner against every hand-picked study-table configuration.

    The paper (and every experiment above) fixes its configurations by hand:
    each method at ``m = 2`` on the benchmark's own workload.  This
    experiment runs :func:`repro.autotune.autotune` (predict-only,
    ``budget=0`` — the ranking is the IR cost model's, so the rows are
    machine-independent and deterministic) over every linear library stencil
    on both ISAs and puts the tuned winner next to the *best* hand-picked
    config, scored through the same cached estimate path.  The tuned cost
    must be at or below the hand-picked cost in every row: the tuner's
    search space contains every hand-picked configuration, so any regression
    here means the predict stage scores the same configuration differently
    — exactly the scoring drift the staged redesign removed.
    """
    from repro.autotune.space import TuningWorkload
    from repro.autotune.tuner import autotune

    cache = cache if cache is not None else EvalCache()
    keys = tuple(stencils) if stencils else tuple(
        key for key in BENCHMARKS if get_benchmark(key).spec.linear
    )
    result = ExperimentResult(
        name="autotune_lineup",
        description=(
            "Tuned configuration vs the best hand-picked study-table config "
            "(predicted cycles per point, per stencil x ISA)"
        ),
        notes="budget=0 (predict-only), hand-picked lineup = each method at m=2",
    )
    for key in keys:
        case = get_benchmark(key)
        spec = case.spec
        workload = TuningWorkload.for_spec(spec)
        for isa in ("avx2", "avx512"):
            tuned = autotune(
                spec,
                machine=machine,
                budget=0,
                space=None,
                workload=workload,
                cache=cache,
                isas=(isa,),
                label=key,
            )
            scoring_machine = (
                machine_for_isa(isa) if machine is None else isa_variant(machine, isa)
            )
            hand_picked: List[Tuple[str, float]] = []
            for method in SEQUENTIAL_METHODS:
                try:
                    profile = cache.profile(method, spec, isa=isa, m=2)
                    estimate = cache.multicore(
                        profile,
                        workload.shape,
                        workload.time_steps,
                        scoring_machine,
                        workload.cores,
                        spec.radius,
                    )
                except (KeyError, ValueError):
                    continue  # method cannot express this stencil
                hand_picked.append((method, float(estimate.cycles_per_point)))
            if not hand_picked:
                continue
            hand_method, hand_cycles = min(hand_picked, key=lambda pair: pair[1])
            winner = tuned.winner
            result.rows.append(
                {
                    "benchmark": case.display_name,
                    "stencil": key,
                    "isa": isa,
                    "tuned_method": winner.method,
                    "tuned_m": winner.m,
                    "tuned_cycles_per_point": winner.predicted_cycles_per_point,
                    "hand_picked_method": hand_method,
                    "hand_picked_cycles_per_point": hand_cycles,
                    "improvement": hand_cycles / winner.predicted_cycles_per_point,
                    "candidates": tuned.generated,
                    "pruned_fraction": tuned.pruned_fraction,
                }
            )
    return result
