"""The paper's evaluation experiments.

Each function reproduces one table or figure of Section 4 and returns an
:class:`ExperimentResult` whose rows mirror the series of the original
artefact.  Absolute GFLOP/s values come from the analytic performance model
(the substrate substitution documented in ``DESIGN.md``); the assertions the
benchmark suite makes are about the *shape* of the results — method
orderings, crossover points, scaling behaviour — which is what a
reproduction on a different substrate can meaningfully claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.sdsl import profile_sdsl
from repro.cache.analytic import problem_size_for_level
from repro.core.folding import analyze_folding
from repro.machine import MachineSpec, machine_for_isa
from repro.methods import build_profile
from repro.registry import label_for, method_keys
from repro.parallel.model import multicore_estimate, scalability_curve
from repro.perfmodel.costmodel import estimate_performance
from repro.perfmodel.profiles import MethodProfile
from repro.stencils.library import BENCHMARKS, BenchmarkCase, get_benchmark
from repro.tiling.splittiling import SplitTilingConfig
from repro.tiling.tessellate import TessellationConfig

#: Storage levels of Figure 8, in the order the paper plots them.
STORAGE_LEVELS = ("L1", "L2", "L3", "Memory")

#: Methods of the sequential block-free comparison (Figure 8 / Table 2) —
#: the registry's figure line-up, in the order the paper plots it.
SEQUENTIAL_METHODS = method_keys()

#: Core counts swept by the scalability experiment (Figure 10).
SCALABILITY_CORES = (1, 2, 4, 8, 12, 18, 24, 30, 36)

#: Benchmarks the SDSL package does not support (Table 3 shows "-").
SDSL_UNSUPPORTED = frozenset({"apop", "game-of-life", "gb"})


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure plus provenance metadata."""

    name: str
    description: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def series(self, key: str) -> List[object]:
        """Column ``key`` across all rows (missing values become ``None``)."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all ``column=value`` criteria."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def _tiling_from_case(case: BenchmarkCase, spec_radius: int) -> TessellationConfig:
    """Derive the tessellation configuration from a Table 1 blocking entry."""
    dims = len(case.problem_size)
    blocking = case.blocking_size
    spatial = list(blocking[:dims])
    while len(spatial) < dims:
        spatial.append(blocking[-1])
    if len(blocking) > dims:
        time_range = int(blocking[dims])
    else:
        time_range = max(1, min(spatial) // (2 * spec_radius))
    # Clamp the time range so every block satisfies the tessellation
    # feasibility constraint block >= 2 * r * TR.
    feasible = min(b // (2 * spec_radius) for b in spatial)
    time_range = max(1, min(time_range, feasible))
    return TessellationConfig(block_sizes=tuple(spatial), time_range=time_range)


#: Largest time-block depth credited to the SDSL baseline.  Split tiling on
#: the DLT layout pays boundary-column fixups on every tile face at every
#: time level, which keeps its published configurations shallow compared to
#: the tessellation's time ranges.
SDSL_MAX_TIME_RANGE = 8


def _sdsl_config(case: BenchmarkCase, spec_radius: int) -> SplitTilingConfig:
    """Split-tiling configuration of the SDSL baseline for one benchmark."""
    tiling = _tiling_from_case(case, spec_radius)
    return SplitTilingConfig(
        block_size=tiling.block_sizes[0] or case.problem_size[0],
        time_range=min(tiling.time_range, SDSL_MAX_TIME_RANGE),
    )


def _multicore_methods(
    case: BenchmarkCase, isa: str, machine: MachineSpec
) -> List[Tuple[str, MethodProfile, Optional[TessellationConfig]]]:
    """Method line-up of the multicore experiments for one benchmark."""
    spec = case.spec
    radius = spec.radius
    tiling = _tiling_from_case(case, radius)
    lineup: List[Tuple[str, MethodProfile, Optional[TessellationConfig]]] = []
    if case.key not in SDSL_UNSUPPORTED:
        sdsl = profile_sdsl(
            spec,
            isa,
            _sdsl_config(case, radius),
            case.problem_size,
            machine,
            hybrid_blocks=tiling.block_sizes,
        )
        lineup.append(("sdsl", sdsl, None))
    lineup.append(("tessellation", build_profile("data_reorg", spec, isa), tiling))
    lineup.append(("transpose", build_profile("transpose", spec, isa), tiling))
    lineup.append(("folded", build_profile("folded", spec, isa, m=2), tiling))
    return lineup


# --------------------------------------------------------------------------- #
# Figure 8 — sequential block-free performance across storage levels
# --------------------------------------------------------------------------- #
def figure8(
    isa: str = "avx2",
    time_steps_values: Sequence[int] = (1000, 10000),
    benchmark: str = "1d-heat",
) -> ExperimentResult:
    """Sequential block-free comparison of the five vectorization methods.

    For each storage level a problem size resident in that level is chosen
    (as the paper does) and every method's single-core performance is
    estimated without any spatial/temporal blocking, for both total time-step
    counts the paper examines.
    """
    machine = machine_for_isa(isa)
    case = get_benchmark(benchmark)
    spec = case.spec
    result = ExperimentResult(
        name="figure8",
        description=(
            "Absolute performance (GFLOP/s) of the vectorization methods in "
            "single-thread blocking-free runs, by storage level"
        ),
        notes=f"stencil={spec.name}, isa={isa}",
    )
    for time_steps in time_steps_values:
        for level in STORAGE_LEVELS:
            npoints = problem_size_for_level(machine, level, bytes_per_point=16.0)
            for method in SEQUENTIAL_METHODS:
                profile = build_profile(method, spec, isa, m=2)
                est = estimate_performance(
                    profile, npoints=npoints, time_steps=time_steps, machine=machine
                )
                result.rows.append(
                    {
                        "time_steps": time_steps,
                        "level": level,
                        "method": method,
                        "label": label_for(method),
                        "npoints": npoints,
                        "gflops": est.gflops,
                        "bound": est.bound,
                    }
                )
    return result


# --------------------------------------------------------------------------- #
# Table 2 — relative improvements per storage level
# --------------------------------------------------------------------------- #
def table2(isa: str = "avx2", benchmark: str = "1d-heat") -> ExperimentResult:
    """Relative improvement of every method over multiple loads, per level.

    Reproduces Table 2: one row per storage level plus the mean row, with
    multiple loads normalised to 1.00x in every row.
    """
    base = figure8(isa=isa, time_steps_values=(1000,), benchmark=benchmark)
    result = ExperimentResult(
        name="table2",
        description="Performance improvements relative to the multiple-loads method",
        notes=base.notes,
    )
    ratios_per_method: Dict[str, List[float]] = {m: [] for m in SEQUENTIAL_METHODS}
    for level in STORAGE_LEVELS:
        rows = base.filter(level=level, time_steps=1000)
        by_method = {row["method"]: row["gflops"] for row in rows}
        reference = by_method["multiple_loads"]
        entry: Dict[str, object] = {"level": level}
        for method in SEQUENTIAL_METHODS:
            ratio = by_method[method] / reference
            entry[method] = ratio
            ratios_per_method[method].append(ratio)
        result.rows.append(entry)
    mean_row: Dict[str, object] = {"level": "Mean"}
    for method in SEQUENTIAL_METHODS:
        mean_row[method] = float(np.mean(ratios_per_method[method]))
    result.rows.append(mean_row)
    return result


# --------------------------------------------------------------------------- #
# Figure 9 — multicore cache-blocking performance and speedups
# --------------------------------------------------------------------------- #
def figure9(cores: int = 36) -> ExperimentResult:
    """Multicore cache-blocking comparison over the nine benchmarks.

    For every benchmark of Table 1 the SDSL baseline, the tessellation
    baseline, our transpose-layout method and our 2-step folded method are
    evaluated with AVX-2, plus the folded method with AVX-512 (the paper's
    "gains with AVX-512" series).  Speedups are reported relative to the
    first method available for the benchmark (SDSL where supported,
    tessellation otherwise), mirroring the paper's normalisation.
    """
    result = ExperimentResult(
        name="figure9",
        description="Multicore cache-blocking performance (GFLOP/s) and speedups",
        notes=f"cores={cores}",
    )
    machine_avx2 = machine_for_isa("avx2")
    machine_avx512 = machine_for_isa("avx512")
    for key, case in BENCHMARKS.items():
        spec = case.spec
        radius = spec.radius
        rows_for_case: List[Dict[str, object]] = []
        lineup = _multicore_methods(case, "avx2", machine_avx2)
        for method, profile, tiling in lineup:
            est = multicore_estimate(
                profile,
                grid_shape=case.problem_size,
                time_steps=case.time_steps,
                machine=machine_avx2,
                cores=cores,
                radius=radius,
                tiling=tiling,
            )
            rows_for_case.append(
                {
                    "benchmark": case.display_name,
                    "key": key,
                    "method": method,
                    "label": label_for(method),
                    "isa": "avx2",
                    "gflops": est.gflops,
                }
            )
        # Our 2-step method with AVX-512.
        tiling = _tiling_from_case(case, radius)
        folded512 = build_profile("folded", spec, "avx512", m=2)
        est512 = multicore_estimate(
            folded512,
            grid_shape=case.problem_size,
            time_steps=case.time_steps,
            machine=machine_avx512,
            cores=cores,
            radius=radius,
            tiling=tiling,
        )
        rows_for_case.append(
            {
                "benchmark": case.display_name,
                "key": key,
                "method": "folded_avx512",
                "label": "Our (2 steps, AVX-512)",
                "isa": "avx512",
                "gflops": est512.gflops,
            }
        )
        base_gflops = rows_for_case[0]["gflops"]
        for row in rows_for_case:
            row["speedup"] = row["gflops"] / base_gflops
        result.rows.extend(rows_for_case)
    return result


# --------------------------------------------------------------------------- #
# Figure 10 — scalability
# --------------------------------------------------------------------------- #
def figure10(
    cores_list: Sequence[int] = SCALABILITY_CORES,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Scalability curves (GFLOP/s versus active cores) for every benchmark."""
    result = ExperimentResult(
        name="figure10",
        description="Scalability of the tiled methods from 1 to 36 cores",
        notes=f"cores={tuple(cores_list)}",
    )
    machine_avx2 = machine_for_isa("avx2")
    machine_avx512 = machine_for_isa("avx512")
    keys = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    for key in keys:
        case = get_benchmark(key)
        spec = case.spec
        radius = spec.radius
        tiling = _tiling_from_case(case, radius)
        lineup = _multicore_methods(case, "avx2", machine_avx2)
        series: List[Tuple[str, str, MethodProfile, Optional[TessellationConfig], MachineSpec]] = [
            (method, label_for(method), profile, t, machine_avx2)
            for method, profile, t in lineup
        ]
        series.append(
            (
                "folded_avx512",
                "Our (2 steps, AVX-512)",
                build_profile("folded", spec, "avx512", m=2),
                tiling,
                machine_avx512,
            )
        )
        for method, label, profile, t, machine in series:
            curve = scalability_curve(
                profile,
                grid_shape=case.problem_size,
                time_steps=case.time_steps,
                machine=machine,
                cores_list=cores_list,
                radius=radius,
                tiling=t,
            )
            for cores, est in curve.items():
                result.rows.append(
                    {
                        "benchmark": case.display_name,
                        "key": key,
                        "method": method,
                        "label": label,
                        "cores": cores,
                        "gflops": est.gflops,
                    }
                )
    return result


# --------------------------------------------------------------------------- #
# Table 3 — speedup over a single core at 36 cores
# --------------------------------------------------------------------------- #
def table3(cores: int = 36, benchmarks: Optional[Sequence[str]] = None) -> ExperimentResult:
    """Speedup over a single core for every stencil and method (Table 3)."""
    scal = figure10(cores_list=(1, cores), benchmarks=benchmarks)
    result = ExperimentResult(
        name="table3",
        description=f"Speedup over single core at {cores} cores",
        notes=scal.notes,
    )
    keys = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    methods = ["sdsl", "tessellation", "transpose", "folded", "folded_avx512"]
    for method in methods:
        entry: Dict[str, object] = {"method": label_for(method, default=method)}
        for key in keys:
            case = get_benchmark(key)
            rows = scal.filter(key=key, method=method)
            if not rows:
                entry[case.display_name] = None
                continue
            by_cores = {row["cores"]: row["gflops"] for row in rows}
            if 1 not in by_cores or cores not in by_cores:
                entry[case.display_name] = None
                continue
            entry[case.display_name] = by_cores[cores] / by_cores[1]
        result.rows.append(entry)
    return result


# --------------------------------------------------------------------------- #
# Section 3.2 — collects / profitability analysis
# --------------------------------------------------------------------------- #
def collects_analysis(m: int = 2) -> ExperimentResult:
    """Arithmetic-collect analysis (Section 3.2) for every linear benchmark.

    Reports ``|C(E)|``, ``|C(E_Λ)|`` (plain and optimised) and the
    profitability index; for the paper's 2-step 9-point box the row is
    90 / 25 / 9 / 10.0.
    """
    result = ExperimentResult(
        name="collects",
        description="Arithmetic collects and profitability of temporal folding",
        notes=f"m={m}",
    )
    for key, case in BENCHMARKS.items():
        spec = case.spec
        if not spec.linear:
            continue
        report = analyze_folding(spec, m)
        result.rows.append(
            {
                "benchmark": case.display_name,
                "collect_naive": report.collect_naive,
                "collect_folded": report.collect_folded,
                "collect_optimized": report.collect_optimized,
                "separable": report.separable,
                "profitability": report.profitability_optimized,
            }
        )
    return result
