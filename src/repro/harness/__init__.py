"""Experiment harness.

Regenerates every table and figure of the paper's evaluation section:

==========  ===============================================================
artefact    harness entry point
==========  ===============================================================
Figure 8    :func:`repro.harness.experiments.figure8` — sequential
            block-free performance across storage levels, T ∈ {1000, 10000}
Table 2     :func:`repro.harness.experiments.table2` — relative improvement
            per storage level
Figure 9    :func:`repro.harness.experiments.figure9` — multicore
            cache-blocking performance and speedups for the nine benchmarks
Figure 10   :func:`repro.harness.experiments.figure10` — scalability curves
Table 3     :func:`repro.harness.experiments.table3` — 36-core speedups over
            a single core
(extra)     :func:`repro.harness.experiments.pass_ablation` — IR
            pass-pipeline count reductions per stencil × ISA
(extra)     :func:`repro.harness.experiments.measured_vs_estimated` —
            cost-model validation on the generated-kernel backend
==========  ===============================================================

:mod:`repro.harness.runner` exposes a registry keyed by those names and
:mod:`repro.harness.report` renders results as aligned text tables (the same
rows are written into ``EXPERIMENTS.md``).
"""

from repro.harness.experiments import (
    ExperimentResult,
    figure8,
    table2,
    figure9,
    figure10,
    table3,
    collects_analysis,
    dims3,
    measured_vs_estimated,
    pass_ablation,
)
from repro.harness.runner import EXPERIMENTS, run_experiment, run_all
from repro.harness.report import format_experiment

__all__ = [
    "ExperimentResult",
    "figure8",
    "table2",
    "figure9",
    "figure10",
    "table3",
    "collects_analysis",
    "dims3",
    "measured_vs_estimated",
    "pass_ablation",
    "EXPERIMENTS",
    "run_experiment",
    "run_all",
    "format_experiment",
]
