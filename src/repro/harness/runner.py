"""Experiment registry and command-line entry point.

``python -m repro.harness.runner`` regenerates every table and figure and
prints them; ``python -m repro.harness.runner figure8 table2`` runs a subset.
The same functions are used by the pytest benchmarks, so the printed rows and
the benchmarked rows always agree.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List

from repro.harness.experiments import (
    ExperimentResult,
    collects_analysis,
    figure8,
    figure9,
    figure10,
    table2,
    table3,
)
from repro.harness.report import format_experiment

#: Registry of experiment name → zero-argument callable.
EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "figure8": figure8,
    "table2": table2,
    "figure9": figure9,
    "figure10": figure10,
    "table3": table3,
    "collects": collects_analysis,
}


def run_experiment(name: str) -> ExperimentResult:
    """Run the experiment registered under ``name``."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[key]()


def run_all(names: Iterable[str] | None = None) -> List[ExperimentResult]:
    """Run all (or the named) experiments and return their results."""
    selected = list(names) if names else list(EXPERIMENTS)
    return [run_experiment(name) for name in selected]


def main(argv: List[str] | None = None) -> int:
    """CLI entry point: print the requested experiments as text tables."""
    argv = list(sys.argv[1:] if argv is None else argv)
    names = argv or list(EXPERIMENTS)
    for name in names:
        result = run_experiment(name)
        print(format_experiment(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
