"""Experiment registry and command-line entry point.

``python -m repro.harness.runner`` regenerates every table and figure and
prints them; ``python -m repro.harness.runner figure8 table2`` runs a
subset.  The same functions are used by the pytest benchmarks, so the
printed rows and the benchmarked rows always agree.

Sweep selection and output flags::

    python -m repro.harness.runner figure8 --isa avx512     # ISA sweep
    python -m repro.harness.runner figure9 --cores 18       # core count
    python -m repro.harness.runner figure10 --benchmark 2d9p
    python -m repro.harness.runner --workers 8              # parallel sweeps
    python -m repro.harness.runner table2 --json            # machine-readable
    python -m repro.harness.runner --list                   # what exists

Every experiment accepts only the flags that make sense for it; the runner
filters the selection flags against each experiment's signature, so
``--isa`` reaches ``figure8``/``table2`` while ``figure9`` ignores it.  A
single :class:`~repro.study.cache.EvalCache` is shared across the selected
experiments, so artefacts that replay each other's cells (Table 2 replays
Figure 8, Table 3 replays Figure 10) reuse the memoized profiles and
estimates.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import warnings
from typing import Callable, Dict, Iterable, List, Optional

from repro.harness.experiments import (
    ExperimentResult,
    autotune_lineup,
    collects_analysis,
    dims3,
    figure8,
    figure9,
    figure10,
    measured_vs_estimated,
    pass_ablation,
    table2,
    table3,
)
from repro.harness.report import format_experiment
from repro.study import EvalCache

#: Registry of experiment name → callable returning an
#: :class:`ExperimentResult`.  Callables accept (a subset of) the sweep
#: keyword arguments ``isa``, ``benchmark``, ``cores``, ``machine``,
#: ``workers`` and ``cache``; :func:`run_experiment` forwards only what each
#: signature declares.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure8": figure8,
    "table2": table2,
    "figure9": figure9,
    "figure10": figure10,
    "table3": table3,
    "collects": collects_analysis,
    "dims3": dims3,
    "pass_ablation": pass_ablation,
    "measured_vs_estimated": measured_vs_estimated,
    "autotune_lineup": autotune_lineup,
}


def _accepted_kwargs(
    fn: Callable[..., ExperimentResult], kwargs: Dict[str, object]
) -> Dict[str, object]:
    """The subset of ``kwargs`` that ``fn``'s signature declares."""
    params = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return dict(kwargs)
    return {k: v for k, v in kwargs.items() if k in params}


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run the experiment registered under ``name``.

    Keyword arguments (``isa=``, ``cores=``, ``workers=``, ``machine=``,
    ``cache=``, ...) are forwarded to the experiment, silently dropping any
    the experiment's signature does not declare — so one set of sweep flags
    can drive heterogeneous experiments.
    """
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
    fn = EXPERIMENTS[key]
    passed = {k: v for k, v in kwargs.items() if v is not None}
    return fn(**_accepted_kwargs(fn, passed))


def run_all(names: Iterable[str] | None = None, **kwargs: object) -> List[ExperimentResult]:
    """Run all (or the named) experiments and return their results.

    Duplicate names are executed once, keeping first-occurrence order; a
    ``UserWarning`` surfaces each ignored duplicate.  All experiments share
    one memoization cache unless the caller supplies ``cache=`` explicitly.
    """
    selected = list(names) if names else list(EXPERIMENTS)
    seen = set()
    unique: List[str] = []
    for name in selected:
        key = name.strip().lower()
        if key in seen:
            warnings.warn(
                f"duplicate experiment {name!r} ignored (already selected)",
                UserWarning,
                stacklevel=2,
            )
            continue
        seen.add(key)
        unique.append(name)
    kwargs.setdefault("cache", EvalCache())
    return [run_experiment(name, **kwargs) for name in unique]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the registered experiments and exit"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document with every result instead of text tables",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker-pool width for the study sweeps (default: sequential)",
    )
    parser.add_argument(
        "--isa",
        choices=("avx2", "avx512"),
        default=None,
        help="instruction set for the sequential experiments (figure8/table2)",
    )
    parser.add_argument(
        "--benchmark",
        default=None,
        metavar="KEY",
        help="restrict figure8/table2 to one benchmark stencil (e.g. 2d9p)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        metavar="KEYS",
        help="comma-separated benchmark keys for figure10/table3",
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        metavar="N",
        help="core count for the multicore experiments (figure9/table3)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    """CLI entry point: print the requested experiments as tables or JSON."""
    args = _build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return 0
    sweep_kwargs: Dict[str, Optional[object]] = {
        "workers": args.workers,
        "isa": args.isa,
        "benchmark": args.benchmark,
        "cores": args.cores,
    }
    if args.benchmarks:
        sweep_kwargs["benchmarks"] = tuple(
            key.strip() for key in args.benchmarks.split(",") if key.strip()
        )
    cache = EvalCache()
    try:
        results = run_all(args.names or None, cache=cache, **sweep_kwargs)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.json:
        # Same accounting surface as the service's /stats endpoint: overall
        # CacheStats plus a per-kind breakdown (profile/estimate/...).
        document = {
            "experiments": [result.to_dict() for result in results],
            "cache": {
                "overall": cache.stats.to_dict(),
                "by_kind": {
                    kind: stats.to_dict()
                    for kind, stats in cache.stats_by_kind().items()
                },
            },
        }
        print(json.dumps(document, indent=2, default=str))
    else:
        for result in results:
            print(format_experiment(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
