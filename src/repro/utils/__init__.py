"""Utility helpers shared across the :mod:`repro` package.

The submodules are intentionally small and dependency-free so that every
other subsystem (stencils, SIMD simulator, cache model, harness) can import
them without creating cycles.
"""

from repro.utils.validation import (
    assert_allclose,
    max_abs_error,
    relative_l2_error,
)
from repro.utils.tables import format_table
from repro.utils.timer import Timer

__all__ = [
    "assert_allclose",
    "max_abs_error",
    "relative_l2_error",
    "format_table",
    "Timer",
]
