"""Lightweight wall-clock timing utilities.

The experiment harness mostly reports *modelled* cycles (see
:mod:`repro.perfmodel`), but the examples and a few benchmarks also measure
real wall-clock time of the NumPy executors.  ``Timer`` wraps
``time.perf_counter`` with a context-manager interface and accumulation so a
loop body can be timed across iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    #: Total accumulated seconds across all ``with`` blocks.
    elapsed: float = 0.0
    #: Number of completed ``with`` blocks.
    count: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed += time.perf_counter() - self._start
        self.count += 1

    def reset(self) -> None:
        """Zero the accumulated time and the completion count."""
        self.elapsed = 0.0
        self.count = 0

    @property
    def mean(self) -> float:
        """Mean seconds per completed block (``0.0`` if never used)."""
        if self.count == 0:
            return 0.0
        return self.elapsed / self.count
