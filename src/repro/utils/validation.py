"""Numerical validation helpers.

All optimized execution schedules in this package (transpose layout,
temporal folding, tessellate tiling, the DLT baseline, ...) are required to
produce the same numerical answer as the naive reference executor.  The
helpers here centralise the tolerances used for those comparisons so that
tests and the experiment harness agree on what "equal" means.

Stencil updates are sums of products of ``float64`` values; reassociating
them (which every optimisation in the paper does) perturbs results at the
level of a few ULPs per time step.  The default tolerances below are
comfortable for hundreds of time steps of the paper's kernels while still
being tight enough to catch real indexing bugs, which produce errors many
orders of magnitude larger.
"""

from __future__ import annotations

import numpy as np

#: Default relative tolerance used when comparing two stencil results.
DEFAULT_RTOL = 1e-9

#: Default absolute tolerance used when comparing two stencil results.
DEFAULT_ATOL = 1e-11


def max_abs_error(a: np.ndarray, b: np.ndarray) -> float:
    """Return the maximum absolute elementwise difference between two arrays.

    Parameters
    ----------
    a, b:
        Arrays of identical shape.

    Returns
    -------
    float
        ``max(|a - b|)`` as a Python float; ``0.0`` for empty arrays.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def relative_l2_error(result: np.ndarray, reference: np.ndarray) -> float:
    """Return the relative L2 error ``||result - reference|| / ||reference||``.

    A reference with zero norm yields the absolute L2 norm of ``result``
    instead, so the function never divides by zero.
    """
    result = np.asarray(result, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if result.shape != reference.shape:
        raise ValueError(f"shape mismatch: {result.shape} vs {reference.shape}")
    diff = np.linalg.norm((result - reference).ravel())
    denom = np.linalg.norm(reference.ravel())
    if denom == 0.0:
        return float(diff)
    return float(diff / denom)


def assert_allclose(
    result: np.ndarray,
    reference: np.ndarray,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    context: str = "",
) -> None:
    """Assert that ``result`` matches ``reference`` within stencil tolerances.

    Parameters
    ----------
    result:
        Output of an optimized schedule.
    reference:
        Output of the naive reference executor.
    rtol, atol:
        Tolerances forwarded to :func:`numpy.testing.assert_allclose`.
    context:
        Optional string prepended to the failure message (e.g. the method
        and stencil name), making harness failures self-describing.
    """
    err_msg = context or "stencil results diverged from reference"
    np.testing.assert_allclose(
        np.asarray(result), np.asarray(reference), rtol=rtol, atol=atol, err_msg=err_msg
    )
