"""ASCII table formatting used by the experiment harness.

The paper reports its evaluation as tables (Table 2, Table 3) and figures
whose data series the harness prints as rows.  ``format_table`` renders a
list of dictionaries (or a header plus rows) into an aligned, pipe-separated
table that reads well both in a terminal and when pasted into
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _stringify(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]] | Sequence[Sequence[object]],
    headers: Sequence[str] | None = None,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` as a markdown-style aligned table.

    Parameters
    ----------
    rows:
        Either a sequence of mappings (all sharing the same keys, which become
        the header) or a sequence of sequences (requires ``headers``).
    headers:
        Column names; inferred from mapping keys when omitted.
    float_fmt:
        ``format()`` spec applied to float cells.
    title:
        Optional title line placed above the table.

    Returns
    -------
    str
        The rendered table, newline-terminated.
    """
    rows = list(rows)
    if not rows:
        return (title + "\n") if title else ""

    if isinstance(rows[0], Mapping):
        if headers is None:
            headers = list(rows[0].keys())
        body = [
            [_stringify(row.get(h, ""), float_fmt) for h in headers]  # type: ignore[union-attr]
            for row in rows
        ]
    else:
        if headers is None:
            raise ValueError("headers are required when rows are sequences")
        body = [
            [_stringify(cell, float_fmt) for cell in row]  # type: ignore[union-attr]
            for row in rows
        ]

    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Iterable[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    out = []
    if title:
        out.append(title)
    out.append(fmt_line(headers))
    out.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    out.extend(fmt_line(line) for line in body)
    return "\n".join(out) + "\n"
