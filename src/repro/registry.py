"""Pluggable registry of vectorization methods.

Every execution method the library knows about — the paper's transpose
layout and temporal folding, the baselines it compares against, the plain
reference executor, and any backend a downstream user plugs in — is
described by one immutable :class:`MethodDescriptor` and registered here
under its string key.  The descriptor carries everything the rest of the
system needs to treat methods uniformly:

* ``profile_builder`` — builds the steady-state
  :class:`~repro.perfmodel.profiles.MethodProfile` (``None`` for methods
  without a vectorization model, such as the reference executor),
* ``executor`` — the numeric fast path invoked by
  :meth:`repro.core.plan.CompiledPlan.run` (``None`` means the generic
  tiling/reference path applies),
* capability flags (``supports_simulation``, ``requires_linear``,
  ``uses_unroll``, ``uses_schedule``) consumed by the plan compiler.

Built-in methods register themselves when their defining module is imported
(:mod:`repro.methods` pulls in all of them); new methods register with the
:func:`register_method` decorator::

    from repro.registry import register_method

    @register_method("mybackend", label="My Backend", figure_order=None)
    def profile_mybackend(spec, isa="avx2"):
        ...

After that, ``repro.plan(spec).method("mybackend")`` and
``repro.build_profile("mybackend", spec)`` work like any built-in — there is
no string ``if/elif`` dispatch anywhere.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: ``profile_builder(spec, **kwargs) -> MethodProfile``.  Keyword arguments
#: the builder does not declare are filtered out before the call, so builders
#: only declare what they use (``isa``, ``m``, ``shifts_reuse``, ...).
ProfileBuilder = Callable[..., Any]

#: ``executor(plan, grid, steps) -> np.ndarray`` where ``plan`` is the
#: :class:`~repro.core.plan.CompiledPlan` being run (duck-typed so executors
#: can live in leaf modules without importing the plan machinery).
Executor = Callable[..., Any]

#: ``describe_path(plan) -> str`` — one human-readable line for
#: :meth:`~repro.core.plan.CompiledPlan.explain`.
PathDescriber = Callable[[Any], str]


@dataclass(frozen=True)
class MethodDescriptor:
    """Everything the system knows about one execution method.

    Attributes
    ----------
    key:
        Registry key (``"folded"``, ``"dlt"``, ...).
    label:
        Display name used in the paper's figures and in reports.
    profile_builder:
        Builds the steady-state instruction profile; ``None`` if the method
        has no vectorization model (e.g. the reference executor).
    executor:
        Numeric fast path ``(plan, grid, steps) -> ndarray``; ``None`` means
        the generic path (tessellated tiles when a tiling is configured,
        reference arithmetic otherwise) is used.
    describe_path:
        Optional one-line description of the numeric path for
        :meth:`~repro.core.plan.CompiledPlan.explain`.
    supports_simulation:
        Whether the method can execute on the simulated SIMD machine
        (:meth:`~repro.core.plan.CompiledPlan.simulate`).
    simulation_dims:
        Grid dimensionalities the method's register-level schedule covers
        (``(1, 2, 3)`` for the built-in transpose/folded schedules).
        Normalised to that full set at registration time when a
        simulation-capable method does not declare one; plug-in methods with
        a narrower schedule declare theirs so
        :meth:`~repro.core.plan.PlanBuilder.compile` can reject mismatched
        stencils up front instead of deep inside a sweep.
    requires_linear:
        Whether the method refuses to *compile* for non-linear stencils.
        (Simulation always requires linearity; this flag is for methods whose
        numeric path itself is linear-only.)
    uses_unroll:
        Whether the method consumes the plan's temporal unrolling factor
        ``m``.
    uses_schedule:
        Whether the numeric executor needs a pre-built
        :class:`~repro.core.vectorized_folding.FoldingSchedule` (constructed
        exactly once per compiled plan).
    profile_only:
        The method exists as a performance model only (e.g. the SDSL
        baseline): it can be profiled through the registry but cannot be
        compiled into an executable plan.
    virtual:
        Label-only entries (e.g. the ``"tessellation"`` series of Figure 9)
        that cannot be compiled or profiled.
    figure_order:
        Position in the paper's method line-up (:data:`repro.methods.METHOD_KEYS`);
        ``None`` keeps the method out of the line-up without hiding it from
        the registry.
    description:
        Free-form one-liner for tables and ``explain()`` output.
    """

    key: str
    label: str
    profile_builder: Optional[ProfileBuilder] = None
    executor: Optional[Executor] = None
    describe_path: Optional[PathDescriber] = None
    supports_simulation: bool = False
    simulation_dims: Tuple[int, ...] = ()
    requires_linear: bool = False
    uses_unroll: bool = False
    uses_schedule: bool = False
    profile_only: bool = False
    virtual: bool = False
    figure_order: Optional[int] = None
    description: str = ""

    def profile(self, spec: Any, isa: str = "avx2", **kwargs: Any) -> Any:
        """Build the method's :class:`MethodProfile` for ``spec``.

        Keyword arguments not declared by the underlying builder are dropped,
        so callers can uniformly pass ``m=...`` and ``shifts_reuse=...`` and
        each method picks up exactly the knobs it understands.
        """
        if self.profile_builder is None:
            raise ValueError(
                f"method {self.key!r} has no steady-state instruction profile"
            )
        accepted = _accepted_keywords(self.profile_builder)
        call_kwargs = dict(kwargs)
        call_kwargs["isa"] = isa
        if accepted is not None:
            call_kwargs = {k: v for k, v in call_kwargs.items() if k in accepted}
        return self.profile_builder(spec, **call_kwargs)


def _accepted_keywords(fn: Callable[..., Any]) -> Optional[Tuple[str, ...]]:
    """Keyword names ``fn`` accepts, or ``None`` if it takes ``**kwargs``."""
    params = inspect.signature(fn).parameters
    names = []
    for i, (name, param) in enumerate(params.items()):
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            return None
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            continue
        if i == 0:
            continue  # the spec argument is always passed positionally
        names.append(name)
    return tuple(names)


#: Key → descriptor, in registration order.
_REGISTRY: Dict[str, MethodDescriptor] = {}


def register(descriptor: MethodDescriptor, overwrite: bool = False) -> MethodDescriptor:
    """Register ``descriptor``; raises on key collisions unless ``overwrite``."""
    key = descriptor.key.strip().lower()
    if not key:
        raise ValueError("method key must be a non-empty string")
    if key != descriptor.key:
        descriptor = replace(descriptor, key=key)
    if descriptor.supports_simulation and not descriptor.simulation_dims:
        descriptor = replace(descriptor, simulation_dims=(1, 2, 3))
    if descriptor.simulation_dims and not descriptor.supports_simulation:
        raise ValueError(
            f"method {key!r} declares simulation_dims but not supports_simulation"
        )
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"method {key!r} is already registered")
    _REGISTRY[key] = descriptor
    return descriptor


def register_method(
    key: str,
    *,
    label: str,
    executor: Optional[Executor] = None,
    describe_path: Optional[PathDescriber] = None,
    supports_simulation: bool = False,
    simulation_dims: Optional[Sequence[int]] = None,
    requires_linear: bool = False,
    uses_unroll: bool = False,
    uses_schedule: bool = False,
    profile_only: bool = False,
    figure_order: Optional[int] = None,
    description: str = "",
    overwrite: bool = False,
) -> Callable[[ProfileBuilder], ProfileBuilder]:
    """Decorator registering the decorated function as a method's profile builder."""

    def decorator(fn: ProfileBuilder) -> ProfileBuilder:
        register(
            MethodDescriptor(
                key=key,
                label=label,
                profile_builder=fn,
                executor=executor,
                describe_path=describe_path,
                supports_simulation=supports_simulation,
                simulation_dims=tuple(simulation_dims) if simulation_dims is not None else (),
                requires_linear=requires_linear,
                uses_unroll=uses_unroll,
                uses_schedule=uses_schedule,
                profile_only=profile_only,
                figure_order=figure_order,
                description=description,
            ),
            overwrite=overwrite,
        )
        return fn

    return decorator


def set_executor(
    key: str,
    executor: Optional[Executor],
    describe_path: Optional[PathDescriber] = None,
) -> None:
    """Attach (or replace) the numeric executor of an already registered method.

    Exists so executors can be registered from the module that defines their
    numeric machinery even when the profile builder lives elsewhere (the
    folded fast path is wired up by :mod:`repro.core.plan`, the DLT executor
    by :mod:`repro.baselines.dlt`).
    """
    descriptor = get_method(key)
    updated = replace(descriptor, executor=executor)
    if describe_path is not None:
        updated = replace(updated, describe_path=describe_path)
    _REGISTRY[descriptor.key] = updated


def unregister(key: str) -> None:
    """Remove a method (mainly for tests exercising plug-in registration)."""
    _REGISTRY.pop(key.strip().lower(), None)


def is_registered(key: str) -> bool:
    """Whether ``key`` names a registered method."""
    return key.strip().lower() in _REGISTRY


def get_method(key: str) -> MethodDescriptor:
    """Look up a descriptor; raises ``KeyError`` naming the known methods."""
    normalized = key.strip().lower()
    try:
        return _REGISTRY[normalized]
    except KeyError:
        known = tuple(k for k, d in _REGISTRY.items() if not d.virtual)
        raise KeyError(f"unknown method {key!r}; known: {known}") from None


def simulation_support() -> Dict[int, Tuple[str, ...]]:
    """Dimensionality → keys of the methods whose schedules can simulate it.

    Consumed by the plan compiler's error messages so that a dims/method
    mismatch names the alternatives instead of failing deep inside a sweep.
    """
    support: Dict[int, List[str]] = {}
    for key, descriptor in _REGISTRY.items():
        if not descriptor.supports_simulation:
            continue
        for dims in descriptor.simulation_dims:
            support.setdefault(dims, []).append(key)
    return {dims: tuple(keys) for dims, keys in sorted(support.items())}


def method_keys() -> Tuple[str, ...]:
    """Keys of the paper's method line-up, in figure order."""
    ordered = sorted(
        (d for d in _REGISTRY.values() if d.figure_order is not None),
        key=lambda d: d.figure_order,
    )
    return tuple(d.key for d in ordered)


def tunable_method_keys(linear: Optional[bool] = None) -> Tuple[str, ...]:
    """Keys of the line-up methods an autotuner can both score and compile.

    The default method axis of :class:`repro.autotune.SearchSpace`: figure-order
    methods with a profile builder, excluding model-only (``profile_only``) and
    label-only (``virtual``) entries.  With ``linear=False`` the methods whose
    numeric path requires a linear stencil are dropped as well.
    """
    ordered = sorted(
        (
            d
            for d in _REGISTRY.values()
            if d.figure_order is not None
            and d.profile_builder is not None
            and not d.profile_only
            and not d.virtual
        ),
        key=lambda d: d.figure_order,
    )
    if linear is False:
        ordered = [d for d in ordered if not d.requires_linear]
    return tuple(d.key for d in ordered)


def registered_keys() -> Tuple[str, ...]:
    """Every registered key (including virtual labels), in registration order."""
    return tuple(_REGISTRY)


def method_labels() -> Dict[str, str]:
    """Key → display label for every registered method."""
    return {key: descriptor.label for key, descriptor in _REGISTRY.items()}


def label_for(key: str, default: Optional[str] = None) -> str:
    """Display label of ``key``; falls back to ``default`` (if given) or raises."""
    normalized = key.strip().lower()
    if normalized not in _REGISTRY:
        if default is not None:
            return default
        raise KeyError(f"unknown method {key!r}")
    return _REGISTRY[normalized].label
