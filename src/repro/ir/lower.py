"""Lowering: register-level folding schedules → :class:`~repro.ir.ops.ScheduleIR`.

Lowering runs the schedule's own per-block pipeline pieces
(:meth:`~repro.core.vectorized_folding.FoldingSchedule._sweep_1d_block`,
``_sweep_2d_vertical`` / ``_sweep_3d_vertical``,
``_sweep_square_horizontal``, ``_sweep_square_store``) once against a
:class:`~repro.trace.recorder.TraceRecorder`, so the IR and the interpreted
sweeps execute the *same* schedule code and cannot drift apart.  The result
is produced once per ``(schedule, isa, dims)`` — recording is symbolic, its
cost is independent of any grid size.

Memory tags
-----------
* 1-D (transpose layout): loads ``("set", delta, j)`` — register ``j`` of the
  vector set ``delta`` sets away; stores ``("set", j)``.
* 2-D / 3-D (square pipeline): loads ``("row", dz, s)`` — the row vector at
  plane offset ``dz`` and row offset ``s`` from the square's origin (``dz``
  is always 0 for 2-D schedules); stores ``("out_row", oi)``; cross-block
  inputs ``("vt", delta, ci, k)`` — transposed column ``k`` of materialised
  counterpart ``ci`` of the square ``delta`` column-blocks away.
"""

from __future__ import annotations

from repro.ir.ops import ScheduleIR
from repro.simd.isa import IsaSpec

__all__ = ["lower_schedule"]


def lower_schedule(schedule, isa: IsaSpec, transpose_back: bool = True) -> ScheduleIR:
    """Lower ``schedule`` for ``isa`` into a typed :class:`ScheduleIR`.

    Parameters
    ----------
    schedule:
        A :class:`~repro.core.vectorized_folding.FoldingSchedule` (1-D, 2-D
        or 3-D).
    isa:
        Target instruction set.
    transpose_back:
        Whether the square pipelines restore row orientation on store (the
        weighted transpose); ignored for 1-D schedules, which always stay in
        the transpose layout.

    Raises
    ------
    ValueError
        When the folded radius exceeds the vector length (the assembled
        vector / square constructions support ``radius <= vl``) or the
        dimensionality is unsupported.
    """
    # Imported here: repro.trace's package façade re-exports the IR executor,
    # so a module-level import would be circular.
    from repro.trace.recorder import TraceRecorder

    vl = isa.vector_lanes
    if schedule.dims not in (1, 2, 3):
        raise ValueError("lowering supports 1-D, 2-D and 3-D schedules only")
    if schedule.radius > vl:
        raise ValueError(
            f"folded radius {schedule.radius} exceeds the vector length {vl}; "
            "the register-level schedules support radius <= vl"
        )
    rec = TraceRecorder(isa)
    source = f"{schedule.spec.name} m={schedule.m} {isa.name}"

    if schedule.dims == 1:
        rec.begin_segment("prologue", trip="once")
        weight_vecs = schedule._sweep_1d_weight_vectors(rec)
        rec.begin_segment("block", trip="block")
        schedule._sweep_1d_block(
            rec,
            weight_vecs,
            load=lambda delta, j: rec.emit_load(("set", delta, j)),
            store=lambda j, vec: rec.emit_store(("set", j), vec),
        )
        return ScheduleIR(
            isa=isa,
            dims=1,
            m=schedule.m,
            nregs=rec.nregs,
            segments=rec.segments,
            transpose_back=True,
            source=source,
        )

    rec.begin_segment("prologue", trip="once")
    weights = schedule._sweep_square_weight_vectors(rec)
    rec.begin_segment("vertical", trip="vertical")
    if schedule.dims == 2:
        vt = schedule._sweep_2d_vertical(
            rec, weights, load_row=lambda s: rec.emit_load(("row", 0, s))
        )
    else:
        vt = schedule._sweep_3d_vertical(
            rec, weights, load_row=lambda dz, s: rec.emit_load(("row", dz, s))
        )
    vt_out = tuple(tuple(reg.vid for reg in cols) for cols in vt)
    rec.begin_segment("horizontal", trip="horizontal")
    n_mat = len(vt)

    def stage_inputs(delta: int):
        return [
            [rec.emit_input(("vt", delta, ci, k)) for k in range(vl)]
            for ci in range(n_mat)
        ]

    prev_t, cur_t, next_t = stage_inputs(-1), stage_inputs(0), stage_inputs(+1)
    out_cols = schedule._sweep_square_horizontal(rec, weights, prev_t, cur_t, next_t)
    schedule._sweep_square_store(
        rec,
        out_cols,
        store=lambda oi, vec: rec.emit_store(("out_row", oi), vec),
        transpose_back=transpose_back,
    )
    return ScheduleIR(
        isa=isa,
        dims=schedule.dims,
        m=schedule.m,
        nregs=rec.nregs,
        segments=rec.segments,
        vt_out=vt_out,
        transpose_back=transpose_back,
        source=source,
    )
