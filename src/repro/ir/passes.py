"""The optimizing pass pipeline over :class:`~repro.ir.ops.ScheduleIR`.

Every pass is a pure function ``ScheduleIR -> ScheduleIR`` registered under a
short name; :class:`PassManager` runs a pipeline and reports the per-pass
instruction-count deltas.  The contract every pass must honour:

* **bit-identical replay** — the optimized program must produce exactly the
  values of the unoptimized one (all rewrites here are algebraic identities
  of the simulated ``float64`` semantics: merged pure ops, composed lane
  maps, and ``a*b + c`` which the simulated FMA evaluates with the same two
  roundings as the mul/add pair);
* **never more work** — group-wise instruction counts (arithmetic,
  data-organisation, memory) and register pressure may only stay or shrink.

Scoping rule: values defined in a ``once`` (prologue) segment are available
everywhere; values defined in a per-block segment exist only within that
segment's instance (cross-block dataflow goes through ``input`` tags), so
merges and compositions never cross per-block segment boundaries.

The built-in passes:

``cse``
    Common-subexpression elimination on pure data-organisation ops
    (broadcast constants and decoded shuffles/blends/permutes).
``coalesce``
    Roll/shift coalescing: composes chained lane maps.  A lane permute of a
    lane permute always folds into one; a lane permute of a two-source
    select (the blend+rotate pair that assembles the cross-block neighbour
    operands of the 1-D vector-set sweep) folds into a single two-source
    permute where the ISA has one (``vpermt2pd`` — AVX-512).  Degenerate
    two-source selects collapse to single-source permutes.
``fuse-fma``
    Multiply–add fusion: ``add(mul(a, b), c) → fma(a, b, c)`` for
    single-use multiplies, where the ISA has FMA.
``dce``
    Dead-code elimination: drops ops (transitively) unread by any store,
    cross-segment output or live stage input — including the prologue
    broadcasts of zero kernel entries and stage inputs nobody consumes.
``hoist``
    Loop-invariant code motion: pure per-block ops whose operands are all
    block-invariant (prologue values, or themselves hoisted) move into the
    hoisted prologue, which the replay executor evaluates once at build
    time and the kernel backend bakes in as namespace constants.
``pipeline``
    Software-pipelines the vertical/horizontal stage boundary of 2-D/3-D
    programs: where the dependency graph proves the vertical loads
    independent of the horizontal stores (disjoint ``MemoryRef`` spaces),
    the two stages merge into one ``pipelined`` segment the scheduler can
    interleave, plus a ``prime`` segment holding a renamed copy of the
    vertical stage that accounts for the two shifts-reuse priming squares
    of each block row.  Per-sweep counts are exactly preserved.
``reschedule``
    Graph-driven list scheduling over each per-block segment's
    :class:`~repro.ir.dependency.DependencyGraph`: the ready set is the
    nodes with zero unresolved dependencies, and the priority combines the
    spill-aware freed-operands heuristic (primary), the latency-weighted
    critical-path height, and the port-pressure balance of the cost model's
    timing table.  ``peak_live``/``spills`` are re-derived with the
    :meth:`~repro.simd.machine.SimdMachine.note_live_registers` semantics
    (one spill store + reload per value exceeding the architectural register
    count), never exceeding the recorded pressure.
``split-accum``
    PyPy's ``AccumInfo`` idiom: breaks single-accumulator reduction chains
    of at least :data:`SPLIT_ACCUM_MIN_LINKS` links into parallel partial
    accumulators merged by a balanced tree after the chain, eliminating the
    serial FMA/add dependence.  **Not** in :data:`DEFAULT_PASSES`: summation
    reassociation changes the rounding order, so the pass trades the strict
    bit-identity contract for a shorter critical path (``max`` chains stay
    bit-exact) and must be opted into explicitly.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.dependency import (
    DependencyGraph,
    MemoryRef,
    _vt_read,
    program_critical_path,
)
from repro.ir.ops import IrOp, IrSegment, ScheduleIR
from repro.simd.isa import InstructionClass
from repro.simd.machine import InstructionCounts

__all__ = [
    "PassManager",
    "PassReport",
    "DEFAULT_PASSES",
    "SPLIT_ACCUM_MIN_LINKS",
    "pipeline_key",
    "common_subexpression_elimination",
    "coalesce_shuffles",
    "fuse_multiply_add",
    "dead_code_elimination",
    "hoist_loop_invariants",
    "software_pipeline_stages",
    "split_accumulators",
    "reschedule_register_pressure",
    "resolve_passes",
]


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _apply_alias(ir: ScheduleIR, alias: Dict[int, int]) -> ScheduleIR:
    """Rewrite every operand (and ``vt_out``) through ``alias``."""
    if not alias:
        return ir

    def resolve(vid: int) -> int:
        while vid in alias:
            vid = alias[vid]
        return vid

    segments = []
    for seg in ir.segments:
        ops = []
        for op in seg.ops:
            srcs = tuple(resolve(s) for s in op.srcs)
            ops.append(replace(op, srcs=srcs) if srcs != op.srcs else op)
        segments.append(seg.with_ops(ops))
    vt_out = tuple(tuple(resolve(v) for v in cols) for cols in ir.vt_out)
    return ir.with_segments(segments, vt_out=vt_out)


def _shuffle_class(lane_map: Sequence[int], vl: int) -> InstructionClass:
    """Bill a single-source lane map as in-lane SHUFFLE or lane-crossing PERMUTE."""
    if all(m // 2 == l // 2 for l, m in enumerate(lane_map)):
        return InstructionClass.SHUFFLE
    return InstructionClass.PERMUTE


# --------------------------------------------------------------------------- #
# cse
# --------------------------------------------------------------------------- #
def _cse_key(op: IrOp) -> Optional[Tuple]:
    if op.opcode == "const":
        # copysign distinguishes -0.0 from 0.0 (bit-identity matters).
        return ("const", float(op.imm), math.copysign(1.0, float(op.imm)))
    if op.opcode in ("shuf1", "shuf2"):
        return (op.opcode, op.srcs, tuple(op.imm))
    return None


def common_subexpression_elimination(ir: ScheduleIR) -> ScheduleIR:
    """Merge identical pure data-organisation ops (and broadcast constants).

    Prologue values are block-invariant, so their expressions stay available
    in every later segment; per-block expressions are only merged within
    their own segment.
    """
    alias: Dict[int, int] = {}
    prologue_table: Dict[Tuple, int] = {}
    segments: List[IrSegment] = []
    for seg in ir.segments:
        table = dict(prologue_table)
        ops: List[IrOp] = []
        for op in seg.ops:
            srcs = tuple(alias.get(s, s) for s in op.srcs)
            if srcs != op.srcs:
                op = replace(op, srcs=srcs)
            key = _cse_key(op)
            if key is not None:
                prev = table.get(key)
                if prev is not None:
                    alias[op.dst] = prev
                    continue
                table[key] = op.dst
                if seg.trip == "once":
                    prologue_table[key] = op.dst
            ops.append(op)
        segments.append(seg.with_ops(ops))
    return _apply_alias(ir.with_segments(segments), alias)


# --------------------------------------------------------------------------- #
# coalesce
# --------------------------------------------------------------------------- #
def coalesce_shuffles(ir: ScheduleIR) -> ScheduleIR:
    """Compose chained lane maps into fewer data-organisation ops.

    Iterates to a fixpoint: every round resolves aliases, composes
    ``shuf1∘shuf1`` (both ISAs) and ``shuf1∘shuf2`` (only where the ISA has
    a two-source lane-crossing permute), collapses degenerate two-source
    selects to single-source permutes, and drops identity permutes.
    """
    vl = ir.vl
    identity = tuple(range(vl))
    two_src_ok = getattr(ir.isa, "has_two_source_permute", False)

    changed = True
    rounds = 0
    while changed and rounds < 8:
        changed = False
        rounds += 1
        defs: Dict[int, Tuple[int, str, IrOp]] = {}
        for si, seg in enumerate(ir.segments):
            for op in seg.ops:
                if op.dst >= 0:
                    defs[op.dst] = (si, seg.trip, op)
        alias: Dict[int, int] = {}
        segments: List[IrSegment] = []
        for si, seg in enumerate(ir.segments):
            ops: List[IrOp] = []
            for op in seg.ops:
                srcs = tuple(alias.get(s, s) for s in op.srcs)
                if srcs != op.srcs:
                    op = replace(op, srcs=srcs)

                if op.opcode == "shuf2":
                    lane_map = tuple(op.imm)
                    if all(m < vl for m in lane_map):
                        op = replace(
                            op,
                            opcode="shuf1",
                            srcs=(op.srcs[0],),
                            imm=lane_map,
                            cls=_shuffle_class(lane_map, vl),
                        )
                        changed = True
                    elif all(m >= vl for m in lane_map):
                        folded = tuple(m - vl for m in lane_map)
                        op = replace(
                            op,
                            opcode="shuf1",
                            srcs=(op.srcs[1],),
                            imm=folded,
                            cls=_shuffle_class(folded, vl),
                        )
                        changed = True

                if op.opcode == "shuf1":
                    inner = defs.get(op.srcs[0])
                    in_scope = inner is not None and (
                        inner[1] == "once" or inner[0] == si
                    )
                    if in_scope:
                        _si, _trip, inner_op = inner
                        outer_map = tuple(op.imm)
                        if inner_op.opcode == "shuf1":
                            inner_map = tuple(inner_op.imm)
                            composed = tuple(inner_map[j] for j in outer_map)
                            op = replace(
                                op,
                                srcs=inner_op.srcs,
                                imm=composed,
                                cls=_shuffle_class(composed, vl),
                            )
                            changed = True
                        elif inner_op.opcode == "shuf2" and two_src_ok:
                            inner_map = tuple(inner_op.imm)
                            composed = tuple(inner_map[j] for j in outer_map)
                            op = replace(
                                op,
                                opcode="shuf2",
                                srcs=inner_op.srcs,
                                imm=composed,
                                cls=InstructionClass.PERMUTE,
                            )
                            changed = True
                    if op.opcode == "shuf1" and tuple(op.imm) == identity:
                        alias[op.dst] = op.srcs[0]
                        changed = True
                        continue
                ops.append(op)
            segments.append(seg.with_ops(ops))
        ir = _apply_alias(ir.with_segments(segments), alias)
    return ir


# --------------------------------------------------------------------------- #
# fuse-fma
# --------------------------------------------------------------------------- #
def fuse_multiply_add(ir: ScheduleIR) -> ScheduleIR:
    """Fuse ``add(mul(a, b), c)`` into ``fma(a, b, c)`` for single-use muls.

    The simulated FMA evaluates ``a*b + c`` with the same elementwise
    roundings as the mul/add pair, so the rewrite is bit-identical.  Gated
    on the ISA having FMA.
    """
    if not getattr(ir.isa, "has_fma", True):
        return ir
    uses: Counter = Counter()
    for seg in ir.segments:
        for op in seg.ops:
            uses.update(op.srcs)
    for cols in ir.vt_out:
        uses.update(cols)

    segments: List[IrSegment] = []
    for seg in ir.segments:
        def_at: Dict[int, int] = {}
        for i, op in enumerate(seg.ops):
            if op.dst >= 0:
                def_at[op.dst] = i
        fused_muls: set = set()
        rewritten: Dict[int, IrOp] = {}
        for i, op in enumerate(seg.ops):
            if op.opcode != "add":
                continue
            for pick, other in ((0, 1), (1, 0)):
                vid = op.srcs[pick]
                j = def_at.get(vid)
                if j is None or j in fused_muls:
                    continue
                mul = seg.ops[j]
                if mul.opcode != "mul" or uses[vid] != 1:
                    continue
                rewritten[i] = IrOp(
                    "fma",
                    op.dst,
                    (mul.srcs[0], mul.srcs[1], op.srcs[other]),
                    cls=InstructionClass.FMA,
                    lanes=op.lanes,
                )
                fused_muls.add(j)
                break
        if not fused_muls:
            segments.append(seg)
            continue
        ops = [
            rewritten.get(i, op)
            for i, op in enumerate(seg.ops)
            if i not in fused_muls
        ]
        segments.append(seg.with_ops(ops))
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# dce
# --------------------------------------------------------------------------- #
def dead_code_elimination(ir: ScheduleIR) -> ScheduleIR:
    """Drop ops whose results no store, stage input or cross-segment use reads.

    Walks the segments in reverse execution order, so the liveness of a
    horizontal stage input propagates to the vertical-phase register backing
    its ``("vt", delta, ci, k)`` tag, and prologue broadcasts survive only if
    some per-block op still reads them.  ``prime`` segments (the accounting
    copies of the vertical stage emitted by the ``pipeline`` pass) are kept
    verbatim — they must mirror the pipelined vertical work exactly — but
    their operand reads still count as live.
    """
    live: set = set()
    kept: Dict[int, List[IrOp]] = {}
    for si in range(len(ir.segments) - 1, -1, -1):
        seg = ir.segments[si]
        if seg.trip == "prime":
            for op in seg.ops:
                live.update(op.srcs)
            kept[si] = list(seg.ops)
            continue
        ops: List[IrOp] = []
        for op in reversed(seg.ops):
            if op.opcode == "store":
                live.update(op.srcs)
                ops.append(op)
                continue
            if op.dst not in live:
                continue
            live.update(op.srcs)
            if op.opcode == "input" and isinstance(op.tag, tuple) and op.tag[0] == "vt":
                _, _delta, ci, k = op.tag
                live.add(ir.vt_out[ci][k])
            ops.append(op)
        ops.reverse()
        kept[si] = ops
    segments = [seg.with_ops(kept[si]) for si, seg in enumerate(ir.segments)]
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# reschedule
# --------------------------------------------------------------------------- #
def reschedule_register_pressure(ir: ScheduleIR) -> ScheduleIR:
    """Graph-driven list scheduling of each per-block segment.

    Schedules from the segment's :class:`~repro.ir.dependency.DependencyGraph`
    (def-use edges, memory-alias edges, stage-input edges), so any order it
    emits is a correct execution order even for software-pipelined merged
    segments.  Among the ready nodes the priority is, in order:

    1. **freed − defined** — the spill-aware pressure heuristic: issue the op
       freeing the most last-use operands per value it defines;
    2. **critical-path height** — the latency-weighted remaining chain below
       the node (longest chain first keeps the latency bound tight);
    3. **port balance** — prefer the op whose issue ports are currently the
       least subscribed under the cost model's water-fill accounting;
    4. recorded order (determinism).

    The segment's ``peak_live``/``spills`` are then re-derived from the
    scheduled IR with the
    :meth:`~repro.simd.machine.SimdMachine.note_live_registers` semantics —
    counting the values the segment holds from earlier segments (the
    broadcast weights) as live throughout — and clamped to the recorded
    pressure so the optimizer can only improve on the interpreted sweep.
    """
    keep_all = {vid for cols in ir.vt_out for vid in cols}
    segments: List[IrSegment] = []
    for seg in ir.segments:
        if seg.trip in ("once", "prime") or not seg.ops:
            segments.append(seg)
            continue
        ops = seg.ops
        n = len(ops)
        graph = DependencyGraph(ir, seg)
        heights = graph.heights()
        local = seg.defined()
        # vt exports stay live past a stage-form segment's end (the
        # horizontal stage reads them later); in a merged pipelined segment
        # their in-segment input reads are the last consumers instead.
        keep = keep_all & local if seg.trip != "pipelined" else set()
        # Per-op local reads: operands plus the hidden vt read of stage
        # inputs (present when the pipeline pass merged the stages).
        reads: List[List[int]] = []
        for op in ops:
            r = [s for s in op.srcs if s in local]
            vt = _vt_read(op, ir)
            if vt is not None and vt in local:
                r.append(vt)
            reads.append(r)
        external = {s for op in ops for s in op.srcs} - local
        remaining: Counter = Counter()
        for r in reads:
            remaining.update(r)
        for vid in keep:
            remaining[vid] += 1  # held live to the end of the segment
        ndeps = [len(p) for p in graph.preds]
        ready = [i for i in range(n) if ndeps[i] == 0]
        port_load: Dict[str, float] = {}
        order: List[int] = []
        live = 0
        peak = 0
        while ready:
            best = None
            best_score = None
            for i in ready:
                op = ops[i]
                refs = Counter(reads[i])
                freed = sum(1 for s, c in refs.items() if remaining[s] == c)
                adds = 1 if op.dst >= 0 else 0
                balance = 0.0
                if op.cls is not None:
                    timing = ir.isa.timing(op.cls)
                    if timing.ports:
                        balance = -min(port_load.get(p, 0.0) for p in timing.ports)
                score = (freed - adds, heights[i], balance, -i)
                if best_score is None or score > best_score:
                    best, best_score = i, score
            i = best
            ready.remove(i)
            op = ops[i]
            if op.cls is not None:
                timing = ir.isa.timing(op.cls)
                if timing.ports:
                    slot = min(timing.ports, key=lambda p: port_load.get(p, 0.0))
                    port_load[slot] = port_load.get(slot, 0.0) + timing.rthroughput
            adds = 1 if op.dst >= 0 else 0
            peak = max(peak, live + adds)
            live += adds
            for s in reads[i]:
                remaining[s] -= 1
                if remaining[s] == 0:
                    live -= 1
            order.append(i)
            for j in graph.succs[i]:
                ndeps[j] -= 1
                if ndeps[j] == 0:
                    ready.append(j)
        if len(order) != n:  # pragma: no cover - defensive (cyclic IR)
            raise RuntimeError(f"segment {seg.name!r} could not be scheduled")
        ir_peak = len(external) + peak
        new_peak = min(seg.peak_live, ir_peak) if seg.peak_live else 0
        ir_spills = max(0, ir_peak - ir.isa.registers)
        new_spills = min(seg.spills, ir_spills)
        scheduled = IrSegment(
            name=seg.name,
            trip=seg.trip,
            ops=[ops[i] for i in order],
            peak_live=new_peak,
            spills=new_spills,
        )
        segments.append(scheduled)
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# hoist
# --------------------------------------------------------------------------- #
#: Opcodes safe to evaluate at build time: pure functions of their operands
#: (no memory traffic, no stage inputs).
_HOISTABLE_OPCODES = ("const", "shuf1", "shuf2", "mul", "add", "sub", "max", "fma")


def hoist_loop_invariants(ir: ScheduleIR) -> ScheduleIR:
    """Move block-invariant pure ops into the hoisted prologue.

    An op is invariant when it is pure (:data:`_HOISTABLE_OPCODES`) and every
    operand is defined in a ``once`` segment — or is itself hoisted.  Hoisted
    ops run once per sweep instead of once per block (the replay executor
    evaluates the prologue at compile time and the kernel backend bakes its
    values in as namespace constants), so group-wise counts only shrink.

    The lowering already computes the stencil weights in the prologue, so on
    freshly lowered programs this is a safety net; its concrete feed is the
    per-block constants other passes introduce — e.g. ``split-accum``'s
    partial-accumulator zero initialisers — and custom pipelines.
    """
    if not ir.segments or ir.segments[0].trip != "once":
        return ir
    once_defs: set = set()
    for seg in ir.segments:
        if seg.trip == "once":
            once_defs |= seg.defined()
    hoisted_ops: List[IrOp] = []
    hoisted: set = set()
    segments: List[IrSegment] = []
    for seg in ir.segments:
        if seg.trip in ("once", "prime") or not seg.ops:
            segments.append(seg)
            continue
        kept: List[IrOp] = []
        for op in seg.ops:
            if (
                op.opcode in _HOISTABLE_OPCODES
                and op.dst >= 0
                and all(s in once_defs or s in hoisted for s in op.srcs)
            ):
                hoisted.add(op.dst)
                hoisted_ops.append(op)
            else:
                kept.append(op)
        segments.append(seg.with_ops(kept) if len(kept) != len(seg.ops) else seg)
    if not hoisted_ops:
        return ir
    prologue = segments[0].with_ops(list(segments[0].ops) + hoisted_ops)
    return ir.with_segments([prologue] + segments[1:])


# --------------------------------------------------------------------------- #
# pipeline
# --------------------------------------------------------------------------- #
def software_pipeline_stages(ir: ScheduleIR) -> ScheduleIR:
    """Software-pipeline the vertical/horizontal stage boundary.

    Gated on 2-D/3-D programs with the canonical ``[prologue, vertical,
    horizontal]`` stage structure, and on the alias analysis proving every
    vertical memory access independent of every horizontal store (their
    :class:`~repro.ir.dependency.MemoryRef` spaces are disjoint — loads
    gather from the input grid, stores scatter to the output grid).  When
    the proof fails, or the structure is anything else, the pass is the
    identity.

    The rewrite merges the two stages into one ``pipelined`` segment (trip
    count: once per square) whose dependency graph lets the scheduler
    interleave iteration *i*'s horizontal ops with *i+1*'s vertical loads,
    and emits a ``prime`` segment — a register-renamed copy of the vertical
    stage, never executed by the batched replay — billing the two
    shifts-reuse priming squares of each block row (trip count: twice per
    block row).  Per-sweep instruction counts are exactly preserved:
    ``vertical·(ncb+2) + horizontal·ncb == pipelined·ncb + prime·2``.
    """
    if ir.dims < 2:
        return ir
    if [seg.trip for seg in ir.segments] != ["once", "vertical", "horizontal"]:
        return ir
    vertical, horizontal = ir.segments[1], ir.segments[2]
    if any(op.opcode == "store" for op in vertical.ops):
        return ir
    v_refs = [MemoryRef.from_op(op) for op in vertical.ops if op.is_memory]
    h_stores = [MemoryRef.from_op(op) for op in horizontal.ops if op.opcode == "store"]
    if any(a.may_alias(b) for a in v_refs for b in h_stores):
        return ir
    rename: Dict[int, int] = {}
    nregs = ir.nregs
    prime_ops: List[IrOp] = []
    for op in vertical.ops:
        srcs = tuple(rename.get(s, s) for s in op.srcs)
        dst = op.dst
        if dst >= 0:
            rename[dst] = nregs
            dst = nregs
            nregs += 1
        prime_ops.append(replace(op, dst=dst, srcs=srcs))
    prime = IrSegment(
        name="prime",
        trip="prime",
        ops=prime_ops,
        peak_live=vertical.peak_live,
        spills=vertical.spills,
    )
    merged = IrSegment(
        name="pipelined",
        trip="pipelined",
        ops=list(vertical.ops) + list(horizontal.ops),
        peak_live=max(vertical.peak_live, horizontal.peak_live),
        spills=vertical.spills + horizontal.spills,
    )
    out = ir.with_segments([ir.segments[0], prime, merged])
    return replace(out, nregs=nregs)


# --------------------------------------------------------------------------- #
# split-accum
# --------------------------------------------------------------------------- #
#: Minimum reduction-chain length (links) before ``split-accum`` fires.  The
#: gate is the profitability condition: a chain of eight 4-cycle FMAs is a
#: 32-cycle serial dependence, far above the port-pressure bound of the same
#: eight ops, so splitting pays; shorter chains are latency-hidden by the
#: out-of-order window and splitting them would only add merge work.
SPLIT_ACCUM_MIN_LINKS = 8


def _chain_kind(op: IrOp) -> Optional[str]:
    if op.opcode in ("add", "fma"):
        return "sum"
    if op.opcode == "max":
        return "max"
    return None


def _acc_positions(op: IrOp) -> Tuple[int, ...]:
    if op.opcode == "fma":
        return (2,)
    if op.opcode in ("add", "max"):
        return (0, 1)
    return ()


def split_accumulators(ir: ScheduleIR) -> ScheduleIR:
    """Split long single-accumulator reduction chains into parallel partials.

    PyPy's ``AccumInfo`` idiom: a chain of ``n ≥`` :data:`SPLIT_ACCUM_MIN_LINKS`
    single-use combine links (``add``/``fma`` summation, or ``max``) is
    re-associated into ``k = ⌈n/(MIN_LINKS−1)⌉`` partial accumulators — link
    ``t`` feeds partial ``t mod k`` — merged by a balanced tree after the
    chain, cutting the serial dependence from ``n`` links to ``⌈n/k⌉ + log₂k``.
    Partial 0 continues from the chain's original seed; summation partials
    ``1..k−1`` start from a fresh ``const 0.0`` (which ``hoist`` then moves
    to the prologue), while ``max`` partials self-start from their first
    operand (``max(x, x) = x``).

    The resulting partial chains and merge tree are all shorter than the
    firing threshold, so the pass is idempotent.  Summation re-association
    changes the floating-point rounding order: the pass is deliberately
    **not** count-monotone (``k−1`` merges + initialisers) and not
    bit-identical for ``sum`` chains, which is why it is opt-in rather than
    part of :data:`DEFAULT_PASSES` (``max`` chains stay bit-exact).
    """
    uses: Counter = Counter()
    for seg in ir.segments:
        for op in seg.ops:
            uses.update(op.srcs)
    for cols in ir.vt_out:
        uses.update(cols)
    nregs = ir.nregs
    segments: List[IrSegment] = []
    for seg in ir.segments:
        if seg.trip in ("once", "prime") or not seg.ops:
            segments.append(seg)
            continue
        ops = list(seg.ops)
        def_at = {op.dst: i for i, op in enumerate(ops) if op.dst >= 0}
        prev_of: Dict[int, Tuple[int, int]] = {}
        for i, op in enumerate(ops):
            kind = _chain_kind(op)
            if kind is None:
                continue
            for pos in _acc_positions(op):
                s = op.srcs[pos]
                j = def_at.get(s)
                if j is None or j >= i:
                    continue
                if _chain_kind(ops[j]) != kind or uses[s] != 1:
                    continue
                if op.opcode in ("add", "max"):
                    # A reduction link folds one *non-chain* value into the
                    # accumulator; an op combining two same-kind single-use
                    # defs is a merge node (the shape this pass emits), not a
                    # link — skipping it keeps the pass idempotent.
                    other = op.srcs[1 - pos]
                    jo = def_at.get(other)
                    if (
                        jo is not None
                        and _chain_kind(ops[jo]) == kind
                        and uses[other] == 1
                    ):
                        continue
                prev_of[i] = (j, pos)
                break
        linked = {j for j, _pos in prev_of.values()}
        tails = [i for i in prev_of if i not in linked]
        inserts_before: Dict[int, List[IrOp]] = {}
        inserts_after: Dict[int, List[IrOp]] = {}
        replaced: Dict[int, IrOp] = {}
        for tail in sorted(tails):
            chain: List[int] = [tail]
            while chain[-1] in prev_of:
                chain.append(prev_of[chain[-1]][0])
            chain.reverse()
            n = len(chain)
            if n < SPLIT_ACCUM_MIN_LINKS:
                continue
            k = -(-n // (SPLIT_ACCUM_MIN_LINKS - 1))  # ceil division
            if k < 2:
                continue
            kind = _chain_kind(ops[tail])
            lanes = ops[tail].lanes
            acc: List[Optional[int]] = [None] * k
            init_ops: List[IrOp] = []
            for t, idx in enumerate(chain):
                op = replaced.get(idx, ops[idx])
                part = t % k
                if t == 0:
                    acc[part] = op.dst
                    continue
                pos = prev_of[idx][1]
                if acc[part] is None:
                    if kind == "max":
                        # max(x, x) = x: self-start the partial bit-exactly.
                        other = op.srcs[1 - pos]
                        srcs = list(op.srcs)
                        srcs[pos] = other
                    else:
                        zero = nregs
                        nregs += 1
                        init_ops.append(
                            IrOp(
                                "const",
                                zero,
                                imm=0.0,
                                cls=InstructionClass.BROADCAST,
                                lanes=lanes,
                            )
                        )
                        srcs = list(op.srcs)
                        srcs[pos] = zero
                else:
                    srcs = list(op.srcs)
                    srcs[pos] = acc[part]
                replaced[idx] = replace(op, srcs=tuple(srcs))
                acc[part] = op.dst
            # The chain's final register must now come from the merge tree.
            final_vid = ops[tail].dst
            fresh_tail = nregs
            nregs += 1
            tail_op = replaced[tail]
            replaced[tail] = replace(tail_op, dst=fresh_tail)
            acc[acc.index(tail_op.dst)] = fresh_tail
            merge_opcode = "add" if kind == "sum" else "max"
            merge_cls = InstructionClass.ARITH if kind == "sum" else InstructionClass.MAX
            merge_ops: List[IrOp] = []
            level = [v for v in acc if v is not None]
            while len(level) > 1:
                nxt: List[int] = []
                for a in range(0, len(level) - 1, 2):
                    last = len(level) <= 2 and not nxt
                    dst = final_vid if last else nregs
                    if not last:
                        nregs += 1
                    merge_ops.append(
                        IrOp(
                            merge_opcode,
                            dst,
                            (level[a], level[a + 1]),
                            cls=merge_cls,
                            lanes=lanes,
                        )
                    )
                    nxt.append(dst)
                if len(level) % 2:
                    nxt.append(level[-1])
                level = nxt
            inserts_before.setdefault(chain[0], []).extend(init_ops)
            inserts_after.setdefault(tail, []).extend(merge_ops)
        if not inserts_after:
            segments.append(seg)
            continue
        new_ops: List[IrOp] = []
        for i, op in enumerate(ops):
            new_ops.extend(inserts_before.get(i, ()))
            new_ops.append(replaced.get(i, op))
            new_ops.extend(inserts_after.get(i, ()))
        segments.append(seg.with_ops(new_ops))
    if nregs == ir.nregs:
        return ir
    return replace(ir.with_segments(segments), nregs=nregs)


# --------------------------------------------------------------------------- #
# pass manager
# --------------------------------------------------------------------------- #
_PASS_REGISTRY: Dict[str, Callable[[ScheduleIR], ScheduleIR]] = {
    "cse": common_subexpression_elimination,
    "coalesce": coalesce_shuffles,
    "fuse-fma": fuse_multiply_add,
    "dce": dead_code_elimination,
    "hoist": hoist_loop_invariants,
    "pipeline": software_pipeline_stages,
    "split-accum": split_accumulators,
    "reschedule": reschedule_register_pressure,
}

#: Default pipeline order: merge and compose first (their orphans feed DCE),
#: clean up, hoist what became block-invariant, then re-schedule what is left
#: from the dependency graph.  ``pipeline`` (changes the segment structure
#: consumers see) and ``split-accum`` (trades bit-identity of summation
#: chains for a shorter critical path) are registered but opt-in.
DEFAULT_PASSES: Tuple[str, ...] = ("cse", "coalesce", "fuse-fma", "dce", "hoist", "reschedule")

PassLike = Union[str, Callable[[ScheduleIR], ScheduleIR]]


def resolve_passes(
    passes: Union[bool, Sequence[PassLike], None],
) -> Tuple[Tuple[str, Callable], ...]:
    """Normalise a pass selection to ``((name, fn), ...)``.

    ``True``/``None`` selects :data:`DEFAULT_PASSES`; a sequence may mix
    registered names and callables; ``False`` or an empty sequence is an
    empty pipeline.
    """
    if passes is True or passes is None:
        passes = DEFAULT_PASSES
    elif passes is False:
        passes = ()
    resolved = []
    for p in passes:
        if callable(p):
            resolved.append((getattr(p, "__name__", "custom"), p))
        else:
            key = str(p).strip().lower()
            if key not in _PASS_REGISTRY:
                raise KeyError(
                    f"unknown IR pass {p!r}; known: {', '.join(sorted(_PASS_REGISTRY))}"
                )
            resolved.append((key, _PASS_REGISTRY[key]))
    return tuple(resolved)


def pipeline_key(passes: Union[bool, Sequence[PassLike], None]) -> Tuple:
    """Hashable cache key for a pass selection.

    Registered passes key by name; custom callables key by the callable
    object itself (the key holds a reference, so a recycled ``id()`` can
    never alias two different same-named callables in a compiled-sweep
    cache).
    """
    key = []
    for name, fn in resolve_passes(passes):
        if _PASS_REGISTRY.get(name) is fn:
            key.append(name)
        else:
            key.append((name, fn))
    return tuple(key)


@dataclass(frozen=True)
class PassReport:
    """Static before/after accounting of one pass application.

    ``critical_path_before``/``after`` are the summed latency-weighted
    critical paths of the steady-state segments
    (:func:`repro.ir.dependency.program_critical_path`) around the pass —
    the serial-dependence bound the graph-enabled passes attack.
    """

    name: str
    counts_before: InstructionCounts
    counts_after: InstructionCounts
    peak_before: int
    peak_after: int
    spills_before: int
    spills_after: int
    critical_path_before: float = 0.0
    critical_path_after: float = 0.0

    @property
    def removed(self) -> float:
        """Static instructions removed by the pass."""
        return self.counts_before.total - self.counts_after.total

    def describe(self) -> str:
        """One-line summary for ``explain()`` output."""
        delta = self.removed
        bits = [f"{self.name} {-delta:+g} ops" if delta else f"{self.name} ±0 ops"]
        if self.peak_after != self.peak_before:
            bits.append(f"peak {self.peak_before}→{self.peak_after}")
        if self.spills_after != self.spills_before:
            bits.append(f"spills {self.spills_before}→{self.spills_after}")
        if self.critical_path_after != self.critical_path_before:
            bits.append(
                f"cp {self.critical_path_before:g}→{self.critical_path_after:g}cyc"
            )
        return " ".join(bits)


class PassManager:
    """Runs a pass pipeline over a :class:`ScheduleIR` and reports deltas."""

    def __init__(self, passes: Union[bool, Sequence[PassLike], None] = None):
        self.passes = resolve_passes(passes)

    @staticmethod
    def _snapshot(ir: ScheduleIR) -> Tuple[InstructionCounts, int, int]:
        return ir.static_counts(), ir.peak_live, sum(seg.spills for seg in ir.segments)

    def run(self, ir: ScheduleIR) -> Tuple[ScheduleIR, Tuple[PassReport, ...]]:
        """Apply the pipeline; returns the optimized IR and per-pass reports."""
        reports: List[PassReport] = []
        cp = program_critical_path(ir) if self.passes else 0.0
        for name, fn in self.passes:
            counts_before, peak_before, spills_before = self._snapshot(ir)
            cp_before = cp
            ir = fn(ir)
            counts_after, peak_after, spills_after = self._snapshot(ir)
            cp = program_critical_path(ir)
            reports.append(
                PassReport(
                    name=name,
                    counts_before=counts_before,
                    counts_after=counts_after,
                    peak_before=peak_before,
                    peak_after=peak_after,
                    spills_before=spills_before,
                    spills_after=spills_after,
                    critical_path_before=cp_before,
                    critical_path_after=cp,
                )
            )
        ir.validate()
        return ir, tuple(reports)
