"""The optimizing pass pipeline over :class:`~repro.ir.ops.ScheduleIR`.

Every pass is a pure function ``ScheduleIR -> ScheduleIR`` registered under a
short name; :class:`PassManager` runs a pipeline and reports the per-pass
instruction-count deltas.  The contract every pass must honour:

* **bit-identical replay** — the optimized program must produce exactly the
  values of the unoptimized one (all rewrites here are algebraic identities
  of the simulated ``float64`` semantics: merged pure ops, composed lane
  maps, and ``a*b + c`` which the simulated FMA evaluates with the same two
  roundings as the mul/add pair);
* **never more work** — group-wise instruction counts (arithmetic,
  data-organisation, memory) and register pressure may only stay or shrink.

Scoping rule: values defined in a ``once`` (prologue) segment are available
everywhere; values defined in a per-block segment exist only within that
segment's instance (cross-block dataflow goes through ``input`` tags), so
merges and compositions never cross per-block segment boundaries.

The built-in passes:

``cse``
    Common-subexpression elimination on pure data-organisation ops
    (broadcast constants and decoded shuffles/blends/permutes).
``coalesce``
    Roll/shift coalescing: composes chained lane maps.  A lane permute of a
    lane permute always folds into one; a lane permute of a two-source
    select (the blend+rotate pair that assembles the cross-block neighbour
    operands of the 1-D vector-set sweep) folds into a single two-source
    permute where the ISA has one (``vpermt2pd`` — AVX-512).  Degenerate
    two-source selects collapse to single-source permutes.
``fuse-fma``
    Multiply–add fusion: ``add(mul(a, b), c) → fma(a, b, c)`` for
    single-use multiplies, where the ISA has FMA.
``dce``
    Dead-code elimination: drops ops (transitively) unread by any store,
    cross-segment output or live stage input — including the prologue
    broadcasts of zero kernel entries and stage inputs nobody consumes.
``reschedule``
    Spill-aware register-pressure re-scheduling: list-schedules each
    per-block segment to shrink the peak number of simultaneously live
    values, then re-derives ``peak_live``/``spills`` with the
    :meth:`~repro.simd.machine.SimdMachine.note_live_registers` semantics
    (one spill store + reload per value exceeding the architectural register
    count), never exceeding the recorded pressure.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.ops import IrOp, IrSegment, ScheduleIR
from repro.simd.isa import InstructionClass
from repro.simd.machine import InstructionCounts

__all__ = [
    "PassManager",
    "PassReport",
    "DEFAULT_PASSES",
    "pipeline_key",
    "common_subexpression_elimination",
    "coalesce_shuffles",
    "fuse_multiply_add",
    "dead_code_elimination",
    "reschedule_register_pressure",
    "resolve_passes",
]


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _apply_alias(ir: ScheduleIR, alias: Dict[int, int]) -> ScheduleIR:
    """Rewrite every operand (and ``vt_out``) through ``alias``."""
    if not alias:
        return ir

    def resolve(vid: int) -> int:
        while vid in alias:
            vid = alias[vid]
        return vid

    segments = []
    for seg in ir.segments:
        ops = []
        for op in seg.ops:
            srcs = tuple(resolve(s) for s in op.srcs)
            ops.append(replace(op, srcs=srcs) if srcs != op.srcs else op)
        segments.append(seg.with_ops(ops))
    vt_out = tuple(tuple(resolve(v) for v in cols) for cols in ir.vt_out)
    return ir.with_segments(segments, vt_out=vt_out)


def _shuffle_class(lane_map: Sequence[int], vl: int) -> InstructionClass:
    """Bill a single-source lane map as in-lane SHUFFLE or lane-crossing PERMUTE."""
    if all(m // 2 == l // 2 for l, m in enumerate(lane_map)):
        return InstructionClass.SHUFFLE
    return InstructionClass.PERMUTE


# --------------------------------------------------------------------------- #
# cse
# --------------------------------------------------------------------------- #
def _cse_key(op: IrOp) -> Optional[Tuple]:
    if op.opcode == "const":
        # copysign distinguishes -0.0 from 0.0 (bit-identity matters).
        return ("const", float(op.imm), math.copysign(1.0, float(op.imm)))
    if op.opcode in ("shuf1", "shuf2"):
        return (op.opcode, op.srcs, tuple(op.imm))
    return None


def common_subexpression_elimination(ir: ScheduleIR) -> ScheduleIR:
    """Merge identical pure data-organisation ops (and broadcast constants).

    Prologue values are block-invariant, so their expressions stay available
    in every later segment; per-block expressions are only merged within
    their own segment.
    """
    alias: Dict[int, int] = {}
    prologue_table: Dict[Tuple, int] = {}
    segments: List[IrSegment] = []
    for seg in ir.segments:
        table = dict(prologue_table)
        ops: List[IrOp] = []
        for op in seg.ops:
            srcs = tuple(alias.get(s, s) for s in op.srcs)
            if srcs != op.srcs:
                op = replace(op, srcs=srcs)
            key = _cse_key(op)
            if key is not None:
                prev = table.get(key)
                if prev is not None:
                    alias[op.dst] = prev
                    continue
                table[key] = op.dst
                if seg.trip == "once":
                    prologue_table[key] = op.dst
            ops.append(op)
        segments.append(seg.with_ops(ops))
    return _apply_alias(ir.with_segments(segments), alias)


# --------------------------------------------------------------------------- #
# coalesce
# --------------------------------------------------------------------------- #
def coalesce_shuffles(ir: ScheduleIR) -> ScheduleIR:
    """Compose chained lane maps into fewer data-organisation ops.

    Iterates to a fixpoint: every round resolves aliases, composes
    ``shuf1∘shuf1`` (both ISAs) and ``shuf1∘shuf2`` (only where the ISA has
    a two-source lane-crossing permute), collapses degenerate two-source
    selects to single-source permutes, and drops identity permutes.
    """
    vl = ir.vl
    identity = tuple(range(vl))
    two_src_ok = getattr(ir.isa, "has_two_source_permute", False)

    changed = True
    rounds = 0
    while changed and rounds < 8:
        changed = False
        rounds += 1
        defs: Dict[int, Tuple[int, str, IrOp]] = {}
        for si, seg in enumerate(ir.segments):
            for op in seg.ops:
                if op.dst >= 0:
                    defs[op.dst] = (si, seg.trip, op)
        alias: Dict[int, int] = {}
        segments: List[IrSegment] = []
        for si, seg in enumerate(ir.segments):
            ops: List[IrOp] = []
            for op in seg.ops:
                srcs = tuple(alias.get(s, s) for s in op.srcs)
                if srcs != op.srcs:
                    op = replace(op, srcs=srcs)

                if op.opcode == "shuf2":
                    lane_map = tuple(op.imm)
                    if all(m < vl for m in lane_map):
                        op = replace(
                            op,
                            opcode="shuf1",
                            srcs=(op.srcs[0],),
                            imm=lane_map,
                            cls=_shuffle_class(lane_map, vl),
                        )
                        changed = True
                    elif all(m >= vl for m in lane_map):
                        folded = tuple(m - vl for m in lane_map)
                        op = replace(
                            op,
                            opcode="shuf1",
                            srcs=(op.srcs[1],),
                            imm=folded,
                            cls=_shuffle_class(folded, vl),
                        )
                        changed = True

                if op.opcode == "shuf1":
                    inner = defs.get(op.srcs[0])
                    in_scope = inner is not None and (
                        inner[1] == "once" or inner[0] == si
                    )
                    if in_scope:
                        _si, _trip, inner_op = inner
                        outer_map = tuple(op.imm)
                        if inner_op.opcode == "shuf1":
                            inner_map = tuple(inner_op.imm)
                            composed = tuple(inner_map[j] for j in outer_map)
                            op = replace(
                                op,
                                srcs=inner_op.srcs,
                                imm=composed,
                                cls=_shuffle_class(composed, vl),
                            )
                            changed = True
                        elif inner_op.opcode == "shuf2" and two_src_ok:
                            inner_map = tuple(inner_op.imm)
                            composed = tuple(inner_map[j] for j in outer_map)
                            op = replace(
                                op,
                                opcode="shuf2",
                                srcs=inner_op.srcs,
                                imm=composed,
                                cls=InstructionClass.PERMUTE,
                            )
                            changed = True
                    if op.opcode == "shuf1" and tuple(op.imm) == identity:
                        alias[op.dst] = op.srcs[0]
                        changed = True
                        continue
                ops.append(op)
            segments.append(seg.with_ops(ops))
        ir = _apply_alias(ir.with_segments(segments), alias)
    return ir


# --------------------------------------------------------------------------- #
# fuse-fma
# --------------------------------------------------------------------------- #
def fuse_multiply_add(ir: ScheduleIR) -> ScheduleIR:
    """Fuse ``add(mul(a, b), c)`` into ``fma(a, b, c)`` for single-use muls.

    The simulated FMA evaluates ``a*b + c`` with the same elementwise
    roundings as the mul/add pair, so the rewrite is bit-identical.  Gated
    on the ISA having FMA.
    """
    if not getattr(ir.isa, "has_fma", True):
        return ir
    uses: Counter = Counter()
    for seg in ir.segments:
        for op in seg.ops:
            uses.update(op.srcs)
    for cols in ir.vt_out:
        uses.update(cols)

    segments: List[IrSegment] = []
    for seg in ir.segments:
        def_at: Dict[int, int] = {}
        for i, op in enumerate(seg.ops):
            if op.dst >= 0:
                def_at[op.dst] = i
        fused_muls: set = set()
        rewritten: Dict[int, IrOp] = {}
        for i, op in enumerate(seg.ops):
            if op.opcode != "add":
                continue
            for pick, other in ((0, 1), (1, 0)):
                vid = op.srcs[pick]
                j = def_at.get(vid)
                if j is None or j in fused_muls:
                    continue
                mul = seg.ops[j]
                if mul.opcode != "mul" or uses[vid] != 1:
                    continue
                rewritten[i] = IrOp(
                    "fma",
                    op.dst,
                    (mul.srcs[0], mul.srcs[1], op.srcs[other]),
                    cls=InstructionClass.FMA,
                    lanes=op.lanes,
                )
                fused_muls.add(j)
                break
        if not fused_muls:
            segments.append(seg)
            continue
        ops = [
            rewritten.get(i, op)
            for i, op in enumerate(seg.ops)
            if i not in fused_muls
        ]
        segments.append(seg.with_ops(ops))
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# dce
# --------------------------------------------------------------------------- #
def dead_code_elimination(ir: ScheduleIR) -> ScheduleIR:
    """Drop ops whose results no store, stage input or cross-segment use reads.

    Walks the segments in reverse execution order, so the liveness of a
    horizontal stage input propagates to the vertical-phase register backing
    its ``("vt", delta, ci, k)`` tag, and prologue broadcasts survive only if
    some per-block op still reads them.
    """
    live: set = set()
    kept: Dict[int, List[IrOp]] = {}
    for si in range(len(ir.segments) - 1, -1, -1):
        seg = ir.segments[si]
        ops: List[IrOp] = []
        for op in reversed(seg.ops):
            if op.opcode == "store":
                live.update(op.srcs)
                ops.append(op)
                continue
            if op.dst not in live:
                continue
            live.update(op.srcs)
            if op.opcode == "input" and isinstance(op.tag, tuple) and op.tag[0] == "vt":
                _, _delta, ci, k = op.tag
                live.add(ir.vt_out[ci][k])
            ops.append(op)
        ops.reverse()
        kept[si] = ops
    segments = [seg.with_ops(kept[si]) for si, seg in enumerate(ir.segments)]
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# reschedule
# --------------------------------------------------------------------------- #
def reschedule_register_pressure(ir: ScheduleIR) -> ScheduleIR:
    """List-schedule each per-block segment to shrink peak register pressure.

    Greedy topological scheduling: among the ready ops, always issue the one
    freeing the most last-use operands per value it defines (ties keep the
    recorded order, so the result is deterministic).  The segment's
    ``peak_live``/``spills`` are then re-derived from the scheduled IR with
    the :meth:`~repro.simd.machine.SimdMachine.note_live_registers`
    semantics — counting the values the segment holds from earlier segments
    (the broadcast weights) as live throughout — and clamped to the recorded
    pressure so the optimizer can only improve on the interpreted sweep.
    """
    keep_all = {vid for cols in ir.vt_out for vid in cols}
    segments: List[IrSegment] = []
    for seg in ir.segments:
        if seg.trip == "once" or not seg.ops:
            segments.append(seg)
            continue
        ops = seg.ops
        n = len(ops)
        local = seg.defined()
        external = {s for op in ops for s in op.srcs} - local
        keep = keep_all & local
        def_at = {op.dst: i for i, op in enumerate(ops) if op.dst >= 0}
        remaining: Counter = Counter(s for op in ops for s in op.srcs if s in local)
        for vid in keep:
            remaining[vid] += 1  # held live to the end of the segment
        ndeps = [0] * n
        dependents: List[List[int]] = [[] for _ in range(n)]
        for i, op in enumerate(ops):
            for s in set(op.srcs):
                j = def_at.get(s)
                if j is not None:
                    ndeps[i] += 1
                    dependents[j].append(i)
        ready = [i for i in range(n) if ndeps[i] == 0]
        order: List[int] = []
        live = 0
        peak = 0
        while ready:
            best = None
            best_score = None
            for i in ready:
                op = ops[i]
                refs = Counter(s for s in op.srcs if s in local)
                freed = sum(1 for s, c in refs.items() if remaining[s] == c)
                adds = 1 if op.dst >= 0 else 0
                score = (freed - adds, -i)
                if best_score is None or score > best_score:
                    best, best_score = i, score
            i = best
            ready.remove(i)
            op = ops[i]
            adds = 1 if op.dst >= 0 else 0
            peak = max(peak, live + adds)
            live += adds
            for s in op.srcs:
                if s in local:
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        live -= 1
            order.append(i)
            for j in dependents[i]:
                ndeps[j] -= 1
                if ndeps[j] == 0:
                    ready.append(j)
        if len(order) != n:  # pragma: no cover - defensive (cyclic IR)
            raise RuntimeError(f"segment {seg.name!r} could not be scheduled")
        ir_peak = len(external) + peak
        new_peak = min(seg.peak_live, ir_peak) if seg.peak_live else 0
        ir_spills = max(0, ir_peak - ir.isa.registers)
        new_spills = min(seg.spills, ir_spills)
        scheduled = IrSegment(
            name=seg.name,
            trip=seg.trip,
            ops=[ops[i] for i in order],
            peak_live=new_peak,
            spills=new_spills,
        )
        segments.append(scheduled)
    return ir.with_segments(segments)


# --------------------------------------------------------------------------- #
# pass manager
# --------------------------------------------------------------------------- #
_PASS_REGISTRY: Dict[str, Callable[[ScheduleIR], ScheduleIR]] = {
    "cse": common_subexpression_elimination,
    "coalesce": coalesce_shuffles,
    "fuse-fma": fuse_multiply_add,
    "dce": dead_code_elimination,
    "reschedule": reschedule_register_pressure,
}

#: Default pipeline order: merge and compose first (their orphans feed DCE),
#: clean up, then re-schedule what is left for register pressure.
DEFAULT_PASSES: Tuple[str, ...] = ("cse", "coalesce", "fuse-fma", "dce", "reschedule")

PassLike = Union[str, Callable[[ScheduleIR], ScheduleIR]]


def resolve_passes(
    passes: Union[bool, Sequence[PassLike], None],
) -> Tuple[Tuple[str, Callable], ...]:
    """Normalise a pass selection to ``((name, fn), ...)``.

    ``True``/``None`` selects :data:`DEFAULT_PASSES`; a sequence may mix
    registered names and callables; ``False`` or an empty sequence is an
    empty pipeline.
    """
    if passes is True or passes is None:
        passes = DEFAULT_PASSES
    elif passes is False:
        passes = ()
    resolved = []
    for p in passes:
        if callable(p):
            resolved.append((getattr(p, "__name__", "custom"), p))
        else:
            key = str(p).strip().lower()
            if key not in _PASS_REGISTRY:
                raise KeyError(
                    f"unknown IR pass {p!r}; known: {', '.join(sorted(_PASS_REGISTRY))}"
                )
            resolved.append((key, _PASS_REGISTRY[key]))
    return tuple(resolved)


def pipeline_key(passes: Union[bool, Sequence[PassLike], None]) -> Tuple:
    """Hashable cache key for a pass selection.

    Registered passes key by name; custom callables key by the callable
    object itself (the key holds a reference, so a recycled ``id()`` can
    never alias two different same-named callables in a compiled-sweep
    cache).
    """
    key = []
    for name, fn in resolve_passes(passes):
        if _PASS_REGISTRY.get(name) is fn:
            key.append(name)
        else:
            key.append((name, fn))
    return tuple(key)


@dataclass(frozen=True)
class PassReport:
    """Static before/after accounting of one pass application."""

    name: str
    counts_before: InstructionCounts
    counts_after: InstructionCounts
    peak_before: int
    peak_after: int
    spills_before: int
    spills_after: int

    @property
    def removed(self) -> float:
        """Static instructions removed by the pass."""
        return self.counts_before.total - self.counts_after.total

    def describe(self) -> str:
        """One-line summary for ``explain()`` output."""
        delta = self.removed
        bits = [f"{self.name} {-delta:+g} ops" if delta else f"{self.name} ±0 ops"]
        if self.peak_after != self.peak_before:
            bits.append(f"peak {self.peak_before}→{self.peak_after}")
        if self.spills_after != self.spills_before:
            bits.append(f"spills {self.spills_before}→{self.spills_after}")
        return " ".join(bits)


class PassManager:
    """Runs a pass pipeline over a :class:`ScheduleIR` and reports deltas."""

    def __init__(self, passes: Union[bool, Sequence[PassLike], None] = None):
        self.passes = resolve_passes(passes)

    @staticmethod
    def _snapshot(ir: ScheduleIR) -> Tuple[InstructionCounts, int, int]:
        return ir.static_counts(), ir.peak_live, sum(seg.spills for seg in ir.segments)

    def run(self, ir: ScheduleIR) -> Tuple[ScheduleIR, Tuple[PassReport, ...]]:
        """Apply the pipeline; returns the optimized IR and per-pass reports."""
        reports: List[PassReport] = []
        for name, fn in self.passes:
            counts_before, peak_before, spills_before = self._snapshot(ir)
            ir = fn(ir)
            counts_after, peak_after, spills_after = self._snapshot(ir)
            reports.append(
                PassReport(
                    name=name,
                    counts_before=counts_before,
                    counts_after=counts_after,
                    peak_before=peak_before,
                    peak_after=peak_after,
                    spills_before=spills_before,
                    spills_after=spills_after,
                )
            )
        ir.validate()
        return ir, tuple(reports)
