"""Dependency graphs over IR segments: def-use edges plus memory aliasing.

The pass pipeline of :mod:`repro.ir.passes` historically scheduled over
*linear* segments — the only ordering information it used was the recorded
op order plus the SSA def-use chains.  This module builds the true
:class:`DependencyGraph` the graph-enabled passes (graph-driven
rescheduling, loop-invariant hoisting, software pipelining of the
vertical/horizontal stages, accumulator splitting) schedule from, following
the shape of PyPy's vectorizer (``rpython/.../optimizeopt/dependency.py``):

* **def-use edges** from the virtual registers (an op depends on the
  in-segment definitions of its operands),
* **memory edges** from a :class:`MemoryRef` alias analysis over the IR's
  abstract memory tags — two accesses to the same tag family with provably
  distinct offsets need no edge, an unknown tag family forces a conservative
  edge,
* **stage-input edges** for ``input`` pseudo-ops, which read the register
  behind their ``("vt", delta, ci, k)`` tag without naming it in ``srcs`` —
  when that register is defined in the same segment (a software-pipelined
  merged segment) the definition must precede the input.

On top of the edges the graph offers the queries passes need: the initial
ready set, per-node latency heights, and the latency-weighted critical path
(the serial-dependence lower bound on one segment execution, used by the
cost model's chain estimate and by the ``split-accum`` profitability gate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.ops import IrOp, IrSegment, ScheduleIR
from repro.simd.isa import IsaSpec

__all__ = [
    "MemoryRef",
    "DependencyGraph",
    "GraphStats",
    "program_graphs",
    "program_stats",
    "program_critical_path",
]

#: Tag families the lowering emits, keyed by the tag's leading label.  A
#: family's accesses are indexed by the remaining tag fields; two accesses of
#: the same family with different index tuples touch provably distinct
#: block-relative addresses (the lowering derives every tag from a distinct
#: ``(row/column offset, element)`` pair).  Anything *not* listed here is an
#: unknown family and aliases conservatively.
_KNOWN_TAG_FAMILIES = ("set", "row", "out_row", "vt")


@dataclass(frozen=True)
class MemoryRef:
    """Abstract address of one architectural memory access.

    Attributes
    ----------
    space:
        ``"in"`` for loads, ``"out"`` for stores.  The replay executor is
        double-buffered (loads gather from the input grid, stores scatter to
        the output grid), so references in different spaces can never alias.
    family:
        The tag's leading label (``"set"``, ``"row"``, ``"out_row"``), or
        ``None`` for an unrecognised tag.
    offset:
        The remaining tag fields — the provably-distinct index within the
        family — or ``None`` when the tag is unknown.
    """

    space: str
    family: Optional[str]
    offset: Optional[Tuple]

    @classmethod
    def from_op(cls, op: IrOp) -> Optional["MemoryRef"]:
        """The reference an op makes, or ``None`` for non-memory ops."""
        if not op.is_memory:
            return None
        space = "in" if op.opcode == "load" else "out"
        tag = op.tag
        if (
            isinstance(tag, tuple)
            and tag
            and isinstance(tag[0], str)
            and tag[0] in _KNOWN_TAG_FAMILIES
        ):
            return cls(space=space, family=tag[0], offset=tuple(tag[1:]))
        return cls(space=space, family=None, offset=None)

    def may_alias(self, other: "MemoryRef") -> bool:
        """Whether the two references can touch the same address.

        Distinct spaces never alias (double-buffered replay).  Within a
        space, two known-family references alias only when family *and*
        offset match; an unknown reference aliases everything in its space.
        """
        if self.space != other.space:
            return False
        if self.offset is None or other.offset is None:
            return True
        return self.family == other.family and self.offset == other.offset


def _vt_read(op: IrOp, ir: ScheduleIR) -> Optional[int]:
    """The register an ``input`` op reads through its ``vt`` tag, if any."""
    if op.opcode != "input":
        return None
    tag = op.tag
    if isinstance(tag, tuple) and tag and tag[0] == "vt":
        _, _delta, ci, k = tag
        return ir.vt_out[ci][k]
    return None


@dataclass(frozen=True)
class GraphStats:
    """Summary of one segment graph for ``explain()`` and the benchmarks."""

    nodes: int
    def_use_edges: int
    memory_edges: int
    #: store/store (and unknown-tag) pairs that *would* have needed an edge
    #: under a no-alias-information model but were proven independent.
    memory_edges_broken: int
    critical_path_cycles: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes": self.nodes,
            "def_use_edges": self.def_use_edges,
            "memory_edges": self.memory_edges,
            "memory_edges_broken": self.memory_edges_broken,
            "critical_path_cycles": self.critical_path_cycles,
        }


class DependencyGraph:
    """Dependence DAG over one segment's ops.

    Nodes are op indices into ``segment.ops``.  Every edge points forward in
    recorded order (SSA reads-after-def are validated by the IR, memory and
    stage-input edges are emitted earlier → later), so recorded order is
    already a topological order.
    """

    def __init__(self, ir: ScheduleIR, segment: IrSegment):
        self.ir = ir
        self.segment = segment
        ops = segment.ops
        n = len(ops)
        self.preds: List[List[int]] = [[] for _ in range(n)]
        self.succs: List[List[int]] = [[] for _ in range(n)]
        self._def_use_edges = 0
        self._memory_edges = 0
        self._memory_edges_broken = 0

        def_at: Dict[int, int] = {}
        for i, op in enumerate(ops):
            if op.dst >= 0:
                def_at[op.dst] = i

        edges = set()

        def add_edge(j: int, i: int) -> bool:
            if j == i or (j, i) in edges:
                return False
            edges.add((j, i))
            self.succs[j].append(i)
            self.preds[i].append(j)
            return True

        # def-use edges (including the hidden vt read of stage inputs).
        for i, op in enumerate(ops):
            reads = list(op.srcs)
            vt = _vt_read(op, ir)
            if vt is not None:
                reads.append(vt)
            for src in reads:
                j = def_at.get(src)
                if j is not None and j < i and add_edge(j, i):
                    self._def_use_edges += 1

        # memory edges: any pair involving a store whose references may
        # alias is ordered; pairs proven independent are counted as broken.
        mem = [(i, MemoryRef.from_op(op)) for i, op in enumerate(ops) if op.is_memory]
        for a in range(len(mem)):
            i, ref_i = mem[a]
            for b in range(a + 1, len(mem)):
                k, ref_k = mem[b]
                if ref_i.space == "in" and ref_k.space == "in":
                    continue  # read/read pairs never need ordering
                if ref_i.may_alias(ref_k):
                    if add_edge(i, k):
                        self._memory_edges += 1
                else:
                    self._memory_edges_broken += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def ready(self) -> List[int]:
        """Indices with no unresolved dependencies (the initial ready set)."""
        return [i for i in range(len(self.preds)) if not self.preds[i]]

    def _latency(self, op: IrOp, isa: IsaSpec) -> float:
        if op.cls is None:
            return 0.0
        return isa.timing(op.cls).latency

    def heights(self, isa: Optional[IsaSpec] = None) -> List[float]:
        """Latency-weighted height of each node above the graph's sinks.

        A node's height is its own latency plus the tallest successor
        height — the remaining serial work below it, the classic
        critical-path priority for list scheduling.
        """
        isa = isa or self.ir.isa
        ops = self.segment.ops
        h = [0.0] * len(ops)
        for i in range(len(ops) - 1, -1, -1):
            below = max((h[k] for k in self.succs[i]), default=0.0)
            h[i] = self._latency(ops[i], isa) + below
        return h

    def critical_path(self, isa: Optional[IsaSpec] = None) -> float:
        """Latency along the longest dependence chain of the segment."""
        return max(self.heights(isa), default=0.0)

    def stats(self, isa: Optional[IsaSpec] = None) -> GraphStats:
        return GraphStats(
            nodes=len(self.preds),
            def_use_edges=self._def_use_edges,
            memory_edges=self._memory_edges,
            memory_edges_broken=self._memory_edges_broken,
            critical_path_cycles=self.critical_path(isa),
        )


def program_graphs(ir: ScheduleIR) -> Dict[str, DependencyGraph]:
    """One graph per steady-state segment (prologue/prime excluded)."""
    return {
        seg.name: DependencyGraph(ir, seg)
        for seg in ir.segments
        if seg.trip not in ("once", "prime") and seg.ops
    }


def program_critical_path(ir: ScheduleIR, isa: Optional[IsaSpec] = None) -> float:
    """Summed per-segment critical path of the steady-state segments.

    The steady-state segments run back-to-back per block position (1-D:
    ``block``; 2-D/3-D: ``vertical`` then ``horizontal``, or the merged
    ``pipelined`` segment), so the sum is the serial-dependence latency
    bound of one block's work.
    """
    isa = isa or ir.isa
    return sum(g.critical_path(isa) for g in program_graphs(ir).values())


def program_stats(ir: ScheduleIR, isa: Optional[IsaSpec] = None) -> Dict[str, GraphStats]:
    """Per-segment :class:`GraphStats`, keyed by segment name."""
    isa = isa or ir.isa
    return {name: g.stats(isa) for name, g in program_graphs(ir).items()}
