"""The typed vector IR: ops, segments and whole-schedule programs.

The IR is the single representation every execution-stack layer consumes:
trace replay executes it, instruction accounting is derived from it, the
port-pressure cost model and the cache layer's memory profile read the same
ops.  It is produced once per ``(schedule, isa, dims)`` by
:func:`repro.ir.lower.lower_schedule` and optionally rewritten by the pass
pipeline in :mod:`repro.ir.passes`.

Shape of the IR
---------------
* An :class:`IrOp` is one instruction over *virtual registers* (plain integer
  ids in one SSA namespace per program): an explicit opcode, the
  :class:`~repro.simd.isa.InstructionClass` it is billed as (``None`` for the
  free ``input`` pseudo-op), operand/result registers, an immediate payload
  (broadcast scalars, decoded lane maps) and — for memory traffic — an
  abstract block-relative address ``tag``.
* An :class:`IrSegment` is a straight-line run of ops plus its register
  pressure metadata (``peak_live``, ``spills`` — the
  :meth:`~repro.simd.machine.SimdMachine.note_live_registers` accounting) and
  a ``trip`` role naming how often the interpreted sweep executes it.
* A :class:`ScheduleIR` is the whole program: the segments, the register
  count, the ISA, the grid dimensionality and the cross-segment wiring
  (``vt_out`` — the transposed counterpart columns the square pipelines hand
  from the vertical to the horizontal phase).

Instruction accounting is *derived*, never stored: a segment's
:meth:`~IrSegment.counts` walks its ops (plus the spill store/reload charges)
and :meth:`ScheduleIR.sweep_counts` scales each segment by its trip count for
a concrete grid shape — reproducing the interpreted machine's tally exactly
for an unoptimized program, and yielding the optimized program's own
(smaller) tally after the pass pipeline ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simd.isa import InstructionClass, IsaSpec
from repro.simd.machine import InstructionCounts

__all__ = ["IrOp", "IrSegment", "ScheduleIR", "TRIP_ROLES"]

#: Trip roles a segment may carry.  ``once`` runs once per sweep (weight
#: broadcasts); ``block`` once per 1-D vector set; ``vertical`` once per
#: square *including* the two shifts-reuse priming squares of each block row;
#: ``horizontal`` once per square.  The software-pipelining pass replaces the
#: vertical/horizontal pair with ``pipelined`` (the merged stages, once per
#: square) plus ``prime`` (an accounting-only copy of the vertical stage
#: billing the two priming squares of each block row — never executed by the
#: batched replay).
TRIP_ROLES = ("once", "block", "vertical", "horizontal", "prime", "pipelined")


@dataclass(frozen=True)
class IrOp:
    """One typed IR instruction.

    Attributes
    ----------
    opcode:
        ``"const"``, ``"load"``, ``"input"``, ``"store"``, ``"mul"``,
        ``"add"``, ``"sub"``, ``"max"``, ``"fma"``, ``"shuf1"`` or
        ``"shuf2"``.
    dst:
        Virtual register written (``-1`` for stores).
    srcs:
        Virtual registers read.
    imm:
        Immediate payload: the broadcast scalar for ``const``; the lane map
        for shuffles (``shuf1``: destination lane ``l`` reads source lane
        ``imm[l]``; ``shuf2``: entries ``>= lanes`` select from the second
        operand).
    tag:
        Abstract block-relative address of a ``load``/``store``/``input``
        (e.g. ``("set", delta, j)``, ``("row", dz, s)``, ``("out_row", oi)``,
        ``("vt", delta, ci, k)``).
    cls:
        Instruction class the op is billed as; ``None`` for ``input``, which
        names a value produced by an earlier pipeline stage and costs
        nothing.
    lanes:
        Lane width of the produced value (the machine vector length).
    """

    opcode: str
    dst: int
    srcs: Tuple[int, ...] = ()
    imm: object = None
    tag: object = None
    cls: Optional[InstructionClass] = None
    lanes: int = 0

    @property
    def is_memory(self) -> bool:
        """True for architectural loads and stores (not ``input`` pseudo-ops)."""
        return self.opcode in ("load", "store")


@dataclass
class IrSegment:
    """A named straight-line run of IR ops plus its pressure metadata.

    ``peak_live`` / ``spills`` mirror the
    :meth:`~repro.simd.machine.SimdMachine.note_live_registers` accounting of
    the interpreted sweep: each execution of the segment charges ``spills``
    spill stores plus ``spills`` spill reloads on top of the per-op tallies.
    """

    name: str
    trip: str = "once"
    ops: List[IrOp] = field(default_factory=list)
    peak_live: int = 0
    spills: int = 0

    def op_counts(self) -> InstructionCounts:
        """Per-execution instruction tally of the ops alone (no spill charges)."""
        counts = InstructionCounts()
        for op in self.ops:
            if op.cls is not None:
                counts.add(op.cls)
        return counts

    def counts(self) -> InstructionCounts:
        """Per-execution tally including the spill store/reload charges."""
        counts = self.op_counts()
        if self.spills > 0:
            counts.add(InstructionClass.STORE, self.spills)
            counts.add(InstructionClass.LOAD, self.spills)
        return counts

    def defined(self) -> set:
        """Virtual registers defined by this segment."""
        return {op.dst for op in self.ops if op.dst >= 0}

    def with_ops(self, ops: Sequence[IrOp]) -> "IrSegment":
        """Copy of the segment with ``ops`` replaced (metadata kept)."""
        return IrSegment(
            name=self.name,
            trip=self.trip,
            ops=list(ops),
            peak_live=self.peak_live,
            spills=self.spills,
        )


@dataclass
class ScheduleIR:
    """A lowered register-level schedule: typed segments over one SSA space.

    Attributes
    ----------
    isa:
        Target instruction set (defines the lane width and register count).
    dims:
        Grid dimensionality of the schedule (1, 2 or 3).
    m:
        Temporal folding factor of the source schedule (logical time steps
        advanced per sweep).
    nregs:
        Size of the virtual register space (ids are ``0 .. nregs-1``; passes
        may leave ids undefined, they are never renumbered).
    segments:
        The program's segments in execution order; the first has trip role
        ``"once"`` (the prologue).
    vt_out:
        For 2-D/3-D programs: ``vt_out[ci][k]`` is the virtual register
        holding transposed column ``k`` of materialised counterpart ``ci``
        after the vertical phase — the values the horizontal phase reads
        through its ``("vt", delta, ci, k)`` input tags.
    transpose_back:
        Whether the store phase restores row orientation (the weighted
        transpose) or stores transposed tiles.
    source:
        Free-form provenance label (stencil name, m, isa).
    """

    isa: IsaSpec
    dims: int
    m: int
    nregs: int
    segments: List[IrSegment]
    vt_out: Tuple[Tuple[int, ...], ...] = ()
    transpose_back: bool = True
    source: str = ""

    @property
    def vl(self) -> int:
        """Lane width of the target ISA."""
        return self.isa.vector_lanes

    def segment(self, name: str) -> IrSegment:
        """The segment called ``name`` (KeyError when absent)."""
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def with_segments(
        self, segments: Sequence[IrSegment], vt_out: Optional[Sequence[Sequence[int]]] = None
    ) -> "ScheduleIR":
        """Copy with ``segments`` (and optionally ``vt_out``) replaced."""
        return replace(
            self,
            segments=list(segments),
            vt_out=(
                tuple(tuple(col) for col in vt_out) if vt_out is not None else self.vt_out
            ),
        )

    # ------------------------------------------------------------------ #
    # trip counts and accounting
    # ------------------------------------------------------------------ #
    def block_axes(self, shape: Union[int, Sequence[int]]) -> Tuple[int, ...]:
        """Block axes of the batched replay for a concrete grid ``shape``.

        ``(vector sets,)`` for 1-D programs, ``(planes, row blocks, column
        blocks)`` for 2-D/3-D programs (a 2-D grid is a single plane).
        """
        vl = self.vl
        if self.dims == 1:
            n = int(shape if np.isscalar(shape) else tuple(shape)[0])
            if n % (vl * vl) != 0:
                raise ValueError(f"array length {n} must be a multiple of vl²={vl * vl}")
            return (n // (vl * vl),)
        shape = tuple(int(s) for s in shape)
        if len(shape) != self.dims:
            raise ValueError(f"shape {shape} does not match a {self.dims}-D program")
        planes = shape[0] if self.dims == 3 else 1
        rows, cols = shape[-2], shape[-1]
        if rows % vl != 0 or cols % vl != 0:
            raise ValueError(
                f"grid shape {shape} must be a multiple of vl={vl} "
                "along its two innermost extents"
            )
        return (planes, rows // vl, cols // vl)

    def trip_counts(self, shape: Union[int, Sequence[int]]) -> Dict[str, int]:
        """Executions of each trip role for one interpreted sweep of ``shape``.

        The ``vertical`` role runs ``planes · n_row_blocks · (n_col_blocks +
        2)`` times because shifts reuse primes every block row with two extra
        squares — exactly the interpreted sweep's behaviour.
        """
        axes = self.block_axes(shape)
        if self.dims == 1:
            return {"once": 1, "block": axes[0]}
        planes, nrb, ncb = axes
        return {
            "once": 1,
            "vertical": planes * nrb * (ncb + 2),
            "horizontal": planes * nrb * ncb,
            # Software-pipelined form: the merged stages run once per square,
            # the priming copy twice per block row, so
            # pipelined·ncb + prime·2 == vertical·(ncb+2) + horizontal·ncb.
            "pipelined": planes * nrb * ncb,
            "prime": planes * nrb * 2,
        }

    def sweep_counts(
        self, shape: Union[int, Sequence[int]]
    ) -> Tuple[InstructionCounts, int, int]:
        """Exact per-sweep ``(counts, peak_live, spills)`` for ``shape``.

        Derived entirely from the IR: per-segment op tallies (plus spill
        charges) scaled by the segment trip counts.  For an unoptimized
        program this reproduces the interpreted machine's accounting
        identically; for an optimized program it is the optimized trace's own
        tally.
        """
        trips = self.trip_counts(shape)
        counts = InstructionCounts()
        peak = 0
        spills = 0
        for seg in self.segments:
            mult = trips[seg.trip]
            counts = counts.merge(seg.counts().scaled(mult))
            if mult > 0:
                peak = max(peak, seg.peak_live)
            spills += seg.spills * mult
        return counts, peak, spills

    def steady_counts_per_point(self) -> InstructionCounts:
        """Steady-state instructions per grid point per *logical* time step.

        The prologue amortises to zero on a large grid and every per-block
        segment runs once per ``vl × vl`` points per sweep (the two
        shifts-reuse priming squares per block row vanish as the row length
        grows), so the steady state is the per-block tallies divided by
        ``vl² · m``.  This is what feeds the port-pressure cost model — the
        same ops the replay executes, so estimated and simulated counts
        cannot drift.
        """
        counts = InstructionCounts()
        for seg in self.segments:
            if seg.trip in ("once", "prime"):
                # The prologue amortises to zero; the priming copy of a
                # pipelined program runs a constant twice per block row —
                # exactly the two extra squares already excluded from the
                # stage-form steady state.
                continue
            counts = counts.merge(seg.counts())
        return counts.scaled(1.0 / (self.vl * self.vl * self.m))

    def static_counts(self) -> InstructionCounts:
        """Unweighted op tally over all segments (for pass-delta reporting)."""
        counts = InstructionCounts()
        for seg in self.segments:
            counts = counts.merge(seg.op_counts())
        return counts

    @property
    def peak_live(self) -> int:
        """Largest per-segment peak register pressure."""
        return max((seg.peak_live for seg in self.segments), default=0)

    def memory_ops(self) -> List[Tuple[str, IrOp]]:
        """All architectural memory ops as ``(segment name, op)`` pairs."""
        out: List[Tuple[str, IrOp]] = []
        for seg in self.segments:
            for op in seg.ops:
                if op.is_memory:
                    out.append((seg.name, op))
        return out

    # ------------------------------------------------------------------ #
    # structural validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check SSA form, operand availability and segment scoping.

        Raises ``ValueError`` on: a register defined twice, an operand read
        before any definition, an op in a per-block segment reading a value
        defined in a *different* per-block segment (cross-block values must
        flow through ``input`` tags), or an unknown trip role.
        """
        defined_in: Dict[int, int] = {}
        for si, seg in enumerate(self.segments):
            if seg.trip not in TRIP_ROLES:
                raise ValueError(f"segment {seg.name!r} has unknown trip role {seg.trip!r}")
            for op in seg.ops:
                for src in op.srcs:
                    owner = defined_in.get(src)
                    if owner is None:
                        raise ValueError(
                            f"segment {seg.name!r}: operand v{src} read before definition"
                        )
                    if owner != si and self.segments[owner].trip != "once":
                        raise ValueError(
                            f"segment {seg.name!r}: operand v{src} crosses from "
                            f"per-block segment {self.segments[owner].name!r} "
                            "(cross-block values must use input tags)"
                        )
                if op.dst >= 0:
                    if op.dst in defined_in:
                        raise ValueError(f"register v{op.dst} defined twice (not SSA)")
                    if op.dst >= self.nregs:
                        raise ValueError(f"register v{op.dst} outside the declared space")
                    defined_in[op.dst] = si
