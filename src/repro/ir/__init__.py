"""Schedule IR: the typed vector IR behind the execution stack.

The IR is the single source of truth for everything downstream of a
register-level folding schedule:

* :mod:`repro.ir.ops` — the typed IR (:class:`IrOp` /
  :class:`IrSegment` / :class:`ScheduleIR`) with derived instruction
  accounting,
* :mod:`repro.ir.lower` — :func:`lower_schedule`, producing the IR once per
  ``(schedule, isa, dims)`` by running the schedule's own pipeline pieces
  against the trace recorder,
* :mod:`repro.ir.dependency` — the per-segment :class:`DependencyGraph`
  (def-use edges plus :class:`MemoryRef` alias analysis over the memory
  tags) the graph-enabled passes schedule from,
* :mod:`repro.ir.passes` — the optimizing pass pipeline
  (:class:`PassManager`; CSE, shuffle coalescing, multiply–add fusion, DCE,
  loop-invariant hoisting, graph-driven re-scheduling, plus the opt-in
  software pipelining and accumulator splitting), every default pass
  preserving bit-identical replay,
* :mod:`repro.ir.executor` — :class:`CompiledSweep`, the dimension-generic
  batched replay engine (:func:`compile_sweep`).

Consumers: :meth:`repro.core.plan.CompiledPlan.simulate` replays the IR,
:class:`~repro.simd.machine.InstructionCounts` are derived from it, the
port-pressure cost model reads its steady-state per-point mix
(:meth:`ScheduleIR.steady_counts_per_point` via
:meth:`~repro.core.vectorized_folding.FoldingSchedule.instruction_profile`)
and the cache layer expands its memory tags into exact address streams
(:mod:`repro.cache.irprofile`).
"""

from repro.ir.dependency import (
    DependencyGraph,
    GraphStats,
    MemoryRef,
    program_critical_path,
    program_graphs,
    program_stats,
)
from repro.ir.executor import CompiledSweep, compile_sweep
from repro.ir.lower import lower_schedule
from repro.ir.ops import IrOp, IrSegment, ScheduleIR
from repro.ir.passes import (
    DEFAULT_PASSES,
    SPLIT_ACCUM_MIN_LINKS,
    PassManager,
    PassReport,
    coalesce_shuffles,
    common_subexpression_elimination,
    dead_code_elimination,
    fuse_multiply_add,
    hoist_loop_invariants,
    reschedule_register_pressure,
    software_pipeline_stages,
    split_accumulators,
)

__all__ = [
    "IrOp",
    "IrSegment",
    "ScheduleIR",
    "lower_schedule",
    "CompiledSweep",
    "compile_sweep",
    "DependencyGraph",
    "GraphStats",
    "MemoryRef",
    "program_graphs",
    "program_stats",
    "program_critical_path",
    "PassManager",
    "PassReport",
    "DEFAULT_PASSES",
    "SPLIT_ACCUM_MIN_LINKS",
    "common_subexpression_elimination",
    "coalesce_shuffles",
    "fuse_multiply_add",
    "dead_code_elimination",
    "hoist_loop_invariants",
    "software_pipeline_stages",
    "split_accumulators",
    "reschedule_register_pressure",
]
