"""Batched replay of :class:`~repro.ir.ops.ScheduleIR` programs.

One dimension-generic executor replaces the per-dimensionality compiled
sweeps: every virtual register becomes a NumPy array with leading *block*
axes — all vector sets of the 1-D transpose layout, or all
``(plane, row block, column block)`` squares of a 2-D/3-D grid (a 2-D grid
is a single plane) — loads become gathers whose index arithmetic mirrors the
interpreted sweep's periodic addressing, and cross-block ``("vt", ...)``
stage inputs become rolls of the column-block axis.  Because each replayed
instruction applies the identical ``float64`` elementwise operation the
machine would have applied per block, the result is bit-identical to the
interpreted sweep.

Instruction accounting is never re-executed; it is derived from the IR
(:meth:`~repro.ir.ops.ScheduleIR.sweep_counts`) — the per-segment op tallies
(plus spill charges) times the trip counts, which reproduces the interpreted
:class:`~repro.simd.machine.InstructionCounts` exactly for an unoptimized
program and yields the optimized program's own tally after a pass pipeline.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.ir.lower import lower_schedule
from repro.ir.ops import IrOp, ScheduleIR
from repro.ir.passes import PassManager, PassReport
from repro.simd.isa import AVX2, AVX512, IsaSpec
from repro.simd.machine import InstructionCounts

__all__ = ["CompiledSweep", "compile_sweep"]


class _SegmentProgram:
    """An executable form of one IR segment.

    Shuffle immediates are pre-decoded into NumPy index/selector arrays and a
    register-liveness table is computed so replay can drop large intermediate
    arrays as soon as their last consumer has run.
    """

    def __init__(self, ops: Sequence[IrOp], vl: int, keep: Optional[Set[int]] = None):
        self.vl = vl
        keep = keep or set()
        defined = {op.dst for op in ops if op.dst >= 0}
        last_use: Dict[int, int] = {}
        for i, op in enumerate(ops):
            for src in op.srcs:
                last_use[src] = i
        self.steps: List[Tuple[IrOp, object, Tuple[int, ...]]] = []
        for i, op in enumerate(ops):
            if op.opcode == "input" and op.dst not in last_use and op.dst not in keep:
                # Dead stage input (possible on an un-DCE'd program): skip it
                # so replay never materializes a rolled full-grid copy nobody
                # reads.
                continue
            imm = op.imm
            if op.opcode == "shuf1":
                imm = np.asarray(imm, dtype=np.intp)
            elif op.opcode == "shuf2":
                lane_map = np.asarray(imm, dtype=np.intp)
                sel_b = lane_map >= vl
                imm = (sel_b, np.where(sel_b, lane_map - vl, lane_map))
            frees = tuple(
                src
                for src in dict.fromkeys(op.srcs)
                if src in defined and src not in keep and last_use[src] == i
            )
            self.steps.append((op, imm, frees))

    def run(
        self,
        env: List[Optional[np.ndarray]],
        load_fn: Optional[Callable[[object], np.ndarray]] = None,
        store_fn: Optional[Callable[[object, np.ndarray], None]] = None,
        input_fn: Optional[Callable[[object], np.ndarray]] = None,
    ) -> None:
        """Execute the segment over ``env`` (virtual register id → array)."""
        for op, imm, frees in self.steps:
            oc = op.opcode
            if oc == "fma":
                a, b, c = op.srcs
                env[op.dst] = env[a] * env[b] + env[c]
            elif oc == "mul":
                a, b = op.srcs
                env[op.dst] = env[a] * env[b]
            elif oc == "add":
                a, b = op.srcs
                env[op.dst] = env[a] + env[b]
            elif oc == "sub":
                a, b = op.srcs
                env[op.dst] = env[a] - env[b]
            elif oc == "max":
                a, b = op.srcs
                env[op.dst] = np.maximum(env[a], env[b])
            elif oc == "shuf1":
                env[op.dst] = env[op.srcs[0]][..., imm]
            elif oc == "shuf2":
                sel_b, idx = imm
                a, b = op.srcs
                env[op.dst] = np.where(sel_b, env[b][..., idx], env[a][..., idx])
            elif oc == "load":
                env[op.dst] = load_fn(op.tag)
            elif oc == "store":
                store_fn(op.tag, env[op.srcs[0]])
            elif oc == "input":
                env[op.dst] = input_fn(op.tag)
            elif oc == "const":
                env[op.dst] = np.full(self.vl, imm, dtype=np.float64)
            else:  # pragma: no cover - the lowering emits no other opcodes
                raise RuntimeError(f"unknown IR opcode {oc!r}")
            for src in frees:
                env[src] = None


def _check_contiguous_out(out: Optional[np.ndarray], template: np.ndarray) -> np.ndarray:
    if out is None:
        return np.empty_like(template)
    if not out.flags.c_contiguous:
        raise ValueError("IR replay requires a C-contiguous output array")
    if out.shape != template.shape:
        raise ValueError(f"output shape {out.shape} does not match grid shape {template.shape}")
    return out


class CompiledSweep:
    """Executable batched replay of one :class:`ScheduleIR`.

    The executor is dimension-generic, parameterized by the program's block
    axes (:meth:`ScheduleIR.block_axes`): 1-D programs replay the ``block``
    segment over all vector sets of the transpose layout at once; 2-D/3-D
    programs replay the ``vertical`` segment over all ``vl × vl`` squares of
    all planes, resolve the shifts-reuse stage inputs of the ``horizontal``
    segment by rolling the column-block axis, and store every square's
    result in one pass.
    """

    def __init__(
        self,
        ir: ScheduleIR,
        schedule=None,
        pass_reports: Tuple[PassReport, ...] = (),
    ):
        if not isinstance(ir, ScheduleIR):
            raise TypeError(
                "CompiledSweep executes a lowered ScheduleIR; use "
                "compile_sweep(schedule, isa) to lower and compile a "
                "FoldingSchedule (the historical CompiledSweepND(schedule, "
                "isa) constructors were collapsed into it)"
            )
        self.ir = ir
        self.schedule = schedule
        self.pass_reports = tuple(pass_reports)
        self.isa = ir.isa
        self.vl = ir.vl
        self.dims = ir.dims
        self.transpose_back = ir.transpose_back
        vl = self.vl
        base_env: List[Optional[np.ndarray]] = [None] * ir.nregs
        prologue = ir.segments[0]
        if prologue.trip != "once":
            raise ValueError("the first IR segment must be the prologue (trip 'once')")
        _SegmentProgram(prologue.ops, vl, keep=set(range(ir.nregs))).run(base_env)
        self._base_env = base_env
        if self.dims == 1:
            self._block_prog = _SegmentProgram(ir.segment("block").ops, vl)
        else:
            vt_vids = {vid for cols in ir.vt_out for vid in cols}
            trips = {seg.trip for seg in ir.segments}
            if "pipelined" in trips:
                # Software-pipelined form: one merged segment interleaves the
                # vertical and horizontal stages (its dependency edges keep
                # every vt definition ahead of the stage inputs reading it);
                # the "prime" accounting segment is never executed — the
                # batched replay covers every square in one pass.
                self._pipelined_prog = _SegmentProgram(
                    ir.segment("pipelined").ops, vl, keep=vt_vids
                )
                self._vertical_prog = None
                self._horizontal_prog = None
            else:
                self._pipelined_prog = None
                self._vertical_prog = _SegmentProgram(
                    ir.segment("vertical").ops, vl, keep=vt_vids
                )
                self._horizontal_prog = _SegmentProgram(ir.segment("horizontal").ops, vl)

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(self, values: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """One folded update of every block position at once.

        1-D grids are expected (and returned) in the transpose layout; 2-D
        and 3-D grids stay in the original row-major layout.
        """
        values = np.asarray(values, dtype=np.float64)
        if self.dims == 1:
            return self._replay_sets(values, out)
        return self._replay_squares(values, out)

    def _replay_sets(self, values_t: np.ndarray, out_t: Optional[np.ndarray]) -> np.ndarray:
        vl = self.vl
        (nsets,) = self.ir.block_axes(values_t.size)
        v3 = np.ascontiguousarray(values_t).reshape(nsets, vl, vl)
        out_t = _check_contiguous_out(out_t, values_t)
        out3 = out_t.reshape(nsets, vl, vl)

        def load_fn(tag):
            _, delta, j = tag
            column = v3[:, j, :]
            if delta == 0:
                return column
            return np.roll(column, -delta, axis=0)

        def store_fn(tag, val):
            _, j = tag
            out3[:, j, :] = val

        env = list(self._base_env)
        self._block_prog.run(env, load_fn=load_fn, store_fn=store_fn)
        return out_t

    def _replay_squares(self, values: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
        vl = self.vl
        if values.ndim != self.dims:
            raise ValueError(f"CompiledSweep.replay expects a {self.dims}-D grid")
        planes, nrb, ncb = self.ir.block_axes(values.shape)
        rows, cols = values.shape[-2], values.shape[-1]
        values = np.ascontiguousarray(values)
        out = _check_contiguous_out(out, values)
        v5 = values.reshape(planes, nrb, vl, ncb, vl)
        out5 = out.reshape(planes, nrb, vl, ncb, vl)
        grid3 = values.reshape(planes, rows, cols)

        def load_fn(tag):
            _, dz, s = tag
            if dz == 0 and 0 <= s < vl:
                return v5[:, :, s]
            zsel = (np.arange(planes) + dz) % planes
            rowsel = (np.arange(nrb) * vl + s) % rows
            return grid3[np.ix_(zsel, rowsel)].reshape(planes, nrb, ncb, vl)

        env = list(self._base_env)

        def store_fn(tag, val):
            _, oi = tag
            out5[:, :, oi] = val

        if self._pipelined_prog is not None:

            def input_fn(tag):
                _, delta, ci, k = tag
                arr = env[self.ir.vt_out[ci][k]]
                if delta == 0:
                    return arr
                return np.roll(arr, -delta, axis=2)

            self._pipelined_prog.run(
                env, load_fn=load_fn, store_fn=store_fn, input_fn=input_fn
            )
        else:
            self._vertical_prog.run(env, load_fn=load_fn)
            vt_arrays = [[env[vid] for vid in col_vids] for col_vids in self.ir.vt_out]

            def input_fn(tag):
                _, delta, ci, k = tag
                arr = vt_arrays[ci][k]
                if delta == 0:
                    return arr
                return np.roll(arr, -delta, axis=2)

            self._horizontal_prog.run(env, store_fn=store_fn, input_fn=input_fn)
        if not self.transpose_back:
            from repro.core.vectorized_folding import (
                _untranspose_plane_tiles,
                _untranspose_tiles,
            )

            if self.dims == 2:
                out = _untranspose_tiles(out, vl)
            else:
                out = _untranspose_plane_tiles(out, vl)
        return out

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def sweep_counts(
        self, shape: Union[int, Sequence[int]]
    ) -> Tuple[InstructionCounts, int, int]:
        """Exact per-sweep ``(counts, peak_live, spills)`` — see
        :meth:`ScheduleIR.sweep_counts`."""
        return self.ir.sweep_counts(shape)


def compile_sweep(
    schedule,
    isa: IsaSpec,
    transpose_back: bool = True,
    optimize: Union[bool, Sequence, None] = False,
) -> CompiledSweep:
    """Lower, optionally optimize, and compile the SIMD sweep of ``schedule``.

    Parameters
    ----------
    schedule:
        A 1-D/2-D/3-D :class:`~repro.core.vectorized_folding.FoldingSchedule`.
    isa:
        Target instruction set.
    transpose_back:
        Mirrors the interpreted sweeps' weighted-transpose flag (ignored for
        1-D schedules, which always stay in the transpose layout).
    optimize:
        ``False`` (default) compiles the recorded program as-is — replay
        values *and* instruction counts are identical to the interpreted
        sweep.  ``True`` runs the default pass pipeline
        (:data:`repro.ir.passes.DEFAULT_PASSES`); a sequence of pass names /
        callables runs a custom pipeline.  Optimized replay stays
        bit-identical but yields the optimized program's own (smaller)
        counts; the applied :class:`~repro.ir.passes.PassReport` deltas are
        exposed as ``CompiledSweep.pass_reports``.
    """
    ir = None
    if transpose_back and isa in (AVX2, AVX512):
        # Share the schedule's canonical lowering cache (also read by the
        # cost model's instruction profile) instead of re-recording the
        # program; the getattr keeps duck-typed schedule stand-ins working.
        cached = getattr(schedule, "schedule_ir", None)
        if cached is not None:
            ir = cached(isa.vector_lanes)
    if ir is None:
        ir = lower_schedule(schedule, isa, transpose_back=transpose_back)
    reports: Tuple[PassReport, ...] = ()
    if optimize is not False and optimize is not None:
        ir, reports = PassManager(optimize).run(ir)
    return CompiledSweep(ir, schedule=schedule, pass_reports=reports)
