"""Machine descriptions used throughout the reproduction.

The paper evaluates on a dual-socket Intel Xeon Gold 6140 (Skylake-SP,
2×18 cores, AVX-512).  We do not have that machine (or any machine whose
native SIMD behaviour we can measure from Python), so the performance side of
the reproduction is driven by an explicit :class:`MachineSpec` that records
the quantities the paper's reasoning depends on:

* SIMD vector width (4 doubles for AVX-2, 8 for AVX-512) and the number of
  architectural vector registers,
* cache hierarchy sizes and per-level bandwidths,
* core counts and the frequency behaviour, including the AVX-512 *throttling*
  the paper calls out explicitly (3.70 GHz turbo → 3.00 GHz with all 18 cores
  active → 2.10 GHz under heavy AVX-512),
* peak FLOP throughput per core (2 FMA ports × vector width × 2 flops).

:data:`XEON_GOLD_6140_AVX2` and :data:`XEON_GOLD_6140_AVX512` encode the
evaluation machine of the paper in its two instruction-set configurations.
The cost model in :mod:`repro.perfmodel` and the multicore model in
:mod:`repro.parallel.model` consume these specs; the SIMD simulator in
:mod:`repro.simd` consumes the ISA-related fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class CacheLevelSpec:
    """Description of one cache level.

    Attributes
    ----------
    name:
        Human readable level name (``"L1"``, ``"L2"``, ``"L3"``).
    capacity_bytes:
        Usable capacity per *sharing domain* (per core for private caches,
        per socket for the shared L3).
    line_bytes:
        Cache line size in bytes.
    associativity:
        Number of ways; used by the exact simulator in :mod:`repro.cache`.
    latency_cycles:
        Load-to-use latency in core cycles.
    bandwidth_bytes_per_cycle:
        Sustained bandwidth between this level and the core (per core), in
        bytes per cycle.  Used by the roofline cost model.
    shared:
        ``True`` if the level is shared between the cores of a socket.
    """

    name: str
    capacity_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: float
    bandwidth_bytes_per_cycle: float
    shared: bool = False


@dataclass(frozen=True)
class FrequencySpec:
    """Clock frequency behaviour of the machine.

    The Xeon Gold 6140 reduces its clock when many cores are active and again
    when heavy 512-bit instructions are executed; the paper blames this
    throttling for the mediocre AVX-512 results on 3-D stencils.  The model is
    deliberately simple: a base frequency, a single-core turbo, an all-core
    turbo, and an all-core AVX-512 frequency, with linear interpolation on the
    number of active cores.
    """

    base_ghz: float
    turbo_1core_ghz: float
    turbo_allcore_ghz: float
    avx512_allcore_ghz: float

    def effective_ghz(self, active_cores: int, total_cores: int, avx512: bool) -> float:
        """Return the modelled clock frequency in GHz.

        Parameters
        ----------
        active_cores:
            Number of cores running the kernel.
        total_cores:
            Number of physical cores in the machine.
        avx512:
            ``True`` when the kernel issues 512-bit instructions.
        """
        if active_cores < 1:
            raise ValueError("active_cores must be >= 1")
        active_cores = min(active_cores, total_cores)
        frac = 0.0 if total_cores <= 1 else (active_cores - 1) / (total_cores - 1)
        hi = self.turbo_1core_ghz
        lo = self.avx512_allcore_ghz if avx512 else self.turbo_allcore_ghz
        return hi + (lo - hi) * frac


@dataclass(frozen=True)
class MachineSpec:
    """Full description of the evaluation machine for one ISA configuration.

    Attributes
    ----------
    name:
        Identifier (used in reports).
    isa:
        ``"avx2"`` or ``"avx512"``.
    vector_lanes:
        SIMD width in ``float64`` lanes (4 for AVX-2, 8 for AVX-512).
    vector_registers:
        Number of architectural SIMD registers visible to a kernel
        (16 ymm for AVX-2, 32 zmm for AVX-512).
    cores_per_socket / sockets:
        Physical core topology.
    caches:
        Cache levels ordered from closest (L1) to farthest (L3).
    memory_bandwidth_gbs:
        Sustained DRAM bandwidth per socket in GB/s.
    memory_latency_cycles:
        DRAM access latency in core cycles (used by the exact simulator).
    frequency:
        Clock behaviour, including AVX-512 throttling.
    fma_ports:
        Number of SIMD FMA execution ports per core.
    """

    name: str
    isa: str
    vector_lanes: int
    vector_registers: int
    cores_per_socket: int
    sockets: int
    caches: Tuple[CacheLevelSpec, ...]
    memory_bandwidth_gbs: float
    memory_latency_cycles: float
    frequency: FrequencySpec
    fma_ports: int = 2
    #: Sustained DRAM bandwidth a *single* core can extract (GB/s).  One core
    #: cannot saturate the socket's memory controllers, which is why the
    #: paper's sequential memory-resident runs are not purely bandwidth bound
    #: and why the multicore curves keep scaling until the aggregate demand
    #: reaches the socket bandwidth.
    single_core_memory_bandwidth_gbs: float = 14.0

    @property
    def total_cores(self) -> int:
        """Total physical cores across all sockets."""
        return self.cores_per_socket * self.sockets

    @property
    def vector_bytes(self) -> int:
        """SIMD register width in bytes (``vector_lanes`` doubles)."""
        return self.vector_lanes * 8

    @property
    def peak_flops_per_cycle_per_core(self) -> float:
        """Peak double-precision flops per cycle per core (FMA counted as 2)."""
        return self.fma_ports * self.vector_lanes * 2

    def peak_gflops(self, active_cores: int | None = None) -> float:
        """Peak GFLOP/s for ``active_cores`` cores (default: all cores).

        The AVX-512 configuration of the Xeon Gold 6140 peaks at
        73.6 GFLOP/s per core at the 2.30 GHz base clock, matching the number
        quoted in the paper's Section 4.1.
        """
        cores = self.total_cores if active_cores is None else active_cores
        ghz = self.frequency.effective_ghz(cores, self.total_cores, self.isa == "avx512")
        return self.peak_flops_per_cycle_per_core * ghz * cores

    def cache_level(self, name: str) -> CacheLevelSpec:
        """Return the cache level named ``name`` (case-insensitive)."""
        for lvl in self.caches:
            if lvl.name.lower() == name.lower():
                return lvl
        raise KeyError(f"no cache level named {name!r} in machine {self.name!r}")

    def memory_bytes_per_cycle(self, active_cores: int, avx512: bool | None = None) -> float:
        """DRAM bandwidth available *per active core*, in bytes per core cycle.

        The per-socket bandwidth is shared between the active cores of that
        socket; threads are assumed to be spread evenly across sockets (the
        paper uses compact OpenMP pinning across both sockets at 36 threads,
        and the scalability experiments sweep cores within that placement).
        """
        if avx512 is None:
            avx512 = self.isa == "avx512"
        ghz = self.frequency.effective_ghz(active_cores, self.total_cores, avx512)
        sockets_used = min(self.sockets, max(1, -(-active_cores // self.cores_per_socket)))
        total_bw = self.memory_bandwidth_gbs * sockets_used * 1e9
        per_core = total_bw / max(1, active_cores)
        per_core = min(per_core, self.single_core_memory_bandwidth_gbs * 1e9)
        return per_core / (ghz * 1e9)


def _xeon_6140_caches() -> Tuple[CacheLevelSpec, ...]:
    """Cache hierarchy of one Xeon Gold 6140 core/socket (Skylake-SP)."""
    return (
        CacheLevelSpec(
            name="L1",
            capacity_bytes=32 * 1024,
            line_bytes=64,
            associativity=8,
            latency_cycles=4,
            bandwidth_bytes_per_cycle=128.0,
            shared=False,
        ),
        CacheLevelSpec(
            name="L2",
            capacity_bytes=1024 * 1024,
            line_bytes=64,
            associativity=16,
            latency_cycles=14,
            bandwidth_bytes_per_cycle=64.0,
            shared=False,
        ),
        CacheLevelSpec(
            name="L3",
            capacity_bytes=int(24.75 * 1024 * 1024),
            line_bytes=64,
            associativity=11,
            latency_cycles=50,
            bandwidth_bytes_per_cycle=16.0,
            shared=True,
        ),
    )


#: The paper's machine running 256-bit AVX-2 code (vl = 4 doubles).
XEON_GOLD_6140_AVX2 = MachineSpec(
    name="Xeon Gold 6140 (AVX-2)",
    isa="avx2",
    vector_lanes=4,
    vector_registers=16,
    cores_per_socket=18,
    sockets=2,
    caches=_xeon_6140_caches(),
    memory_bandwidth_gbs=110.0,
    memory_latency_cycles=200,
    frequency=FrequencySpec(
        base_ghz=2.30,
        turbo_1core_ghz=3.70,
        turbo_allcore_ghz=3.00,
        avx512_allcore_ghz=3.00,
    ),
)

#: The paper's machine running 512-bit AVX-512 code (vl = 8 doubles).
XEON_GOLD_6140_AVX512 = MachineSpec(
    name="Xeon Gold 6140 (AVX-512)",
    isa="avx512",
    vector_lanes=8,
    vector_registers=32,
    cores_per_socket=18,
    sockets=2,
    caches=_xeon_6140_caches(),
    memory_bandwidth_gbs=110.0,
    memory_latency_cycles=200,
    frequency=FrequencySpec(
        base_ghz=2.30,
        turbo_1core_ghz=3.70,
        turbo_allcore_ghz=3.00,
        avx512_allcore_ghz=2.10,
    ),
)

#: Registry of the machines used by the experiment harness, keyed by ISA.
MACHINES: Dict[str, MachineSpec] = {
    "avx2": XEON_GOLD_6140_AVX2,
    "avx512": XEON_GOLD_6140_AVX512,
}


#: SIMD register file per ISA: ``isa -> (float64 lanes, architectural regs)``.
_ISA_REGISTER_FILES: Dict[str, Tuple[int, int]] = {
    "avx2": (4, 16),
    "avx512": (8, 32),
}


def isa_variant(machine: MachineSpec, isa: str) -> MachineSpec:
    """Return ``machine`` reconfigured for ``isa``.

    The multicore experiments evaluate the *same physical machine* in both
    instruction-set configurations (the AVX-512 series of Figure 9/10).  For
    the bundled Xeon Gold 6140 specs this returns the exact registered
    counterpart; for a user-supplied machine it derives the variant by
    swapping the SIMD register file (4×ymm16 for AVX-2, 8×zmm32 for
    AVX-512) while keeping the topology, caches, bandwidths and frequency
    behaviour — a custom spec models AVX-512 throttling through its own
    ``FrequencySpec.avx512_allcore_ghz``, which applies in either variant.
    """
    isa = isa.strip().lower()
    if isa not in _ISA_REGISTER_FILES:
        raise KeyError(f"unknown ISA {isa!r}; expected one of {sorted(_ISA_REGISTER_FILES)}")
    if machine.isa == isa:
        return machine
    if machine in MACHINES.values():
        return MACHINES[isa]
    lanes, registers = _ISA_REGISTER_FILES[isa]
    name = machine.name
    # Strip a variant suffix this function previously appended, so repeated
    # derivation never stacks suffixes.
    for variant_isa in _ISA_REGISTER_FILES:
        suffix = f" [{variant_isa}]"
        if name.endswith(suffix):
            name = name[: -len(suffix)]
            break
    for tag, variant_isa in (("(AVX-2)", "avx2"), ("(AVX-512)", "avx512")):
        if tag in name and variant_isa != isa:
            other = "(AVX-512)" if isa == "avx512" else "(AVX-2)"
            name = name.replace(tag, other)
            break
    else:
        name = f"{name} [{isa}]"
    return replace(
        machine, isa=isa, vector_lanes=lanes, vector_registers=registers, name=name
    )


def scalability_cores(machine: MachineSpec) -> Tuple[int, ...]:
    """Core counts to sweep in a scalability experiment on ``machine``.

    Mirrors the sampling of the paper's Figure 10: geometric (powers of two)
    through the low end, then roughly six evenly spaced points up to the
    full machine.  For the Xeon Gold 6140 this reproduces the paper's sweep
    ``(1, 2, 4, 8, 12, 18, 24, 30, 36)`` exactly; any other
    :class:`MachineSpec` gets a sweep of the same shape ending at its own
    ``total_cores``.
    """
    total = machine.total_cores
    step = max(1, round(total / 6))
    cores = [1]
    while cores[-1] * 2 < 2 * step:
        cores.append(cores[-1] * 2)
    nxt = (cores[-1] // step + 1) * step
    while nxt <= total:
        cores.append(nxt)
        nxt += step
    if cores[-1] != total:
        cores.append(total)
    return tuple(cores)


def machine_for_isa(isa: str) -> MachineSpec:
    """Return the evaluation machine configured for ``isa``.

    Parameters
    ----------
    isa:
        ``"avx2"`` or ``"avx512"``.
    """
    try:
        return MACHINES[isa.lower()]
    except KeyError as exc:
        raise KeyError(f"unknown ISA {isa!r}; expected one of {sorted(MACHINES)}") from exc
