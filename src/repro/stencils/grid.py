"""Grid container and initialisers.

A :class:`Grid` bundles the interior values of a stencil problem with its
boundary condition and (optionally) the static auxiliary array used by the
non-linear benchmarks (the APOP payoff).  It is a thin convenience layer:
all executors operate on plain ``float64`` NumPy arrays, and :class:`Grid`
only standardises how those arrays are created, padded and compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencils.boundary import BoundaryCondition, pad_with_halo


@dataclass
class Grid:
    """A d-dimensional grid of ``float64`` values plus its boundary condition.

    Attributes
    ----------
    values:
        Interior values (no halo).  Mutated in place by ``advance``-style
        helpers; executors generally return fresh arrays instead.
    boundary:
        Boundary condition applied outside the interior.
    aux:
        Optional static auxiliary array of the same shape (e.g. APOP payoff).
    """

    values: np.ndarray
    boundary: BoundaryCondition = BoundaryCondition.PERIODIC
    aux: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.aux is not None:
            self.aux = np.asarray(self.aux, dtype=np.float64)
            if self.aux.shape != self.values.shape:
                raise ValueError(
                    f"aux shape {self.aux.shape} differs from grid shape {self.values.shape}"
                )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def random(
        shape: Sequence[int],
        boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
        seed: int = 0,
        low: float = 0.0,
        high: float = 1.0,
        aux: Optional[np.ndarray] = None,
    ) -> "Grid":
        """Create a grid with uniformly random interior values.

        A fixed ``seed`` keeps tests and benchmarks deterministic.
        """
        rng = np.random.default_rng(seed)
        values = rng.uniform(low, high, size=tuple(shape))
        return Grid(values=values, boundary=boundary, aux=aux)

    @staticmethod
    def zeros(
        shape: Sequence[int],
        boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
    ) -> "Grid":
        """Create an all-zero grid."""
        return Grid(values=np.zeros(tuple(shape), dtype=np.float64), boundary=boundary)

    @staticmethod
    def gaussian_bump(
        shape: Sequence[int],
        boundary: BoundaryCondition = BoundaryCondition.DIRICHLET,
        amplitude: float = 1.0,
        width_fraction: float = 0.1,
    ) -> "Grid":
        """Create a grid holding a centred Gaussian bump.

        Useful for the heat-equation examples: diffusion of a bump is easy to
        eyeball and conserves positivity, so plots and sanity checks are
        straightforward.

        Parameters
        ----------
        shape:
            Interior grid shape.
        boundary:
            Boundary condition (defaults to Dirichlet, the physically natural
            choice for a decaying bump).
        amplitude:
            Peak value at the centre.
        width_fraction:
            Standard deviation of the Gaussian as a fraction of each extent.
        """
        shape = tuple(shape)
        axes = [np.arange(n, dtype=np.float64) for n in shape]
        grids = np.meshgrid(*axes, indexing="ij")
        sq = np.zeros(shape, dtype=np.float64)
        for g, n in zip(grids, shape):
            centre = (n - 1) / 2.0
            sigma = max(width_fraction * n, 1.0)
            sq += ((g - centre) / sigma) ** 2
        return Grid(values=amplitude * np.exp(-0.5 * sq), boundary=boundary)

    @staticmethod
    def life_random(
        shape: Sequence[int],
        density: float = 0.35,
        seed: int = 0,
    ) -> "Grid":
        """Create a random 0/1 grid for the Game of Life benchmark."""
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must lie in [0, 1]")
        rng = np.random.default_rng(seed)
        values = (rng.uniform(size=tuple(shape)) < density).astype(np.float64)
        return Grid(values=values, boundary=BoundaryCondition.PERIODIC)

    # ------------------------------------------------------------------ #
    # geometry / views
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Interior shape."""
        return tuple(self.values.shape)

    @property
    def dims(self) -> int:
        """Number of spatial dimensions."""
        return self.values.ndim

    @property
    def npoints(self) -> int:
        """Total number of interior points."""
        return int(self.values.size)

    def padded(self, halo: int) -> np.ndarray:
        """Return a fresh padded copy realising the boundary condition."""
        return pad_with_halo(self.values, halo, self.boundary)

    def copy(self) -> "Grid":
        """Deep copy of the grid (values and aux)."""
        return Grid(
            values=self.values.copy(),
            boundary=self.boundary,
            aux=None if self.aux is None else self.aux.copy(),
        )

    def with_values(self, values: np.ndarray) -> "Grid":
        """Return a new grid sharing boundary/aux but holding ``values``."""
        return Grid(
            values=np.asarray(values, dtype=np.float64), boundary=self.boundary, aux=self.aux
        )

    def nbytes(self) -> int:
        """Bytes occupied by the interior values (excludes halo and aux)."""
        return int(self.values.nbytes)
