"""Stencil specifications, reference executors and the paper's benchmarks.

This subpackage is the numerical ground truth of the reproduction:

* :mod:`repro.stencils.spec` defines :class:`~repro.stencils.spec.StencilSpec`,
  the declarative description of a stencil (kernel weights, shape class,
  optional nonlinearity) and its m-step composition,
* :mod:`repro.stencils.boundary` defines the supported boundary conditions,
* :mod:`repro.stencils.grid` holds the grid container and initialisers,
* :mod:`repro.stencils.reference` implements the naive reference executor that
  every optimized schedule is validated against,
* :mod:`repro.stencils.library` instantiates the nine benchmarks of the
  paper's Table 1 together with their problem and blocking sizes.
"""

from repro.stencils.spec import StencilSpec, StencilShape
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.reference import reference_step, reference_run
from repro.stencils.library import (
    BENCHMARKS,
    BenchmarkCase,
    get_benchmark,
    heat_1d,
    heat_2d,
    heat_3d,
    box_1d5p,
    box_2d9p,
    box_3d27p,
    apop,
    game_of_life,
    general_box_2d9p,
)

__all__ = [
    "StencilSpec",
    "StencilShape",
    "BoundaryCondition",
    "Grid",
    "reference_step",
    "reference_run",
    "BENCHMARKS",
    "BenchmarkCase",
    "get_benchmark",
    "heat_1d",
    "heat_2d",
    "heat_3d",
    "box_1d5p",
    "box_2d9p",
    "box_3d27p",
    "apop",
    "game_of_life",
    "general_box_2d9p",
]
