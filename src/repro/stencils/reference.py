"""Naive reference executors.

These implement the *definition* of a stencil update — the ``d + 1`` nested
loops of the paper's introduction — using :func:`scipy.ndimage.correlate` for
the weighted sum so that the reference itself is fast enough to validate
optimized schedules on realistically sized grids.  The reference is used as
ground truth by every test and by the experiment harness's self-check.

Jacobi-style semantics are used throughout (as in the paper): every point of
time step ``t + 1`` is computed from values of time step ``t`` only, with two
arrays alternating roles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from repro.stencils.boundary import DIRICHLET_VALUE, BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


def linear_sum(
    spec: StencilSpec,
    values: np.ndarray,
    boundary: BoundaryCondition,
) -> np.ndarray:
    """Return the weighted neighbour sum of ``values`` under ``spec``.

    This is one linear stencil application *without* any post rule, i.e. the
    quantity the paper's folding analysis reasons about.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != spec.dims:
        raise ValueError(
            f"grid has {values.ndim} dimensions but stencil {spec.name!r} has {spec.dims}"
        )
    return ndimage.correlate(
        values,
        spec.kernel,
        mode=boundary.ndimage_mode,
        cval=DIRICHLET_VALUE,
    )


def reference_step(
    spec: StencilSpec,
    values: np.ndarray,
    boundary: BoundaryCondition,
    aux: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Advance ``values`` by exactly one time step of ``spec``.

    Parameters
    ----------
    spec:
        Stencil description.
    values:
        Interior grid values at time ``t``.
    boundary:
        Boundary condition.
    aux:
        Static auxiliary array for stencils with a post rule (APOP payoff);
        ignored by linear stencils.

    Returns
    -------
    numpy.ndarray
        The grid at time ``t + 1`` (a new array; ``values`` is untouched).
    """
    summed = linear_sum(spec, values, boundary)
    if spec.post_rule is None:
        return summed
    return spec.post_rule(summed, np.asarray(values, dtype=np.float64), aux)


def reference_run(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
) -> np.ndarray:
    """Advance ``grid`` by ``steps`` time steps using the naive executor.

    Returns the final interior values; the input grid is not modified.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    values = grid.values.copy()
    for _ in range(steps):
        values = reference_step(spec, values, grid.boundary, aux=grid.aux)
    return values


def folded_reference_step(
    spec: StencilSpec,
    values: np.ndarray,
    boundary: BoundaryCondition,
    m: int,
) -> np.ndarray:
    """Advance ``values`` by ``m`` steps in a single composed-kernel application.

    This is the *mathematical* statement of temporal computation folding
    (Section 3 of the paper): one application of the m-fold self-convolved
    kernel.  For periodic boundaries it is exactly equivalent to ``m`` single
    steps everywhere; for Dirichlet boundaries it is exact only at interior
    points at distance ``>= (m - 1) * r`` from the boundary — the engine
    recomputes the remaining band step-by-step (see
    the folded executor in :mod:`repro.core.plan`).  Only defined for linear stencils.
    """
    folded = spec.compose(m)
    return linear_sum(folded, values, boundary)
