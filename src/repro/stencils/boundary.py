"""Boundary conditions supported by the executors.

The paper (like most of the stencil-optimization literature) does not discuss
boundary handling; its measurements use interior-dominated problem sizes
where the boundary contribution is negligible.  For a *correctness-checked*
reproduction the boundary matters, because temporal folding and temporal
tiling are only exactly equivalent to step-by-step execution when the
boundary is treated consistently.  Two conditions are supported:

``PERIODIC``
    The grid wraps around.  Temporal folding with the composed kernel is then
    exactly equivalent to ``m`` single steps *everywhere*, which makes this
    the preferred condition for property-based equivalence tests.

``DIRICHLET``
    The grid is surrounded by a constant halo (value
    :data:`DIRICHLET_VALUE`, zero by default) that never changes.  Folded
    executors must recompute a band of width ``(m-1)·r`` next to the boundary
    step-by-step to stay exactly equivalent (ghost-zone handling); the engine
    in :mod:`repro.core.plan` does so.
"""

from __future__ import annotations

import enum

import numpy as np

#: The constant value of the halo for Dirichlet boundaries.
DIRICHLET_VALUE = 0.0


class BoundaryCondition(enum.Enum):
    """Boundary condition applied outside the computational domain."""

    PERIODIC = "periodic"
    DIRICHLET = "dirichlet"

    @property
    def ndimage_mode(self) -> str:
        """The :func:`scipy.ndimage.correlate` ``mode`` implementing this condition."""
        if self is BoundaryCondition.PERIODIC:
            return "wrap"
        return "constant"


def pad_with_halo(
    array: np.ndarray,
    halo: int,
    boundary: BoundaryCondition,
) -> np.ndarray:
    """Return a copy of ``array`` surrounded by a halo of width ``halo``.

    For :attr:`BoundaryCondition.PERIODIC` the halo is filled with wrapped
    copies of the opposite edge; for :attr:`BoundaryCondition.DIRICHLET` it is
    filled with :data:`DIRICHLET_VALUE`.

    Parameters
    ----------
    array:
        Interior grid values (no halo).
    halo:
        Halo width in points, identical in every dimension; must be >= 0.
    boundary:
        The boundary condition to realise.
    """
    if halo < 0:
        raise ValueError("halo must be non-negative")
    if halo == 0:
        return np.array(array, dtype=np.float64, copy=True)
    if boundary is BoundaryCondition.PERIODIC:
        return np.pad(np.asarray(array, dtype=np.float64), halo, mode="wrap")
    return np.pad(
        np.asarray(array, dtype=np.float64),
        halo,
        mode="constant",
        constant_values=DIRICHLET_VALUE,
    )


def interior_view(padded: np.ndarray, halo: int) -> np.ndarray:
    """Return the interior view of a padded array (inverse of :func:`pad_with_halo`).

    The returned array is a *view*: writing to it updates ``padded``.
    """
    if halo < 0:
        raise ValueError("halo must be non-negative")
    if halo == 0:
        return padded
    slices = tuple(slice(halo, -halo) for _ in range(padded.ndim))
    return padded[slices]
