"""Declarative stencil specifications.

A stencil in this package is described by a dense weight *kernel*: an
``ndarray`` of odd extent along every dimension whose centre element is the
weight of the updated point itself.  For the linear, constant-coefficient
stencils the paper evaluates (heat equations, box smoothers, the asymmetric
GB kernel) the kernel fully determines the computation:

``u_{t+1}[i] = sum_k  kernel[k] * u_t[i + k - centre]``

Two of the paper's benchmarks are not purely linear:

* **APOP** (American put option pricing) applies an elementwise ``max``
  against a static payoff array after the 3-point weighted sum,
* **Game of Life** maps the 8-neighbour count through Conway's survival rule.

Both are expressed with the same kernel machinery plus a *post-update rule*
(:attr:`StencilSpec.post_rule`), so every executor in the package handles
them uniformly.  Temporal computation folding (Section 3 of the paper)
requires linearity; :attr:`StencilSpec.foldable` captures that.

The central operation for the paper's Section 3 is :meth:`StencilSpec.compose`,
which returns the *folding kernel* for ``m`` fused time steps: the m-fold
discrete self-convolution of the kernel.  Its entries are exactly the
re-assigned weights ``λ`` of the paper's folding matrix (Figure 4/5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np
from scipy import signal


class StencilShape(enum.Enum):
    """Geometric classification of a stencil's neighbour pattern.

    ``STAR``
        Non-zero weights only along the coordinate axes (e.g. 5-point 2-D
        heat, 7-point 3-D heat).
    ``BOX``
        Non-zero weights on the full ``(2r+1)^d`` hypercube (e.g. 9-point 2-D
        box, 27-point 3-D box, Game of Life).
    ``GENERAL``
        Anything else.
    """

    STAR = "star"
    BOX = "box"
    GENERAL = "general"


#: Signature of a post-update rule applied after the linear weighted sum.
#: Arguments: ``linear_sum`` (the weighted neighbour sum), ``previous`` (the
#: grid before the update) and ``aux`` (the stencil's static auxiliary array,
#: e.g. the APOP payoff), returning the updated grid.
PostRule = Callable[[np.ndarray, np.ndarray, Optional[np.ndarray]], np.ndarray]


def _classify(kernel: np.ndarray) -> StencilShape:
    """Classify ``kernel`` as star, box or general."""
    nz = np.argwhere(kernel != 0.0)
    if nz.size == 0:
        return StencilShape.GENERAL
    centre = np.array([(s - 1) // 2 for s in kernel.shape])
    offsets = nz - centre
    # Star: every non-zero offset has at most one non-zero coordinate.
    if all(np.count_nonzero(off) <= 1 for off in offsets):
        return StencilShape.STAR
    # Box: every position within the bounding radius is non-zero.
    if np.count_nonzero(kernel) == kernel.size:
        return StencilShape.BOX
    return StencilShape.GENERAL


@dataclass(frozen=True)
class StencilSpec:
    """Immutable description of a stencil computation.

    Attributes
    ----------
    name:
        Identifier used by the benchmark library and reports.
    kernel:
        Dense weight array of odd extent along each dimension, centred.
    linear:
        ``True`` when one time step is exactly the weighted sum (no post
        rule).  Only linear stencils can be temporally folded.
    post_rule:
        Optional elementwise nonlinearity applied after the weighted sum.
    aux_name:
        Name of the static auxiliary array consumed by ``post_rule`` (for
        reporting); ``None`` when no auxiliary input exists.
    description:
        One-line human readable description.
    """

    name: str
    kernel: np.ndarray
    linear: bool = True
    post_rule: Optional[PostRule] = None
    aux_name: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        kernel = np.asarray(self.kernel, dtype=np.float64)
        if kernel.ndim < 1 or kernel.ndim > 3:
            raise ValueError("only 1-D, 2-D and 3-D stencils are supported")
        if any(s % 2 == 0 for s in kernel.shape):
            raise ValueError(f"kernel extents must be odd, got {kernel.shape}")
        if not np.all(np.isfinite(kernel)):
            raise ValueError("kernel weights must be finite")
        object.__setattr__(self, "kernel", kernel)
        if not self.linear and self.post_rule is None:
            raise ValueError("non-linear stencils must provide a post_rule")

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #
    @property
    def dims(self) -> int:
        """Number of spatial dimensions."""
        return self.kernel.ndim

    @property
    def radii(self) -> Tuple[int, ...]:
        """Per-dimension radius ``r`` such that the extent is ``2r + 1``."""
        return tuple((s - 1) // 2 for s in self.kernel.shape)

    @property
    def radius(self) -> int:
        """Maximum radius over all dimensions."""
        return max(self.radii)

    @property
    def centre(self) -> Tuple[int, ...]:
        """Index of the centre element inside :attr:`kernel`."""
        return self.radii

    @property
    def shape_class(self) -> StencilShape:
        """Star / box / general classification of the neighbour pattern."""
        return _classify(self.kernel)

    @property
    def npoints(self) -> int:
        """Number of non-zero weights (the 'points' of an n-point stencil)."""
        return int(np.count_nonzero(self.kernel))

    @property
    def foldable(self) -> bool:
        """Whether temporal computation folding applies (linear stencils only)."""
        return self.linear

    def offsets_and_weights(self) -> Dict[Tuple[int, ...], float]:
        """Return a mapping from neighbour offset (relative to centre) to weight.

        Only non-zero weights are included.  Offsets are tuples of length
        :attr:`dims`, e.g. ``(-1, 0)`` for the west neighbour of a 2-D stencil.
        """
        out: Dict[Tuple[int, ...], float] = {}
        centre = np.array(self.centre)
        for idx in np.argwhere(self.kernel != 0.0):
            off = tuple(int(v) for v in (idx - centre))
            out[off] = float(self.kernel[tuple(idx)])
        return out

    # ------------------------------------------------------------------ #
    # flop accounting
    # ------------------------------------------------------------------ #
    @property
    def flops_per_point(self) -> int:
        """Useful floating point operations per grid point per time step.

        Following the convention of the paper (and of the stencil literature
        in general) this counts one multiply per non-zero weight and one add
        per additional term of the weighted sum: ``2 * npoints - 1``.  The
        nonlinearity of APOP / Game of Life is not counted as useful flops,
        matching how GFLOP/s (GStencil/s-equivalent) figures are normally
        reported.
        """
        return 2 * self.npoints - 1

    # ------------------------------------------------------------------ #
    # temporal composition (the folding kernel of Section 3)
    # ------------------------------------------------------------------ #
    def compose(self, m: int) -> "StencilSpec":
        """Return the stencil that advances ``m`` time steps in one update.

        For a linear stencil applying the kernel ``K`` once per step, ``m``
        steps are equivalent to a single application of the m-fold discrete
        self-convolution of ``K``.  The returned spec's kernel is exactly the
        paper's *folding matrix* Λ (its entries are the re-assigned weights
        ``λ`` of Figure 4/5).

        Raises
        ------
        ValueError
            If the stencil is not linear (folding undefined) or ``m < 1``.
        """
        if m < 1:
            raise ValueError("m must be >= 1")
        if not self.linear:
            raise ValueError(f"stencil {self.name!r} is non-linear and cannot be folded")
        if m == 1:
            return self
        folded = self.kernel
        for _ in range(m - 1):
            folded = signal.convolve(folded, self.kernel, mode="full")
        return replace(
            self,
            name=f"{self.name}@m{m}",
            kernel=folded,
            description=f"{m}-step folding of {self.name}",
        )

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_offsets(
        name: str,
        offsets: Dict[Tuple[int, ...], float],
        dims: int,
        **kwargs: object,
    ) -> "StencilSpec":
        """Build a spec from an offset→weight mapping.

        Parameters
        ----------
        name:
            Stencil identifier.
        offsets:
            Mapping from relative offsets (tuples of length ``dims``) to
            weights.
        dims:
            Number of spatial dimensions (validates the offset tuples).
        kwargs:
            Forwarded to :class:`StencilSpec` (``linear``, ``post_rule``, ...).
        """
        if not offsets:
            raise ValueError("offsets mapping must not be empty")
        radius = [0] * dims
        for off in offsets:
            if len(off) != dims:
                raise ValueError(f"offset {off} does not have {dims} coordinates")
            for d, o in enumerate(off):
                radius[d] = max(radius[d], abs(int(o)))
        shape = tuple(2 * r + 1 for r in radius)
        kernel = np.zeros(shape, dtype=np.float64)
        centre = np.array(radius)
        for off, w in offsets.items():
            kernel[tuple(centre + np.array(off))] = w
        return StencilSpec(name=name, kernel=kernel, **kwargs)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StencilSpec(name={self.name!r}, dims={self.dims}, "
            f"points={self.npoints}, shape={self.shape_class.value}, "
            f"linear={self.linear})"
        )
