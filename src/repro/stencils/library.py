"""The paper's benchmark stencils and their Table 1 parameters.

The evaluation section uses nine stencils:

===========  ====  ======================================================
Benchmark    Pts   Description
===========  ====  ======================================================
1D-Heat      3     1-D heat equation (3-point star)
1D5P         5     1-D 5-point high-order stencil
APOP         6     American put option pricing — 3-point stencil over the
                   option-value array plus an elementwise max against the
                   static payoff array (the paper counts 6 points because
                   two input arrays are involved)
2D-Heat      5     2-D heat equation (5-point star)
2D9P         9     2-D 9-point box smoother (uniform weights)
Game of Life 8     Conway's cellular automaton (8-neighbour rule)
GB           9     general box — 2-D 9-point box with 9 distinct weights
3D-Heat      7     3-D heat equation (7-point star)
3D27P        27    3-D 27-point box smoother
===========  ====  ======================================================

Each benchmark is wrapped in a :class:`BenchmarkCase` carrying the paper's
problem size, total time steps and blocking size (Table 1) together with a
scaled-down size used by correctness tests, and a factory for a deterministic
initial grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.stencils.boundary import BoundaryCondition
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec


# --------------------------------------------------------------------------- #
# linear stencil constructors
# --------------------------------------------------------------------------- #
def heat_1d(alpha: float = 0.25) -> StencilSpec:
    """1-D heat equation stencil ``u' = alpha*u[-1] + (1-2*alpha)*u[0] + alpha*u[+1]``.

    ``alpha`` is the diffusion number ``dt/dx^2``; the default ``0.25`` is
    stable and gives the classic (1/4, 1/2, 1/4) smoothing weights.
    """
    return StencilSpec(
        name="1d-heat",
        kernel=np.array([alpha, 1.0 - 2.0 * alpha, alpha]),
        description="1-D 3-point heat equation",
    )


def box_1d5p() -> StencilSpec:
    """1-D 5-point stencil with symmetric binomial-like weights."""
    return StencilSpec(
        name="1d5p",
        kernel=np.array([0.0625, 0.25, 0.375, 0.25, 0.0625]),
        description="1-D 5-point high-order smoother",
    )


def heat_2d(alpha: float = 0.125) -> StencilSpec:
    """2-D heat equation (5-point star) with diffusion number ``alpha``."""
    kernel = np.zeros((3, 3), dtype=np.float64)
    kernel[1, 1] = 1.0 - 4.0 * alpha
    kernel[0, 1] = kernel[2, 1] = kernel[1, 0] = kernel[1, 2] = alpha
    return StencilSpec(name="2d-heat", kernel=kernel, description="2-D 5-point heat equation")


def box_2d9p(weight: float = 1.0 / 9.0) -> StencilSpec:
    """2-D 9-point box smoother with a single uniform weight (paper Figure 5)."""
    return StencilSpec(
        name="2d9p",
        kernel=np.full((3, 3), weight, dtype=np.float64),
        description="2-D 9-point uniform box smoother",
    )


def symmetric_box_2d9p(w1: float = 0.05, w2: float = 0.1, w3: float = 0.4) -> StencilSpec:
    """2-D 9-point box with corner/edge/centre weights ``w1``/``w2``/``w3``.

    This is the stencil of the paper's Figure 4 (scalar profitability
    analysis); the uniform-weight :func:`box_2d9p` is the special case
    ``w1 = w2 = w3``.
    """
    kernel = np.array(
        [
            [w1, w2, w1],
            [w2, w3, w2],
            [w1, w2, w1],
        ],
        dtype=np.float64,
    )
    return StencilSpec(
        name="2d9p-sym",
        kernel=kernel,
        description="2-D 9-point box with corner/edge/centre weights",
    )


def general_box_2d9p(seed: int = 7) -> StencilSpec:
    """GB — asymmetric 2-D 9-point box with 9 distinct weights.

    The paper uses GB as a stress test: because no two weights coincide, the
    rows of the folding matrix are not multiples of each other, so the
    separable fast path does not apply and the linear-regression
    generalisation (Section 3.5) must be used.  The weights are deterministic
    (seeded) and normalised to sum to one so repeated application stays
    bounded.
    """
    rng = np.random.default_rng(seed)
    kernel = rng.uniform(0.2, 1.0, size=(3, 3))
    kernel = kernel / kernel.sum()
    return StencilSpec(
        name="gb",
        kernel=kernel,
        description="asymmetric 2-D 9-point general box (9 distinct weights)",
    )


def heat_3d(alpha: float = 0.1) -> StencilSpec:
    """3-D heat equation (7-point star) with diffusion number ``alpha``."""
    kernel = np.zeros((3, 3, 3), dtype=np.float64)
    kernel[1, 1, 1] = 1.0 - 6.0 * alpha
    for axis in range(3):
        idx_lo = [1, 1, 1]
        idx_hi = [1, 1, 1]
        idx_lo[axis] = 0
        idx_hi[axis] = 2
        kernel[tuple(idx_lo)] = alpha
        kernel[tuple(idx_hi)] = alpha
    return StencilSpec(name="3d-heat", kernel=kernel, description="3-D 7-point heat equation")


def box_3d27p(weight: float = 1.0 / 27.0) -> StencilSpec:
    """3-D 27-point box smoother with a single uniform weight."""
    return StencilSpec(
        name="3d27p",
        kernel=np.full((3, 3, 3), weight, dtype=np.float64),
        description="3-D 27-point uniform box smoother",
    )


# --------------------------------------------------------------------------- #
# non-linear benchmarks
# --------------------------------------------------------------------------- #
def _apop_rule(linear: np.ndarray, previous: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
    """American-put early-exercise rule: max of continuation value and payoff."""
    if aux is None:
        raise ValueError("APOP requires the static payoff array as grid.aux")
    return np.maximum(linear, aux)


def apop(
    risk_free_rate: float = 0.03,
    volatility: float = 0.3,
    dt: float = 1.0 / 1000.0,
) -> StencilSpec:
    """APOP — American put option pricing (1-D 3-point stencil + payoff max).

    The explicit finite-difference scheme for the Black–Scholes PDE gives a
    three-point weighted sum of the option value at the previous time level,
    discounted by ``exp(-r*dt)``, followed by ``max`` against the immediate
    exercise payoff (the static second input array).  The paper counts this
    as a 6-point stencil because two input arrays are read.

    The default coefficients form a convex combination scaled by the discount
    factor, so the scheme is unconditionally stable for testing purposes.
    """
    discount = float(np.exp(-risk_free_rate * dt))
    p_up = 0.25
    p_mid = 0.5
    p_down = 0.25
    kernel = discount * np.array([p_down, p_mid, p_up], dtype=np.float64)
    return StencilSpec(
        name="apop",
        kernel=kernel,
        linear=False,
        post_rule=_apop_rule,
        aux_name="payoff",
        description="American put option pricing (3-point continuation + payoff max)",
    )


def _life_rule(linear: np.ndarray, previous: np.ndarray, aux: Optional[np.ndarray]) -> np.ndarray:
    """Conway's rule applied to the 8-neighbour count in ``linear``."""
    count = np.rint(linear)
    alive = previous > 0.5
    born = count == 3.0
    survive = alive & (count == 2.0)
    return (born | survive).astype(np.float64)


def game_of_life() -> StencilSpec:
    """Conway's Game of Life as an 8-neighbour counting stencil plus rule map."""
    kernel = np.ones((3, 3), dtype=np.float64)
    kernel[1, 1] = 0.0
    return StencilSpec(
        name="game-of-life",
        kernel=kernel,
        linear=False,
        post_rule=_life_rule,
        description="Conway's Game of Life (8-neighbour count + survival rule)",
    )


# --------------------------------------------------------------------------- #
# benchmark cases (Table 1)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BenchmarkCase:
    """A paper benchmark: stencil + the sizes of Table 1 + a test-scale size.

    Attributes
    ----------
    key:
        Short identifier used by the harness and the benchmarks
        (``"2d9p"``, ``"game-of-life"``, ...).
    display_name:
        The name used in the paper's tables/figures.
    spec_factory:
        Zero-argument callable producing the :class:`StencilSpec`.
    problem_size:
        Spatial problem size from Table 1 (paper scale).
    time_steps:
        Total time steps from Table 1.
    blocking_size:
        Spatial blocking size from Table 1 (per tile), including the time
        block as its last element where the paper gives one.
    test_size:
        Scaled-down spatial size used by correctness tests and examples.
    grid_factory:
        Callable ``(shape, seed) -> Grid`` building a deterministic initial
        grid appropriate for the benchmark (random field, 0/1 life board,
        option-value grid with payoff aux, ...).
    """

    key: str
    display_name: str
    spec_factory: Callable[[], StencilSpec]
    problem_size: Tuple[int, ...]
    time_steps: int
    blocking_size: Tuple[int, ...]
    test_size: Tuple[int, ...]
    grid_factory: Callable[[Tuple[int, ...], int], Grid]

    @property
    def spec(self) -> StencilSpec:
        """Instantiate the stencil specification."""
        return self.spec_factory()

    def make_grid(self, shape: Optional[Tuple[int, ...]] = None, seed: int = 0) -> Grid:
        """Build a deterministic initial grid (default: the test-scale size)."""
        return self.grid_factory(shape or self.test_size, seed)


def _random_grid(shape: Tuple[int, ...], seed: int) -> Grid:
    return Grid.random(shape, boundary=BoundaryCondition.PERIODIC, seed=seed)


def _life_grid(shape: Tuple[int, ...], seed: int) -> Grid:
    return Grid.life_random(shape, density=0.35, seed=seed)


def _apop_grid(shape: Tuple[int, ...], seed: int) -> Grid:
    """Option value grid: payoff of a put over a log-spaced price axis."""
    (n,) = shape
    strike = 100.0
    prices = np.linspace(10.0, 200.0, n)
    payoff = np.maximum(strike - prices, 0.0)
    return Grid(values=payoff.copy(), boundary=BoundaryCondition.DIRICHLET, aux=payoff)


BENCHMARKS: Dict[str, BenchmarkCase] = {
    "1d-heat": BenchmarkCase(
        key="1d-heat",
        display_name="1D-Heat",
        spec_factory=heat_1d,
        problem_size=(10_240_000,),
        time_steps=1000,
        blocking_size=(2000, 1000),
        test_size=(4096,),
        grid_factory=_random_grid,
    ),
    "1d5p": BenchmarkCase(
        key="1d5p",
        display_name="1D5P",
        spec_factory=box_1d5p,
        problem_size=(10_240_000,),
        time_steps=1000,
        blocking_size=(2000, 500),
        test_size=(4096,),
        grid_factory=_random_grid,
    ),
    "apop": BenchmarkCase(
        key="apop",
        display_name="APOP",
        spec_factory=apop,
        problem_size=(10_240_000,),
        time_steps=1000,
        blocking_size=(2000, 500),
        test_size=(4096,),
        grid_factory=_apop_grid,
    ),
    "2d-heat": BenchmarkCase(
        key="2d-heat",
        display_name="2D-Heat",
        spec_factory=heat_2d,
        problem_size=(5000, 5000),
        time_steps=1000,
        blocking_size=(200, 200, 50),
        test_size=(96, 96),
        grid_factory=_random_grid,
    ),
    "2d9p": BenchmarkCase(
        key="2d9p",
        display_name="2D9P",
        spec_factory=box_2d9p,
        problem_size=(5000, 5000),
        time_steps=1000,
        blocking_size=(120, 128, 60),
        test_size=(96, 96),
        grid_factory=_random_grid,
    ),
    "game-of-life": BenchmarkCase(
        key="game-of-life",
        display_name="Game of Life",
        spec_factory=game_of_life,
        problem_size=(5000, 5000),
        time_steps=1000,
        blocking_size=(200, 200, 50),
        test_size=(96, 96),
        grid_factory=_life_grid,
    ),
    "gb": BenchmarkCase(
        key="gb",
        display_name="GB",
        spec_factory=general_box_2d9p,
        problem_size=(5000, 5000),
        time_steps=1000,
        blocking_size=(200, 200, 50),
        test_size=(96, 96),
        grid_factory=_random_grid,
    ),
    "3d-heat": BenchmarkCase(
        key="3d-heat",
        display_name="3D-Heat",
        spec_factory=heat_3d,
        problem_size=(400, 400, 400),
        time_steps=1000,
        blocking_size=(20, 20, 10),
        test_size=(24, 24, 24),
        grid_factory=_random_grid,
    ),
    "3d27p": BenchmarkCase(
        key="3d27p",
        display_name="3D27P",
        spec_factory=box_3d27p,
        problem_size=(400, 400, 400),
        time_steps=1000,
        blocking_size=(20, 20, 10),
        test_size=(24, 24, 24),
        grid_factory=_random_grid,
    ),
}


def get_benchmark(key: str) -> BenchmarkCase:
    """Return the benchmark case registered under ``key``.

    Accepts either the registry key (``"2d9p"``) or the paper display name
    (``"2D9P"``), case-insensitively.
    """
    norm = key.strip().lower()
    if norm in BENCHMARKS:
        return BENCHMARKS[norm]
    for case in BENCHMARKS.values():
        if case.display_name.lower() == norm:
            return case
    raise KeyError(f"unknown benchmark {key!r}; known: {sorted(BENCHMARKS)}")
