"""Parameter search helpers.

The paper tunes its stencil parameters (blocking sizes, unrolling factor) by
hand and defers automatic tuning to future work; this subpackage provides the
straightforward model-driven searches a user of the library needs:

* :mod:`repro.autotune.blocksearch` — pick tessellation block sizes and time
  range for a stencil/problem/machine combination by scoring candidates with
  the analytic performance model,
* :mod:`repro.autotune.foldsearch` — pick the temporal folding factor ``m``
  by profitability under a register budget (Section 3.2's analysis turned
  into a search).
"""

from repro.autotune.blocksearch import BlockSearchResult, search_blocking
from repro.autotune.foldsearch import FoldSearchResult, search_unroll

__all__ = [
    "BlockSearchResult",
    "search_blocking",
    "FoldSearchResult",
    "search_unroll",
]
