"""Staged configuration autotuning.

The paper tunes its stencil parameters (blocking sizes, unrolling factor) by
hand and defers automatic tuning to future work; this subpackage is that
future work: a staged search over the full configuration space
``(method, m, isa, tiling, pass pipeline, backend)``:

* :mod:`repro.autotune.space` — declarative :class:`SearchSpace` with
  registry/stencil-derived defaults and deterministic candidate expansion,
* :mod:`repro.autotune.tuner` — the predict (IR cost model) → prune (pure
  function of predicted cost) → measure (kernel replay on the top-K)
  pipeline behind :func:`autotune` and ``repro.plan(spec).autotune()``,
* :mod:`repro.autotune.result` — the immutable :class:`TuneResult` ledger,
* :mod:`repro.autotune.blocksearch` / :mod:`repro.autotune.foldsearch` —
  the deprecated single-axis searches, kept as thin wrappers.
"""

from repro.autotune.blocksearch import BlockSearchResult, search_blocking
from repro.autotune.foldsearch import FoldSearchResult, search_unroll
from repro.autotune.result import CandidateRecord, TuneResult
from repro.autotune.space import (
    SearchSpace,
    TuningWorkload,
    expand_candidates,
    tiling_candidates,
)
from repro.autotune.tuner import OBJECTIVES, PRUNE_RATIO, autotune

__all__ = [
    "autotune",
    "SearchSpace",
    "TuningWorkload",
    "TuneResult",
    "CandidateRecord",
    "OBJECTIVES",
    "PRUNE_RATIO",
    "expand_candidates",
    "tiling_candidates",
    "BlockSearchResult",
    "search_blocking",
    "FoldSearchResult",
    "search_unroll",
]
