"""Declarative configuration search spaces for the staged autotuner.

A :class:`SearchSpace` names the candidate axes — ``(method, m, isa,
tiling, pass pipeline, backend)`` — and :func:`expand_candidates` turns it
into the flat, deterministic candidate list the tuner's predict stage
scores.  Defaults are derived, not hard-coded: the method axis comes from
the registry's :class:`~repro.registry.MethodDescriptor` capability flags
(:func:`repro.registry.tunable_method_keys`), the unroll axis from the
stencil's radius against the widest vector length in the ISA axis, the
workload from the benchmark library's paper-scale problem sizes.

Candidates are plain JSON-ready dicts so the service protocol can shard
them across worker processes verbatim; every validity rule lives in
:func:`candidate_validity` as a pure function of ``(spec, candidate,
workload)`` so shards reach the same verdicts as an in-process search.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.machine import MACHINES
from repro.registry import get_method, tunable_method_keys
from repro.simd.isa import isa_for
from repro.stencils.library import BENCHMARKS, BenchmarkCase, get_benchmark
from repro.stencils.spec import StencilSpec
from repro.tiling.tessellate import TessellationConfig

__all__ = [
    "SearchSpace",
    "TuningWorkload",
    "expand_candidates",
    "candidate_validity",
    "measurability",
    "tiling_candidates",
    "default_workload_shape",
    "coerce_spec",
]

#: Unroll factors considered by default, before the radius/vector-length cut.
DEFAULT_M_CANDIDATES: Tuple[int, ...] = (1, 2, 3, 4)

#: Block-size ladder shared with the (deprecated) block search: paper-style
#: round sizes, cut per dimension to the feasible window.
_BLOCK_LADDER: Tuple[int, ...] = (16, 32, 64, 100, 128, 200, 256, 400, 512, 1000, 2000, 4096)


def coerce_spec(spec: Union[StencilSpec, BenchmarkCase, str]) -> StencilSpec:
    """Accept a spec, a benchmark case or a benchmark key — like ``plan()``."""
    if isinstance(spec, str):
        return get_benchmark(spec).spec
    if isinstance(spec, BenchmarkCase):
        return spec.spec
    if not isinstance(spec, StencilSpec):
        raise TypeError(
            "expected a StencilSpec, a BenchmarkCase or a benchmark key"
        )
    return spec


def _benchmark_for_spec(spec: StencilSpec) -> Optional[BenchmarkCase]:
    """The library benchmark whose spec matches ``spec`` by name, if any."""
    for case in BENCHMARKS.values():
        if case.spec.name == spec.name:
            return case
    return None


def default_workload_shape(dims: int) -> Tuple[int, ...]:
    """Dimensionality-matched default problem shape for cost estimates."""
    return {1: (1 << 22,), 2: (2048, 2048), 3: (256, 256, 256)}[dims]


@dataclass(frozen=True)
class TuningWorkload:
    """The problem the tuner optimises for: shape, time steps, active cores.

    Predicted cost is workload-dependent (the memory/compute balance shifts
    with the working set), so the workload is part of the search's
    provenance and of every cache key.
    """

    shape: Tuple[int, ...]
    time_steps: int = 1000
    cores: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(int(n) for n in self.shape))
        if not self.shape or any(n < 1 for n in self.shape):
            raise ValueError("workload shape extents must be positive")
        if self.time_steps < 1:
            raise ValueError("time_steps must be >= 1")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")

    @classmethod
    def for_spec(
        cls,
        spec: Union[StencilSpec, BenchmarkCase, str],
        shape: Optional[Sequence[int]] = None,
        time_steps: Optional[int] = None,
        cores: int = 1,
    ) -> "TuningWorkload":
        """Paper-scale workload for ``spec``: the benchmark library's problem
        size and step count when the spec is a library stencil, a
        dimensionality-matched default otherwise."""
        spec = coerce_spec(spec)
        case = _benchmark_for_spec(spec)
        if shape is None:
            shape = case.problem_size if case is not None else default_workload_shape(spec.dims)
        if time_steps is None:
            time_steps = case.time_steps if case is not None else 1000
        return cls(shape=tuple(shape), time_steps=int(time_steps), cores=int(cores))

    def to_dict(self) -> Dict[str, Any]:
        return {"shape": list(self.shape), "time_steps": self.time_steps, "cores": self.cores}


@dataclass(frozen=True)
class SearchSpace:
    """Declarative candidate axes of one autotuning search.

    The cross product of the axes — minus invalid combinations, which the
    predict stage records with a ``pruned_reason`` — is the candidate set.
    ``tilings`` holds :class:`TessellationConfig` objects or ``None`` (no
    tiling); ``pipelines`` names IR pass pipelines (``"default"`` — the
    optimizing pipeline — or ``"none"``); ``backends`` names measurement
    engines from :data:`repro.backend.EXECUTION_BACKENDS`.
    """

    methods: Tuple[str, ...]
    m_values: Tuple[int, ...]
    isas: Tuple[str, ...] = ("avx2", "avx512")
    tilings: Tuple[Optional[TessellationConfig], ...] = (None,)
    pipelines: Tuple[str, ...] = ("default",)
    backends: Tuple[str, ...] = ("kernel",)
    #: Data layout the schedules assume; recorded per candidate as
    #: provenance (the paper's methods all vectorize on the transpose
    #: layout — the axis exists for plug-in layouts, not for search).
    layout: str = "transpose"

    def __post_init__(self) -> None:
        for name in ("methods", "m_values", "isas", "tilings", "pipelines", "backends"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        if not self.methods:
            raise ValueError("a SearchSpace needs at least one method")
        if not self.m_values or any(m < 1 for m in self.m_values):
            raise ValueError("m_values must be a non-empty tuple of factors >= 1")
        if not self.isas:
            raise ValueError("a SearchSpace needs at least one ISA")
        for isa in self.isas:
            if isa not in MACHINES:
                raise ValueError(f"unknown ISA {isa!r}; expected one of {tuple(MACHINES)}")
        for method in self.methods:
            try:
                get_method(method)
            except KeyError:
                raise ValueError(f"unknown method {method!r} in the search space") from None
        for pipeline in self.pipelines:
            if pipeline not in ("default", "none"):
                raise ValueError(
                    f"unknown pass pipeline {pipeline!r}; expected 'default' or 'none'"
                )
        from repro.backend import backend_keys

        for backend in self.backends:
            if backend not in backend_keys():
                raise ValueError(
                    f"unknown execution backend {backend!r}; expected one of {backend_keys()}"
                )

    @classmethod
    def for_spec(
        cls,
        spec: Union[StencilSpec, BenchmarkCase, str],
        isas: Optional[Sequence[str]] = None,
        methods: Optional[Sequence[str]] = None,
        m_values: Optional[Sequence[int]] = None,
        tilings: Optional[Sequence[Optional[TessellationConfig]]] = None,
        pipelines: Optional[Sequence[str]] = None,
        backends: Optional[Sequence[str]] = None,
    ) -> "SearchSpace":
        """Registry- and stencil-derived default space for ``spec``.

        * methods — the executable line-up methods
          (:func:`~repro.registry.tunable_method_keys`), minus linear-only
          methods for non-linear stencils;
        * m — :data:`DEFAULT_M_CANDIDATES` cut to the factors whose folded
          radius ``m·r`` fits the widest vector length in the ISA axis
          (narrower ISAs mark the excess factors invalid per candidate);
        * isas — both paper ISAs.
        """
        spec = coerce_spec(spec)
        isas = tuple(isas) if isas is not None else tuple(MACHINES)
        if methods is None:
            methods = tunable_method_keys() if spec.linear else tunable_method_keys(linear=False)
        if m_values is None:
            max_vl = max(isa_for(isa).vector_lanes for isa in isas) if isas else 8
            m_max = max(1, max_vl // max(1, spec.radius))
            m_values = tuple(m for m in DEFAULT_M_CANDIDATES if m <= m_max) or (1,)
        return cls(
            methods=tuple(methods),
            m_values=tuple(m_values),
            isas=isas,
            tilings=tuple(tilings) if tilings is not None else (None,),
            pipelines=tuple(pipelines) if pipelines is not None else ("default",),
            backends=tuple(backends) if backends is not None else ("kernel",),
        )

    def constrain(self, **axes: Any) -> "SearchSpace":
        """A copy with the named axes replaced (``methods=``, ``isas=``, ...)."""
        coerced = {
            name: tuple(value) if name != "layout" else value for name, value in axes.items()
        }
        return replace(self, **coerced)

    @property
    def size(self) -> int:
        """Upper bound on the candidate count (before unroll deduplication)."""
        return (
            len(self.methods)
            * len(self.m_values)
            * len(self.isas)
            * len(self.tilings)
            * len(self.pipelines)
            * len(self.backends)
        )

    def describe(self) -> Dict[str, Any]:
        """JSON-ready provenance record of the axes."""
        return {
            "methods": list(self.methods),
            "m_values": list(self.m_values),
            "isas": list(self.isas),
            "tilings": [_tiling_dict(t) for t in self.tilings],
            "pipelines": list(self.pipelines),
            "backends": list(self.backends),
            "layout": self.layout,
        }


def _tiling_dict(tiling: Optional[TessellationConfig]) -> Optional[Dict[str, Any]]:
    if tiling is None:
        return None
    return {
        "block_sizes": [None if b is None else int(b) for b in tiling.block_sizes],
        "time_range": int(tiling.time_range),
    }


def tiling_config(candidate: Dict[str, Any]) -> Optional[TessellationConfig]:
    """Rebuild the candidate's :class:`TessellationConfig` (or ``None``)."""
    tiling = candidate.get("tiling")
    if tiling is None:
        return None
    if isinstance(tiling, TessellationConfig):
        return tiling
    return TessellationConfig(
        block_sizes=tuple(tiling["block_sizes"]), time_range=int(tiling["time_range"])
    )


def expand_candidates(
    spec: Union[StencilSpec, BenchmarkCase, str], space: SearchSpace
) -> List[Dict[str, Any]]:
    """The space's flat candidate list, in deterministic generation order.

    Axis nesting (slowest to fastest): isa, method, m, tiling, pipeline,
    backend.  Methods that do not consume the unroll factor appear once with
    the canonical ``m=1`` instead of once per unroll value — the profile is
    ``m``-independent, so extra rows would only be duplicates.  Every
    candidate carries its generation ``index``; no validity filtering
    happens here (the predict stage records ``pruned_reason`` instead, so
    the ledger accounts for every generated candidate).
    """
    spec = coerce_spec(spec)
    candidates: List[Dict[str, Any]] = []
    for isa in space.isas:
        for method in space.methods:
            descriptor = get_method(method)
            m_axis = space.m_values if descriptor.uses_unroll else (1,)
            for m in m_axis:
                for tiling in space.tilings:
                    for pipeline in space.pipelines:
                        for backend in space.backends:
                            candidates.append(
                                {
                                    "index": len(candidates),
                                    "method": method,
                                    "isa": isa,
                                    "m": int(m),
                                    "tiling": _tiling_dict(tiling),
                                    "pipeline": pipeline,
                                    "backend": backend,
                                    "layout": space.layout,
                                }
                            )
    return candidates


def candidate_validity(
    spec: StencilSpec, candidate: Dict[str, Any], workload: TuningWorkload
) -> Optional[str]:
    """Why ``candidate`` cannot be scored at all, or ``None`` if it can.

    A pure function of ``(spec, candidate, workload)`` so that worker shards
    and in-process searches agree.  Scoring requires an IR-consistent
    profile: folding candidates whose folded radius ``m·r`` exceeds the
    ISA's vector length have no register-level schedule, and their
    closed-form fallback profile is not comparable with the optimized-IR
    costs the rest of the ranking uses — they are marked invalid rather
    than silently scored on a different model (the historical `foldsearch`
    scoring drift).
    """
    descriptor = get_method(candidate["method"])
    isa = isa_for(candidate["isa"])
    m = int(candidate["m"])
    if descriptor.requires_linear and not spec.linear:
        return f"method {descriptor.key!r} requires a linear stencil"
    if descriptor.uses_unroll and spec.linear and m * spec.radius > isa.vector_lanes:
        return (
            f"schedule-inexpressible: folded radius {m * spec.radius} exceeds "
            f"vl={isa.vector_lanes} on {candidate['isa']}"
        )
    tiling = tiling_config(candidate)
    if tiling is not None:
        blocks = tiling.block_sizes
        if len(blocks) != len(workload.shape):
            return (
                f"tiling is {len(blocks)}-D but the workload is {len(workload.shape)}-D"
            )
        minimum = max(2 * spec.radius * tiling.time_range, 1)
        for block, extent in zip(blocks, workload.shape):
            if block is None:
                continue
            if block > extent:
                return f"block size {block} exceeds the workload extent {extent}"
            if block < minimum:
                return (
                    f"block size {block} below the tessellation minimum {minimum} "
                    f"(2·r·TR with r={spec.radius}, TR={tiling.time_range})"
                )
    return None


def measurability(spec: StencilSpec, candidate: Dict[str, Any]) -> Optional[str]:
    """Why ``candidate`` cannot reach the measure stage, or ``None``.

    Measurement replays the register-level schedule through an execution
    backend, so it needs everything simulation needs; candidates that fail
    here can still win on predicted cost — they are pruned from
    *measurement*, with this reason, not from the ranking.
    """
    descriptor = get_method(candidate["method"])
    if not descriptor.supports_simulation:
        return f"method {descriptor.key!r} has no register-level schedule to measure"
    if not spec.linear:
        return "measured replay requires a linear stencil"
    if spec.dims not in descriptor.simulation_dims:
        return (
            f"method {descriptor.key!r} has no {spec.dims}-D register-level schedule"
        )
    if candidate["pipeline"] != "none" and candidate["backend"] == "interpret":
        return "the interpret backend executes unoptimized schedules only"
    if tiling_config(candidate) is not None:
        return "backend replay bypasses tessellation tiling"
    return None


def tiling_candidates(
    grid_shape: Sequence[int],
    radius: int,
    time_ranges: Sequence[int] = (8, 16, 32, 64),
    max_candidates_per_dim: int = 4,
) -> List[TessellationConfig]:
    """Feasible tessellation configurations for ``grid_shape``.

    The ladder of round block sizes is cut, per dimension, to the feasible
    window ``[2·r·TR, extent]`` and capped at ``max_candidates_per_dim``
    entries; each surviving time range contributes one config per rank
    (every dimension uses its rank-``i`` candidate).  Deterministic
    generation order: time ranges outermost, ranks innermost.
    """
    configs: List[TessellationConfig] = []
    for time_range in time_ranges:
        per_dim: List[List[int]] = []
        for extent in grid_shape:
            minimum = max(2 * radius * time_range, 8)
            ladder = [b for b in _BLOCK_LADDER if minimum <= b <= extent]
            if not ladder and minimum <= extent:
                ladder = [minimum]
            per_dim.append(ladder[:max_candidates_per_dim])
        if any(not ladder for ladder in per_dim):
            continue
        # The same relative candidate rank in every dimension (clamped to the
        # shorter ladders) — block shapes are roughly isotropic for the
        # paper's stencils, and per-dimension cross products explode.
        ranks = max(len(ladder) for ladder in per_dim)
        for rank in range(ranks):
            configs.append(
                TessellationConfig(
                    block_sizes=tuple(
                        ladder[min(rank, len(ladder) - 1)] for ladder in per_dim
                    ),
                    time_range=int(time_range),
                )
            )
    return configs
