"""Immutable results of one autotuning search.

A :class:`TuneResult` is the search's full accounting, not just its winner:
every generated candidate appears exactly once in the ledger, either with a
measurement or with the ``pruned_reason`` that kept it from one (the
prune-ledger invariant the test suite pins).  Results are plain frozen
dataclasses round-trippable through :meth:`TuneResult.to_dict` — the service
``tune`` kind returns exactly that dict, so local and remote searches are
interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["CandidateRecord", "TuneResult"]


@dataclass(frozen=True)
class CandidateRecord:
    """One candidate configuration and everything the search learned about it.

    ``rank`` orders the scoreable candidates by predicted cost (1 = best
    predicted); invalid candidates have no rank.  ``pruned_reason`` is set
    exactly when the candidate was never measured.
    """

    index: int
    method: str
    isa: str
    m: int
    tiling: Optional[Dict[str, Any]]
    pipeline: str
    backend: str
    layout: str
    config_hash: str
    predicted_cycles_per_point: Optional[float] = None
    predicted_gflops: Optional[float] = None
    bound: Optional[str] = None
    frequency_ghz: Optional[float] = None
    rank: Optional[int] = None
    measured_seconds: Optional[float] = None
    measured_cycles_per_point: Optional[float] = None
    pruned_reason: Optional[str] = None

    @property
    def measured(self) -> bool:
        """Whether the candidate reached the measure stage."""
        return self.measured_cycles_per_point is not None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready row (the service's ledger entry format)."""
        return {
            "index": self.index,
            "method": self.method,
            "isa": self.isa,
            "m": self.m,
            "tiling": self.tiling,
            "pipeline": self.pipeline,
            "backend": self.backend,
            "layout": self.layout,
            "config_hash": self.config_hash,
            "predicted_cycles_per_point": self.predicted_cycles_per_point,
            "predicted_gflops": self.predicted_gflops,
            "bound": self.bound,
            "frequency_ghz": self.frequency_ghz,
            "rank": self.rank,
            "measured_seconds": self.measured_seconds,
            "measured_cycles_per_point": self.measured_cycles_per_point,
            "pruned_reason": self.pruned_reason,
        }

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "CandidateRecord":
        """Rebuild a record from its ledger-row dict."""
        return cls(
            index=int(row["index"]),
            method=row["method"],
            isa=row["isa"],
            m=int(row["m"]),
            tiling=row.get("tiling"),
            pipeline=row.get("pipeline", "default"),
            backend=row.get("backend", "kernel"),
            layout=row.get("layout", "transpose"),
            config_hash=row["config_hash"],
            predicted_cycles_per_point=row.get("predicted_cycles_per_point"),
            predicted_gflops=row.get("predicted_gflops"),
            bound=row.get("bound"),
            frequency_ghz=row.get("frequency_ghz"),
            rank=row.get("rank"),
            measured_seconds=row.get("measured_seconds"),
            measured_cycles_per_point=row.get("measured_cycles_per_point"),
            pruned_reason=row.get("pruned_reason"),
        )


@dataclass(frozen=True)
class TuneResult:
    """Winner + full ranked ledger of one staged search.

    ``ledger`` lists every generated candidate in ranking order (scored
    candidates by predicted cost, then invalid candidates by generation
    index); ``provenance`` records how the search was posed — space axes,
    workload, objective, budget, seed — sufficient to reproduce the
    candidate list exactly.
    """

    stencil: str
    objective: str
    budget: int
    winner: CandidateRecord
    ledger: Tuple[CandidateRecord, ...]
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def generated(self) -> int:
        """Total candidates the space expanded to."""
        return len(self.ledger)

    @property
    def measured_count(self) -> int:
        """Candidates that reached the measure stage."""
        return sum(1 for record in self.ledger if record.measured)

    @property
    def pruned_count(self) -> int:
        """Candidates eliminated before any measurement."""
        return sum(1 for record in self.ledger if record.pruned_reason is not None)

    @property
    def pruned_fraction(self) -> float:
        """Share of generated candidates never measured."""
        return self.pruned_count / self.generated if self.generated else 0.0

    def prune_stats(self) -> Dict[str, Any]:
        """Aggregate prune accounting, including a reason histogram."""
        reasons: Dict[str, int] = {}
        for record in self.ledger:
            if record.pruned_reason is not None:
                label = record.pruned_reason.split(":", 1)[0]
                reasons[label] = reasons.get(label, 0) + 1
        return {
            "generated": self.generated,
            "measured": self.measured_count,
            "pruned": self.pruned_count,
            "pruned_fraction": self.pruned_fraction,
            "reasons": dict(sorted(reasons.items())),
        }

    def best(self, n: int = 5) -> Tuple[CandidateRecord, ...]:
        """The top-``n`` ledger rows (the ledger is already ranking-ordered)."""
        return self.ledger[: max(0, n)]

    def plan(self):
        """Compile the winning configuration into a :class:`CompiledPlan`."""
        from repro.core.plan import plan as make_plan

        builder = (
            make_plan(self.provenance.get("stencil_spec") or self.stencil)
            .method(self.winner.method)
            .isa(self.winner.isa)
            .unroll(self.winner.m)
        )
        if self.winner.tiling is not None:
            builder = builder.tile(
                block_sizes=tuple(self.winner.tiling["block_sizes"]),
                time_range=int(self.winner.tiling["time_range"]),
            )
        return builder.compile()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form — byte-identical to the service ``tune`` response."""
        return {
            "stencil": self.stencil,
            "objective": self.objective,
            "budget": self.budget,
            "winner": self.winner.to_dict(),
            "ledger": [record.to_dict() for record in self.ledger],
            "prune_stats": self.prune_stats(),
            "provenance": {
                key: value
                for key, value in self.provenance.items()
                if key != "stencil_spec"
            },
        }
