"""Unrolling-factor (temporal folding depth) search.

Section 3.2's profitability index rises with ``m`` (more redundant
arithmetic is folded away) but the folded neighbourhood radius ``m·r`` also
rises, which increases the number of simultaneously live vectors during
vertical folding and eventually spills registers — the balance the paper
describes as "the existing work and straightforward implementation represent
opposite extremes".  :func:`search_unroll` walks candidate ``m`` values,
scores them with the analytic performance model (which includes the spill
penalty through the instruction profile) and returns the best one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.folding import analyze_folding
from repro.machine import MachineSpec, machine_for_isa
from repro.methods import profile_folded
from repro.perfmodel.costmodel import estimate_performance
from repro.stencils.spec import StencilSpec


@dataclass(frozen=True)
class FoldSearchResult:
    """Outcome of the unroll-factor search.

    Attributes
    ----------
    best_m:
        The chosen unrolling factor.
    gflops:
        Modelled single-core GFLOP/s at ``best_m``.
    scores:
        Modelled GFLOP/s for every candidate ``m``.
    profitability:
        Profitability index ``P(E, E_Λ)`` for every candidate ``m >= 2``.
    """

    best_m: int
    gflops: float
    scores: Dict[int, float]
    profitability: Dict[int, float]


def search_unroll(
    spec: StencilSpec,
    isa: str = "avx2",
    candidates: Sequence[int] = (1, 2, 3, 4),
    npoints: int = 1 << 22,
    time_steps: int = 1000,
    machine: MachineSpec | None = None,
) -> FoldSearchResult:
    """Pick the temporal folding factor for ``spec`` on ``isa``.

    Parameters
    ----------
    spec:
        Linear stencil to fold (non-linear stencils always return ``m`` = the
        smallest candidate, since folding does not apply).
    isa:
        Target instruction set.
    candidates:
        Unroll factors to evaluate.
    npoints:
        Problem size used for the model evaluation (memory-resident by
        default, where folding matters most).
    time_steps:
        Total time steps (amortisation).
    machine:
        Machine description; defaults to the paper's machine for ``isa``.
    """
    if not candidates:
        raise ValueError("at least one candidate unroll factor is required")
    machine = machine or machine_for_isa(isa)
    scores: Dict[int, float] = {}
    profitability: Dict[int, float] = {}
    if not spec.linear:
        m = min(candidates)
        profile = profile_folded(spec, isa, m)
        est = estimate_performance(profile, npoints, time_steps, machine)
        return FoldSearchResult(
            best_m=m, gflops=est.gflops, scores={m: est.gflops}, profitability={}
        )
    for m in candidates:
        profile = profile_folded(spec, isa, m)
        est = estimate_performance(profile, npoints, time_steps, machine)
        scores[m] = est.gflops
        if m >= 2:
            report = analyze_folding(spec, m)
            profitability[m] = report.profitability_optimized
    best_m = max(scores, key=scores.get)
    return FoldSearchResult(
        best_m=best_m,
        gflops=scores[best_m],
        scores=scores,
        profitability=profitability,
    )
