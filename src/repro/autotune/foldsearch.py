"""Deprecated single-axis unroll search (use ``repro.plan(spec).autotune()``).

:func:`search_unroll` predates the staged tuner: it swept the unroll factor
``m`` alone against the analytic model, silently falling back to the
closed-form profile for factors whose folded radius exceeds the vector
length — a ranking that could disagree with the optimized-IR cost the rest
of the stack reports.  It is now a thin wrapper over
:func:`repro.autotune.autotune` with a :class:`~repro.autotune.SearchSpace`
constrained to the ``folded`` method and the caller's candidates: every
score comes from the IR-backed profile path, and factors with no
register-level schedule are excluded from the ranking instead of being
scored on a different model.

The :class:`FoldSearchResult` dataclass stays importable for one release;
new code should read the richer :class:`~repro.autotune.TuneResult` ledger.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.folding import analyze_folding
from repro.machine import MachineSpec
from repro.stencils.spec import StencilSpec

__all__ = ["FoldSearchResult", "search_unroll", "shape_for_npoints"]


@dataclass(frozen=True)
class FoldSearchResult:
    """Outcome of the (deprecated) unroll-factor search.

    Attributes
    ----------
    best_m:
        The chosen unrolling factor.
    gflops:
        Modelled single-core GFLOP/s at ``best_m``.
    scores:
        Modelled GFLOP/s for every rankable candidate ``m`` (factors whose
        folded radius exceeds the vector length have no IR-backed score and
        are absent).
    profitability:
        Profitability index ``P(E, E_Λ)`` for every candidate ``m >= 2``.
    """

    best_m: int
    gflops: float
    scores: Dict[int, float]
    profitability: Dict[int, float]


def shape_for_npoints(dims: int, npoints: int) -> Tuple[int, ...]:
    """A ``dims``-dimensional grid shape with approximately ``npoints`` points."""
    if dims == 1:
        return (int(npoints),)
    extent = max(1, round(npoints ** (1.0 / dims)))
    return tuple([extent] * dims)


def search_unroll(
    spec: StencilSpec,
    isa: str = "avx2",
    candidates: Sequence[int] = (1, 2, 3, 4),
    npoints: int = 1 << 22,
    time_steps: int = 1000,
    machine: Optional[MachineSpec] = None,
) -> FoldSearchResult:
    """Deprecated: sweep the temporal folding factor for the folded method.

    Use ``repro.plan(spec).method("folded").isa(isa).autotune()`` or
    :func:`repro.autotune.autotune` with ``methods=("folded",)`` — the
    staged tuner searches all configuration axes, prunes on predicted cost
    and can confirm winners with measured kernel replay.
    """
    warnings.warn(
        "search_unroll() is deprecated; use repro.plan(spec).autotune() "
        "(or repro.autotune.autotune(spec, methods=('folded',), ...) for "
        "the same single-axis sweep)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.autotune.tuner import autotune

    if not candidates:
        raise ValueError("at least one candidate unroll factor is required")
    factors = sorted({int(m) for m in candidates})
    if not spec.linear:
        # A non-linear stencil cannot fold its arithmetic: every factor costs
        # the same in-register multi-step update, so the sweep degenerates to
        # the smallest candidate (the historical behaviour).
        factors = [min(factors)]
    result = autotune(
        spec,
        machine=machine,
        budget=0,
        objective="gflops",
        methods=("folded",),
        isas=(isa,),
        m_values=tuple(factors),
        shape=shape_for_npoints(spec.dims, npoints),
        time_steps=time_steps,
    )
    scores = {
        record.m: record.predicted_gflops
        for record in sorted(result.ledger, key=lambda rec: rec.m)
        if record.predicted_gflops is not None
    }
    profitability: Dict[int, float] = {}
    if spec.linear:
        for m in factors:
            if m >= 2:
                profitability[m] = analyze_folding(spec, m).profitability_optimized
    winner = result.winner
    assert winner.predicted_gflops is not None
    return FoldSearchResult(
        best_m=winner.m,
        gflops=winner.predicted_gflops,
        scores=scores,
        profitability=profitability,
    )
