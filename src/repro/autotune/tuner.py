"""The staged configuration tuner: predict, prune, measure.

The search never executes a candidate it has not already scored — the PyPy
vectorizer's ``profitable()`` discipline applied to stencil configuration:

1. **predict** — every generated candidate is scored with the IR cost model
   (:func:`repro.parallel.model.multicore_estimate` over the method's
   optimized-IR instruction profile), exactly the estimate
   :meth:`CompiledPlan.estimate` and the service's ``estimate`` kind report,
   memoized through the shared :class:`~repro.study.cache.EvalCache`;
2. **prune** — a pure function of predicted cost ranks the candidates and
   records a ``pruned_reason`` for everything that will not be measured
   (invalid, unprofitable, unmeasurable, or beyond the top-K budget);
3. **measure** — the surviving top-``budget`` candidates run through
   :meth:`CompiledPlan.measure` on their execution backend, content-keyed in
   the same cache so re-running a search measures nothing twice.

All three stages operate on plain candidate-row dicts so the service worker
pool can shard them; :func:`autotune` is the in-process orchestration and
:func:`repro.core.plan.PlanBuilder.autotune` the fluent front end.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.autotune.result import CandidateRecord, TuneResult
from repro.autotune.space import (
    SearchSpace,
    TuningWorkload,
    candidate_validity,
    coerce_spec,
    expand_candidates,
    measurability,
    tiling_config,
)
from repro.ir.passes import DEFAULT_PASSES
from repro.machine import MachineSpec, isa_variant, machine_for_isa
from repro.simd.isa import isa_for
from repro.stencils.library import BenchmarkCase, get_benchmark
from repro.stencils.spec import StencilSpec
from repro.study.cache import EvalCache
from repro.study.hashing import config_hash

__all__ = [
    "OBJECTIVES",
    "PRUNE_RATIO",
    "autotune",
    "predict_row",
    "prune_rows",
    "measure_row",
    "assemble_result",
    "candidate_hash",
    "space_from_params",
    "execute_tune_payload",
    "predict_candidate_rows",
    "measure_ledger_rows",
    "assemble_tune_response",
]

#: Supported optimisation objectives.  ``cycles_per_point`` minimises the
#: modelled per-point cost; ``gflops`` maximises modelled throughput.
OBJECTIVES: Tuple[str, ...] = ("cycles_per_point", "gflops")

#: Predicted-cost cutoff of the prune stage: candidates predicted worse than
#: this multiple of the best candidate's cost are never measured.
PRUNE_RATIO: float = 2.0


def candidate_hash(spec: StencilSpec, candidate: Mapping[str, Any]) -> str:
    """Content key of one ``(stencil, configuration)`` pair.

    Shared by the in-process tuner, the service's ``tune`` kind and the
    measurement cache, so identical configurations deduplicate across all
    three regardless of which path scored them first.
    """
    return config_hash(
        "tune-candidate",
        spec.name,
        candidate["method"],
        candidate["isa"],
        int(candidate["m"]),
        candidate.get("tiling"),
        candidate.get("pipeline", "default"),
        candidate.get("backend", "kernel"),
        candidate.get("layout", "transpose"),
    )


def _resolve_machine(machine: Optional[MachineSpec], isa: str) -> MachineSpec:
    """The machine model scoring an ``isa`` candidate (per-ISA variant of a
    custom machine, the paper's Xeon otherwise)."""
    if machine is None:
        return machine_for_isa(isa)
    return isa_variant(machine, isa)


def predict_row(
    cache: EvalCache,
    spec: StencilSpec,
    workload: TuningWorkload,
    candidate: Mapping[str, Any],
    machine: Optional[MachineSpec] = None,
) -> Dict[str, Any]:
    """Predict stage for one candidate: validity check + modelled cost.

    Returns the candidate's ledger row.  Invalid candidates get their
    ``pruned_reason`` here and are never scored; scoreable ones carry the
    cost model's ``predicted_cycles_per_point``/``predicted_gflops`` (the
    same figures :meth:`CompiledPlan.estimate` reports for that
    configuration) plus the private ``_unmeasurable`` marker consumed by
    :func:`prune_rows`.
    """
    row: Dict[str, Any] = dict(candidate)
    row.setdefault("pipeline", "default")
    row.setdefault("backend", "kernel")
    row.setdefault("layout", "transpose")
    row["config_hash"] = candidate_hash(spec, row)
    reason = candidate_validity(spec, row, workload)
    if reason is not None:
        row["pruned_reason"] = f"invalid: {reason}"
        return row
    profile = cache.profile(row["method"], spec, isa=row["isa"], m=int(row["m"]))
    estimate = cache.multicore(
        profile,
        workload.shape,
        workload.time_steps,
        _resolve_machine(machine, row["isa"]),
        workload.cores,
        spec.radius,
        tiling=tiling_config(row),
    )
    row["predicted_cycles_per_point"] = float(estimate.cycles_per_point)
    row["predicted_gflops"] = float(estimate.gflops)
    row["bound"] = getattr(estimate, "bound", None)
    row["frequency_ghz"] = float(estimate.frequency_ghz)
    unmeasurable = measurability(spec, row)
    if unmeasurable is not None:
        row["_unmeasurable"] = unmeasurable
    return row


def _objective_value(row: Mapping[str, Any], objective: str) -> float:
    if objective == "gflops":
        return float(row["predicted_gflops"])
    return float(row["predicted_cycles_per_point"])


def _sort_key(row: Mapping[str, Any], objective: str) -> Tuple[float, int]:
    value = _objective_value(row, objective)
    return (-value if objective == "gflops" else value, int(row["index"]))


def _cost_ratio(row: Mapping[str, Any], best: float, objective: str) -> float:
    """How much worse than the best candidate, as a cost multiple (>= 1)."""
    value = _objective_value(row, objective)
    if objective == "gflops":
        return best / value if value > 0 else float("inf")
    return value / best if best > 0 else float("inf")


def prune_rows(
    rows: Sequence[Dict[str, Any]],
    budget: int,
    objective: str,
    prune_ratio: float = PRUNE_RATIO,
) -> List[Dict[str, Any]]:
    """Prune stage: rank the scored rows and select the measurement set.

    A pure function of the predicted costs already on the rows — no model
    evaluation, no measurement, no randomness — so worker shards and
    in-process searches select identical sets.  Mutates the rows in place
    (``rank`` for every scored row, ``pruned_reason`` for every row not
    selected) and returns the selected rows in rank order.
    """
    scored = [
        row
        for row in rows
        if row.get("pruned_reason") is None and row.get("predicted_cycles_per_point") is not None
    ]
    scored.sort(key=lambda row: _sort_key(row, objective))
    selected: List[Dict[str, Any]] = []
    if not scored:
        return selected
    best = _objective_value(scored[0], objective)
    for rank, row in enumerate(scored, start=1):
        row["rank"] = rank
        ratio = _cost_ratio(row, best, objective)
        unmeasurable = row.pop("_unmeasurable", None)
        if ratio > prune_ratio:
            row["pruned_reason"] = (
                f"unprofitable: predicted {ratio:.2f}x the best candidate's cost"
            )
        elif unmeasurable is not None:
            row["pruned_reason"] = f"unmeasurable: {unmeasurable}"
        elif len(selected) < budget:
            selected.append(row)
        else:
            row["pruned_reason"] = f"beyond measurement budget: rank {rank} > top-{budget}"
    return selected


def measure_shape(dims: int, vector_lanes: int) -> Tuple[int, ...]:
    """Smallest backend-compliant measurement grid for ``dims``.

    Extents are multiples of ``vl²`` (1-D transpose layout) or ``vl`` along
    the innermost extents (2-D/3-D), matching
    :meth:`CompiledPlan.simulate`'s grid requirements.
    """
    vl = vector_lanes
    return {1: (16 * vl * vl,), 2: (8 * vl, 8 * vl), 3: (4, 4 * vl, 4 * vl)}[dims]


def _build_candidate_plan(spec: StencilSpec, row: Mapping[str, Any]):
    from repro.core.plan import plan as make_plan

    return (
        make_plan(spec)
        .method(row["method"])
        .isa(row["isa"])
        .unroll(int(row["m"]))
        .compile()
    )


def measure_row(
    cache: EvalCache,
    spec: StencilSpec,
    row: Dict[str, Any],
    seed: int = 0,
    steps: Optional[int] = None,
    warmup: int = 1,
    repeats: int = 3,
    clock: Optional[Any] = None,
) -> Dict[str, Any]:
    """Measure stage for one selected row: timed kernel replay, cache-keyed.

    The measurement grid is derived from the candidate's ISA (so it always
    satisfies the backend's extent constraints) and seeded deterministically;
    the result is memoized in ``cache`` under the candidate's content key, so
    re-running a search — or two searches sharing a cache — measures each
    distinct configuration at most once.  ``clock`` is injectable for tests
    and never part of the cache key.
    """
    from repro.stencils.grid import Grid

    vl = isa_for(row["isa"]).vector_lanes
    shape = measure_shape(spec.dims, vl)
    run_steps = int(steps) if steps is not None else 2 * int(row["m"])
    key_parts = (spec, row["config_hash"], shape, run_steps, seed, warmup, repeats)

    def compute() -> Dict[str, float]:
        built = _build_candidate_plan(spec, row)
        grid = Grid.random(shape, seed=seed)
        measurement = built.measure(
            grid,
            run_steps,
            backend=row["backend"],
            optimize=row["pipeline"] == "default",
            warmup=warmup,
            repeats=repeats,
            clock=clock,
        )
        return {
            "median_seconds": float(measurement.median_seconds),
            "seconds_per_point": float(measurement.seconds_per_point),
        }

    payload = cache.memoize("measure", key_parts, compute)
    row["measured_seconds"] = payload["median_seconds"]
    row["measured_cycles_per_point"] = (
        payload["seconds_per_point"] * float(row["frequency_ghz"]) * 1e9
    )
    return row


def assemble_result(
    stencil: str,
    spec: StencilSpec,
    objective: str,
    budget: int,
    rows: Sequence[Dict[str, Any]],
    space: SearchSpace,
    workload: TuningWorkload,
    seed: int,
) -> TuneResult:
    """Fold the staged rows into an immutable :class:`TuneResult`.

    The ledger orders scored rows by rank, then invalid rows by generation
    index.  The winner is the best *measured* candidate when any measurement
    ran (the expensive oracle outranks the model), the rank-1 predicted
    candidate otherwise.
    """
    scored = sorted(
        (row for row in rows if row.get("rank") is not None), key=lambda row: row["rank"]
    )
    invalid = sorted(
        (row for row in rows if row.get("rank") is None), key=lambda row: row["index"]
    )
    ledger = tuple(CandidateRecord.from_row(row) for row in [*scored, *invalid])
    measured = [record for record in ledger if record.measured]
    if measured:
        winner = min(
            measured, key=lambda rec: (rec.measured_cycles_per_point, rec.index)
        )
    elif scored:
        winner = ledger[0]
    else:
        reasons = sorted({record.pruned_reason for record in ledger if record.pruned_reason})
        raise ValueError(
            f"search space produced no scoreable candidate for {stencil!r}"
            + (f" ({'; '.join(reasons)})" if reasons else "")
        )
    provenance: Dict[str, Any] = {
        "stencil": stencil,
        "space": space.describe(),
        "workload": workload.to_dict(),
        "seed": int(seed),
        "prune_ratio": PRUNE_RATIO,
        "stencil_spec": spec,
        # The predict stage scores candidates on the default-pipeline
        # optimized IR; pin the pass line-up so a ledger is reproducible
        # against the exact pipeline that ranked it.
        "ir_passes": list(DEFAULT_PASSES),
    }
    return TuneResult(
        stencil=stencil,
        objective=objective,
        budget=budget,
        winner=winner,
        ledger=ledger,
        provenance=provenance,
    )


def autotune(
    spec: Union[StencilSpec, BenchmarkCase, str],
    machine: Optional[MachineSpec] = None,
    *,
    budget: int = 3,
    objective: str = "cycles_per_point",
    space: Optional[SearchSpace] = None,
    workload: Optional[TuningWorkload] = None,
    cache: Optional[EvalCache] = None,
    seed: int = 0,
    warmup: int = 1,
    repeats: int = 3,
    clock: Optional[Any] = None,
    measure_steps: Optional[int] = None,
    label: Optional[str] = None,
    shape: Optional[Sequence[int]] = None,
    time_steps: Optional[int] = None,
    cores: int = 1,
    isas: Optional[Sequence[str]] = None,
    methods: Optional[Sequence[str]] = None,
    m_values: Optional[Sequence[int]] = None,
    tilings: Optional[Sequence[Any]] = None,
    pipelines: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> TuneResult:
    """Run the staged search and return its :class:`TuneResult`.

    ``budget`` caps the measure stage (``0`` = predict-only search);
    ``objective`` is one of :data:`OBJECTIVES`.  ``space``/``workload``
    default to the registry- and benchmark-derived ones
    (:meth:`SearchSpace.for_spec` / :meth:`TuningWorkload.for_spec`); the
    axis keywords (``isas=``, ``methods=``, ``m_values=``, ...) constrain
    whichever space is in effect.  ``cache`` shares predictions and
    measurements across searches; ``seed`` fixes the measurement grids and
    ``clock`` injects a timer for wall-clock-free tests.
    """
    if isinstance(spec, str) and label is None:
        label = spec
    spec = coerce_spec(spec)
    if label is None:
        label = spec.name
    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; expected one of {OBJECTIVES}")
    if budget < 0:
        raise ValueError("budget must be >= 0")
    overrides = {
        name: value
        for name, value in (
            ("isas", isas),
            ("methods", methods),
            ("m_values", m_values),
            ("tilings", tilings),
            ("pipelines", pipelines),
            ("backends", backends),
        )
        if value is not None
    }
    if space is None:
        space = SearchSpace.for_spec(spec, **overrides)
    elif overrides:
        space = space.constrain(**overrides)
    if workload is None:
        workload = TuningWorkload.for_spec(spec, shape=shape, time_steps=time_steps, cores=cores)
    cache = cache if cache is not None else EvalCache()
    rows = [
        predict_row(cache, spec, workload, candidate, machine=machine)
        for candidate in expand_candidates(spec, space)
    ]
    for row in prune_rows(rows, budget, objective):
        measure_row(
            cache,
            spec,
            row,
            seed=seed,
            steps=measure_steps,
            warmup=warmup,
            repeats=repeats,
            clock=clock,
        )
    return assemble_result(label, spec, objective, budget, rows, space, workload, seed)


# --------------------------------------------------------------------------- #
# service-payload front ends (shared by the unsharded handler and the pool)
# --------------------------------------------------------------------------- #
def space_from_params(
    params: Mapping[str, Any],
) -> Tuple[StencilSpec, SearchSpace, TuningWorkload]:
    """Rebuild the search posing from normalized ``tune`` request params."""
    spec = get_benchmark(params["stencil"]).spec
    space = SearchSpace.for_spec(
        spec,
        isas=tuple(params["isas"]),
        methods=tuple(params["methods"]),
        m_values=tuple(params["m_values"]),
    )
    workload = TuningWorkload(
        shape=tuple(params["shape"]),
        time_steps=int(params["time_steps"]),
        cores=int(params["cores"]),
    )
    return spec, space, workload


def execute_tune_payload(
    params: Mapping[str, Any], cache: EvalCache, clock: Optional[Any] = None
) -> Dict[str, Any]:
    """The unsharded ``tune`` computation: one full in-process search."""
    spec, space, workload = space_from_params(params)
    result = autotune(
        spec,
        budget=int(params["budget"]),
        objective=params["objective"],
        space=space,
        workload=workload,
        cache=cache,
        seed=int(params["seed"]),
        repeats=int(params["repeats"]),
        clock=clock,
        label=params["stencil"],
    )
    return result.to_dict()


def predict_candidate_rows(
    params: Mapping[str, Any], candidates: Sequence[Mapping[str, Any]], cache: EvalCache
) -> List[Dict[str, Any]]:
    """Predict stage over one shard of the candidate list."""
    spec, _, workload = space_from_params(params)
    return [predict_row(cache, spec, workload, candidate) for candidate in candidates]


def measure_ledger_rows(
    params: Mapping[str, Any],
    rows: Sequence[Dict[str, Any]],
    cache: EvalCache,
    clock: Optional[Any] = None,
) -> List[Dict[str, Any]]:
    """Measure stage over the selected rows (one job, not sharded — the
    selected set is at most ``budget`` rows)."""
    spec, _, _ = space_from_params(params)
    return [
        measure_row(
            cache,
            spec,
            dict(row),
            seed=int(params["seed"]),
            repeats=int(params["repeats"]),
            clock=clock,
        )
        for row in rows
    ]


def assemble_tune_response(
    params: Mapping[str, Any], rows: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold merged shard rows into the canonical ``tune`` response dict —
    the same :meth:`TuneResult.to_dict` shape the unsharded path returns."""
    spec, space, workload = space_from_params(params)
    result = assemble_result(
        params["stencil"],
        spec,
        params["objective"],
        int(params["budget"]),
        list(rows),
        space,
        workload,
        int(params["seed"]),
    )
    return result.to_dict()
