"""``repro-tune`` — staged configuration autotuning from the command line.

Runs :func:`repro.autotune.autotune` over one library stencil and prints the
:class:`~repro.autotune.TuneResult` ledger as one JSON document::

    repro-tune 2d9p                      # predict-only default search
    repro-tune 1d-heat --budget 3        # measure the top-3 predictions
    repro-tune 3d-heat --isas avx512 --methods folded,transpose --m-values 1,2,4
    repro-tune 2d9p --objective gflops --top 5 --json-indent 0

``--budget 0`` (the default) never executes a kernel: the ranking comes
entirely from the IR cost model, which is instant and machine-independent.
A positive budget measures the surviving top-K through the kernel backend
on this machine.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.autotune.tuner import OBJECTIVES, autotune
from repro.stencils.library import BENCHMARKS

__all__ = ["main"]


def _parse_csv(text: str) -> Tuple[str, ...]:
    parts = tuple(part.strip() for part in text.split(",") if part.strip())
    if not parts:
        raise argparse.ArgumentTypeError(f"invalid list {text!r}; expected e.g. a,b")
    return parts


def _parse_ints(text: str) -> Tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid list {text!r}; expected e.g. 1,2,4")
    if not values:
        raise argparse.ArgumentTypeError(f"invalid list {text!r}; expected e.g. 1,2,4")
    return values


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tune",
        description=(
            "Search (method, m, isa, ...) configurations for one benchmark "
            "stencil with the staged predict/prune/measure tuner and print "
            "the ranked ledger as JSON."
        ),
    )
    parser.add_argument(
        "stencil", metavar="STENCIL", help=f"benchmark key ({', '.join(BENCHMARKS)})"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=0,
        metavar="K",
        help="measure the top-K predicted candidates (default: 0 = predict only)",
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="cycles_per_point", help="ranking objective"
    )
    parser.add_argument(
        "--isas", type=_parse_csv, default=None, metavar="ISA[,ISA]",
        help="ISA axis, comma-separated (default: avx2,avx512)",
    )
    parser.add_argument(
        "--methods", type=_parse_csv, default=None, metavar="M[,M...]",
        help="method axis (default: every tunable registry method)",
    )
    parser.add_argument(
        "--m-values", type=_parse_ints, default=None, metavar="N[,N...]",
        help="unroll-factor axis (default: 1..4 cut to the ISA's register budget)",
    )
    parser.add_argument(
        "--shape", type=_parse_ints, default=None, metavar="N[,N...]",
        help="workload grid extents (default: the stencil's benchmark size)",
    )
    parser.add_argument(
        "--time-steps", type=int, default=None, metavar="T",
        help="workload time steps (default: the stencil's benchmark count)",
    )
    parser.add_argument("--cores", type=int, default=1, metavar="N", help="modelled core count")
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="N", help="timed repeats per measurement"
    )
    parser.add_argument("--seed", type=int, default=0, metavar="S", help="measurement-grid seed")
    parser.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="only print the N best ledger rows (0 = full ledger)",
    )
    parser.add_argument(
        "--json-indent", type=int, default=2, metavar="N",
        help="JSON indentation (0 prints one compact line)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: print one TuneResult JSON document."""
    args = _build_parser().parse_args(list(sys.argv[1:] if argv is None else argv))
    try:
        result = autotune(
            args.stencil,
            budget=args.budget,
            objective=args.objective,
            isas=args.isas,
            methods=args.methods,
            m_values=args.m_values,
            shape=args.shape,
            time_steps=args.time_steps,
            cores=args.cores,
            repeats=args.repeats,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    document = result.to_dict()
    if args.top > 0:
        document["ledger"] = document["ledger"][: args.top]
    indent = args.json_indent if args.json_indent > 0 else None
    print(json.dumps(document, indent=indent, default=str))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
