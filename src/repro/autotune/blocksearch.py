"""Model-driven tessellation block-size search.

Enumerates a small grid of candidate block sizes and time ranges, scores
each with the analytic multicore model and returns the best configuration.
The search deliberately stays coarse (powers-of-two-ish candidates): the
performance model is not accurate enough to justify a fine-grained search,
and the paper itself fixes its blocking sizes per stencil (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


from repro.machine import MachineSpec
from repro.parallel.model import multicore_estimate
from repro.perfmodel.profiles import MethodProfile
from repro.tiling.tessellate import TessellationConfig


@dataclass(frozen=True)
class BlockSearchResult:
    """Outcome of a blocking search.

    Attributes
    ----------
    config:
        The best tessellation configuration found.
    gflops:
        Modelled GFLOP/s of the best configuration.
    candidates:
        All evaluated ``(config, gflops)`` pairs, best first.
    """

    config: TessellationConfig
    gflops: float
    candidates: Tuple[Tuple[TessellationConfig, float], ...]


def _candidate_blocks(extent: int, radius: int, time_range: int) -> List[int]:
    """Candidate block sizes for one dimension."""
    minimum = max(2 * radius * time_range, 8)
    candidates = []
    for block in (16, 32, 64, 100, 128, 200, 256, 400, 512, 1000, 2000, 4096):
        if block < minimum or block > extent:
            continue
        candidates.append(block)
    if not candidates and minimum <= extent:
        candidates.append(minimum)
    return candidates


def search_blocking(
    profile: MethodProfile,
    grid_shape: Sequence[int],
    radius: int,
    machine: MachineSpec,
    cores: int,
    time_steps: int = 1000,
    time_ranges: Sequence[int] = (8, 16, 32, 64),
    max_candidates_per_dim: int = 4,
) -> BlockSearchResult:
    """Search block sizes and time range for one method profile.

    Parameters
    ----------
    profile:
        Steady-state method profile to tile.
    grid_shape:
        Spatial problem extents.
    radius:
        Stencil radius.
    machine:
        Machine description.
    cores:
        Core count to optimise for.
    time_steps:
        Total time steps (amortisation of layout overheads).
    time_ranges:
        Candidate temporal block depths.
    max_candidates_per_dim:
        Cap on spatial candidates per dimension to keep the search small.
    """
    scored: List[Tuple[TessellationConfig, float]] = []
    for tr in time_ranges:
        per_dim: List[List[Optional[int]]] = []
        feasible = True
        for extent in grid_shape:
            cands = _candidate_blocks(int(extent), radius, tr)[:max_candidates_per_dim]
            if not cands:
                feasible = False
                break
            per_dim.append(list(cands))
        if not feasible:
            continue
        # Use the same relative candidate rank in every dimension to avoid a
        # combinatorial explosion (block shapes are roughly isotropic for the
        # paper's stencils).
        ranks = max(len(c) for c in per_dim)
        for rank in range(ranks):
            blocks = tuple(c[min(rank, len(c) - 1)] for c in per_dim)
            config = TessellationConfig(block_sizes=blocks, time_range=tr)
            est = multicore_estimate(
                profile,
                grid_shape=grid_shape,
                time_steps=time_steps,
                machine=machine,
                cores=cores,
                radius=radius,
                tiling=config,
            )
            scored.append((config, est.gflops))
    if not scored:
        raise ValueError(
            f"no feasible tessellation configuration for shape {tuple(grid_shape)} "
            f"and radius {radius}"
        )
    scored.sort(key=lambda pair: -pair[1])
    best_config, best_gflops = scored[0]
    return BlockSearchResult(
        config=best_config, gflops=best_gflops, candidates=tuple(scored)
    )
