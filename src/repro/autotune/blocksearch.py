"""Deprecated tessellation block-size search (use the staged tuner).

:func:`search_blocking` predates the staged tuner; it survives as a thin
wrapper: the candidate configurations now come from
:func:`repro.autotune.space.tiling_candidates` (the tuner's tiling axis)
and each one is scored through the shared
:class:`~repro.study.cache.EvalCache` multicore path — exactly the predict
stage :func:`repro.autotune.autotune` runs over a tiling-constrained
:class:`~repro.autotune.SearchSpace`.  The :class:`BlockSearchResult`
dataclass stays importable for one release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.machine import MachineSpec
from repro.perfmodel.profiles import MethodProfile
from repro.study.cache import EvalCache
from repro.tiling.tessellate import TessellationConfig

__all__ = ["BlockSearchResult", "search_blocking"]


@dataclass(frozen=True)
class BlockSearchResult:
    """Outcome of the (deprecated) blocking search.

    Attributes
    ----------
    config:
        The best tessellation configuration found.
    gflops:
        Modelled GFLOP/s of the best configuration.
    candidates:
        All evaluated ``(config, gflops)`` pairs, best first.
    """

    config: TessellationConfig
    gflops: float
    candidates: Tuple[Tuple[TessellationConfig, float], ...]


def search_blocking(
    profile: MethodProfile,
    grid_shape: Sequence[int],
    radius: int,
    machine: MachineSpec,
    cores: int,
    time_steps: int = 1000,
    time_ranges: Sequence[int] = (8, 16, 32, 64),
    max_candidates_per_dim: int = 4,
    cache: Optional[EvalCache] = None,
) -> BlockSearchResult:
    """Deprecated: search block sizes and time range for one method profile.

    Use ``repro.plan(spec).autotune(tilings=...)`` or
    :func:`repro.autotune.autotune` — the staged tuner scores tilings
    together with the method/ISA/unroll axes and records why each candidate
    was kept or pruned.  This wrapper keeps the profile-based signature:
    candidates come from :func:`repro.autotune.space.tiling_candidates` and
    are scored on the tuner's shared cached-estimate path.
    """
    warnings.warn(
        "search_blocking() is deprecated; use repro.plan(spec).autotune(tilings=...) "
        "(repro.autotune.space.tiling_candidates generates the same candidate set)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.autotune.space import tiling_candidates

    cache = cache if cache is not None else EvalCache()
    scored: List[Tuple[TessellationConfig, float]] = []
    for config in tiling_candidates(
        tuple(int(extent) for extent in grid_shape),
        radius,
        time_ranges=time_ranges,
        max_candidates_per_dim=max_candidates_per_dim,
    ):
        estimate = cache.multicore(
            profile,
            tuple(int(extent) for extent in grid_shape),
            time_steps,
            machine,
            cores,
            radius,
            tiling=config,
        )
        scored.append((config, estimate.gflops))
    if not scored:
        raise ValueError(
            f"no feasible tessellation configuration for shape {tuple(grid_shape)} "
            f"and radius {radius}"
        )
    scored.sort(key=lambda pair: -pair[1])
    best_config, best_gflops = scored[0]
    return BlockSearchResult(
        config=best_config, gflops=best_gflops, candidates=tuple(scored)
    )
