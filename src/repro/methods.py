"""Method registry: every vectorization method's performance profile.

The experiments compare five vectorization methods (plus tiling framework
combinations built on top of them):

=================  ==========================================================
key                description
=================  ==========================================================
``multiple_loads`` one unaligned load per stencil point (compiler fallback)
``data_reorg``     aligned loads + in-register shifts (compiler reorg)
``dlt``            dimension-lifted transpose (Henretty et al.)
``transpose``      the paper's transpose layout, single-step updates
``folded``         transpose layout + m-step temporal computation folding
=================  ==========================================================

:func:`build_profile` returns the steady-state
:class:`~repro.perfmodel.profiles.MethodProfile` for any of them;
:data:`METHOD_LABELS` maps the keys to the names used in the paper's figures.
The harness composes these profiles with tiling reuse factors for the
multicore experiments.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.data_reorg import profile_data_reorg
from repro.baselines.dlt import profile_dlt
from repro.baselines.multiple_loads import profile_multiple_loads
from repro.baselines.common import (
    kernel_rows,
    post_rule_counts,
    streamed_arrays,
    weighted_sum_counts,
)
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.profiles import MethodProfile
from repro.simd.isa import InstructionClass, isa_for
from repro.simd.machine import InstructionCounts
from repro.stencils.spec import StencilSpec

#: Method keys in the order the paper's figures list them.
METHOD_KEYS = ("multiple_loads", "data_reorg", "dlt", "transpose", "folded")

#: Display names matching the paper's figures and tables.
METHOD_LABELS: Dict[str, str] = {
    "multiple_loads": "Multiple Loads",
    "data_reorg": "Data Reorganization",
    "dlt": "DLT",
    "transpose": "Our",
    "folded": "Our (2 steps)",
    "sdsl": "SDSL",
    "tessellation": "Tessellation",
}


def profile_transpose(spec: StencilSpec, isa: str = "avx2") -> MethodProfile:
    """Profile of the paper's transpose-layout vectorization (no folding).

    1-D stencils use the vector-set formulation (assembled dependence
    vectors, Figure 2); multi-dimensional stencils apply the layout along the
    innermost dimension, so each kernel row needs ``2·r`` assembled vectors
    per vector set instead of per output vector — the factor-``vl/2``
    reduction in data-organisation instructions over the data-reorganisation
    baseline.
    """
    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    counts = InstructionCounts()
    rows = kernel_rows(spec)
    radius_inner = (spec.kernel.shape[-1] - 1) // 2
    counts.add(InstructionClass.LOAD, float(rows) / vl)
    counts.add(InstructionClass.STORE, 1.0 / vl)
    assembled = rows * 2 * radius_inner
    counts.add(InstructionClass.BLEND, float(assembled) / (vl * vl))
    counts.add(InstructionClass.PERMUTE, float(assembled) / (vl * vl))
    counts = counts.merge(weighted_sum_counts(spec, vl))
    counts = counts.merge(post_rule_counts(spec, vl))
    return MethodProfile(
        method="transpose",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0,
        layout_overhead_sweeps=1.0 if spec.dims == 1 else 0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        notes="transpose layout, assembled dependence vectors per vector set",
    )


def profile_folded(
    spec: StencilSpec, isa: str = "avx2", m: int = 2, shifts_reuse: bool = True
) -> MethodProfile:
    """Profile of the transpose layout + ``m``-step temporal computation folding.

    Linear stencils use the full folding analysis (vertical/horizontal
    folding with counterpart reuse); the non-linear benchmarks (APOP, Game of
    Life) cannot fold their arithmetic, so the method degenerates to keeping
    ``m`` consecutive updates in registers — memory traffic and loads/stores
    drop by ``m`` while the arithmetic per logical step stays unchanged,
    which is exactly how such kernels behave in practice.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    # Imported lazily to avoid a circular import through the repro.core
    # package (whose __init__ pulls in the engine, which uses this registry).
    from repro.core.folding import arithmetically_profitable
    from repro.core.vectorized_folding import FoldingSchedule

    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    if spec.linear and arithmetically_profitable(spec, m):
        schedule = FoldingSchedule(spec, m)
        counts = schedule.instruction_profile(vl, shifts_reuse=shifts_reuse)
        counts = counts.merge(post_rule_counts(spec, vl))
        notes = (
            f"temporal folding m={m}, "
            f"{'separable fast path' if schedule.separable_fast_path else 'counterpart reuse'}"
        )
    else:
        # Folding does not pay off arithmetically (sparse star stencils) or
        # is undefined (non-linear stencils): keep m consecutive updates in
        # registers instead — loads/stores and memory sweeps drop by m while
        # the per-step arithmetic stays that of the transpose-layout scheme.
        base = profile_transpose(spec, isa)
        counts = InstructionCounts()
        for cls, value in base.counts_per_point.counts.items():
            if cls in (InstructionClass.LOAD, InstructionClass.STORE):
                counts.add(cls, value / m)
            else:
                counts.add(cls, value)
        reason = "non-linear stencil" if not spec.linear else "folding not arithmetically profitable"
        notes = f"in-register {m}-step update ({reason})"
    return MethodProfile(
        method="folded",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0 / m,
        layout_overhead_sweeps=1.0 if spec.dims == 1 else 0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        notes=notes,
    )


def build_profile(
    method: str, spec: StencilSpec, isa: str = "avx2", m: int = 2
) -> MethodProfile:
    """Build the :class:`MethodProfile` for ``method`` on ``spec``.

    Parameters
    ----------
    method:
        One of :data:`METHOD_KEYS`.
    spec:
        The stencil.
    isa:
        ``"avx2"`` or ``"avx512"``.
    m:
        Unrolling factor used by the ``"folded"`` method (ignored otherwise).
    """
    key = method.strip().lower()
    if key == "multiple_loads":
        return profile_multiple_loads(spec, isa)
    if key == "data_reorg":
        return profile_data_reorg(spec, isa)
    if key == "dlt":
        return profile_dlt(spec, isa)
    if key == "transpose":
        return profile_transpose(spec, isa)
    if key == "folded":
        return profile_folded(spec, isa, m)
    raise KeyError(f"unknown method {method!r}; known: {METHOD_KEYS}")
