"""The paper's vectorization methods, registered with the method registry.

The experiments compare five vectorization methods (plus tiling framework
combinations built on top of them):

=================  ==========================================================
key                description
=================  ==========================================================
``multiple_loads`` one unaligned load per stencil point (compiler fallback)
``data_reorg``     aligned loads + in-register shifts (compiler reorg)
``dlt``            dimension-lifted transpose (Henretty et al.)
``transpose``      the paper's transpose layout, single-step updates
``folded``         transpose layout + m-step temporal computation folding
=================  ==========================================================

Each method is described by a :class:`~repro.registry.MethodDescriptor` in
the pluggable registry (:mod:`repro.registry`); the baselines register
themselves in their own modules, and this module registers the paper's
``transpose`` and ``folded`` methods.  :func:`build_profile` dispatches
through the registry — there is no string ``if/elif`` — and
:data:`METHOD_KEYS` / :data:`METHOD_LABELS` are derived from it in the order
the paper's figures list the methods.
"""

from __future__ import annotations

from typing import Dict

# Importing the baseline modules registers their method descriptors.
from repro.baselines.data_reorg import profile_data_reorg  # noqa: F401
from repro.baselines.dlt import profile_dlt  # noqa: F401
from repro.baselines.multiple_loads import profile_multiple_loads  # noqa: F401
from repro.baselines.sdsl import profile_sdsl  # noqa: F401
from repro.baselines.common import (
    kernel_rows,
    post_rule_counts,
    streamed_arrays,
    weighted_sum_counts,
)
from repro.perfmodel.flops import useful_flops_per_point
from repro.perfmodel.profiles import MethodProfile
from repro.registry import (
    MethodDescriptor,
    get_method,
    method_labels,
    method_keys as _registry_method_keys,
    register,
    register_method,
)
from repro.simd.isa import InstructionClass, isa_for
from repro.simd.machine import InstructionCounts
from repro.stencils.spec import StencilSpec


@register_method(
    "transpose",
    label="Our",
    figure_order=3,
    supports_simulation=True,
    simulation_dims=(1, 2, 3),
    description="transpose layout, single-step vector-set updates",
)
def profile_transpose(spec: StencilSpec, isa: str = "avx2") -> MethodProfile:
    """Profile of the paper's transpose-layout vectorization (no folding).

    1-D stencils use the vector-set formulation (assembled dependence
    vectors, Figure 2); multi-dimensional stencils apply the layout along the
    innermost dimension, so each kernel row needs ``2·r`` assembled vectors
    per vector set instead of per output vector — the factor-``vl/2``
    reduction in data-organisation instructions over the data-reorganisation
    baseline.
    """
    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    counts = InstructionCounts()
    rows = kernel_rows(spec)
    radius_inner = (spec.kernel.shape[-1] - 1) // 2
    counts.add(InstructionClass.LOAD, float(rows) / vl)
    counts.add(InstructionClass.STORE, 1.0 / vl)
    assembled = rows * 2 * radius_inner
    counts.add(InstructionClass.BLEND, float(assembled) / (vl * vl))
    counts.add(InstructionClass.PERMUTE, float(assembled) / (vl * vl))
    counts = counts.merge(weighted_sum_counts(spec, vl))
    counts = counts.merge(post_rule_counts(spec, vl))
    return MethodProfile(
        method="transpose",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0,
        layout_overhead_sweeps=1.0 if spec.dims == 1 else 0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        notes="transpose layout, assembled dependence vectors per vector set",
    )


@register_method(
    "folded",
    label="Our (2 steps)",
    figure_order=4,
    supports_simulation=True,
    simulation_dims=(1, 2, 3),
    uses_unroll=True,
    uses_schedule=True,
    description="transpose layout + m-step temporal computation folding",
)
def profile_folded(
    spec: StencilSpec,
    isa: str = "avx2",
    m: int = 2,
    shifts_reuse: bool = True,
    schedule: object = None,
) -> MethodProfile:
    """Profile of the transpose layout + ``m``-step temporal computation folding.

    Linear stencils use the full folding analysis (vertical/horizontal
    folding with counterpart reuse); the non-linear benchmarks (APOP, Game of
    Life) cannot fold their arithmetic, so the method degenerates to keeping
    ``m`` consecutive updates in registers — memory traffic and loads/stores
    drop by ``m`` while the arithmetic per logical step stays unchanged,
    which is exactly how such kernels behave in practice.

    ``schedule`` may carry an already-built
    :class:`~repro.core.vectorized_folding.FoldingSchedule` for this
    ``(spec, m)`` pair — compiled plans pass their cached one so profiling
    does not repeat the counterpart planning.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    # Imported lazily to avoid a circular import through the repro.core
    # package (whose __init__ pulls in the plan machinery, which uses this
    # registry).
    from repro.core.folding import arithmetically_profitable
    from repro.core.vectorized_folding import FoldingSchedule

    isa_spec = isa_for(isa)
    vl = isa_spec.vector_lanes
    if schedule is not None and not (
        isinstance(schedule, FoldingSchedule) and schedule.m == m
    ):
        schedule = None
    chain = 0.0
    if spec.linear and arithmetically_profitable(spec, m):
        schedule = schedule if schedule is not None else FoldingSchedule(spec, m)
        counts = schedule.instruction_profile(vl, shifts_reuse=shifts_reuse)
        counts = counts.merge(post_rule_counts(spec, vl))
        optimized_ir = schedule.schedule_ir(vl, optimize=True)
        if optimized_ir is not None:
            from repro.ir.dependency import program_critical_path

            # Same normalisation as steady_counts_per_point: the steady
            # segments run once per vl×vl points and advance m steps.
            chain = program_critical_path(optimized_ir) / (vl * vl * m)
        notes = (
            f"temporal folding m={m}, "
            f"{'separable fast path' if schedule.separable_fast_path else 'counterpart reuse'}"
        )
    else:
        # Folding does not pay off arithmetically (sparse star stencils) or
        # is undefined (non-linear stencils): keep m consecutive updates in
        # registers instead — loads/stores and memory sweeps drop by m while
        # the per-step arithmetic stays that of the transpose-layout scheme.
        base = profile_transpose(spec, isa)
        counts = InstructionCounts()
        for cls, value in base.counts_per_point.counts.items():
            if cls in (InstructionClass.LOAD, InstructionClass.STORE):
                counts.add(cls, value / m)
            else:
                counts.add(cls, value)
        reason = (
            "non-linear stencil" if not spec.linear else "folding not arithmetically profitable"
        )
        notes = f"in-register {m}-step update ({reason})"
    return MethodProfile(
        method="folded",
        stencil=spec.name,
        isa=isa,
        counts_per_point=counts,
        flops_per_point=useful_flops_per_point(spec),
        sweeps_per_step=1.0 / m,
        layout_overhead_sweeps=1.0 if spec.dims == 1 else 0.0,
        extra_arrays=0,
        arrays=streamed_arrays(spec),
        chain_cycles_per_point=chain,
        notes=notes,
    )


# Figure label for the tessellation baseline series (data_reorg vectorization
# under tessellate tiling): not an executable method of its own.
register(
    MethodDescriptor(
        key="tessellation",
        label="Tessellation",
        virtual=True,
        description="figure label for the data_reorg + tessellate-tiling lineup",
    )
)

# The naive reference executor: no vectorization model (profile-less), runs
# through the plan's generic numeric path.
register(
    MethodDescriptor(
        key="reference",
        label="Reference",
        description="naive single-step reference executor",
    )
)

#: Method keys in the order the paper's figures list them (snapshot of the
#: registry's figure line-up; plug-in methods live in the registry only).
METHOD_KEYS = _registry_method_keys()

#: Display names matching the paper's figures and tables.  A snapshot for
#: back-compat — prefer :func:`repro.registry.label_for` for live lookups.
METHOD_LABELS: Dict[str, str] = method_labels()


def build_profile(
    method: str,
    spec: StencilSpec,
    isa: str = "avx2",
    m: int = 2,
    shifts_reuse: bool = True,
    **extra: object,
) -> MethodProfile:
    """Build the :class:`MethodProfile` for ``method`` on ``spec``.

    Dispatches through the pluggable method registry; every registered
    method (built-in or plug-in) resolves uniformly.

    Parameters
    ----------
    method:
        A registered method key (see :data:`METHOD_KEYS` for the paper's
        line-up).
    spec:
        The stencil.
    isa:
        ``"avx2"`` or ``"avx512"``.
    m:
        Unrolling factor (consumed by methods that fold time steps).
    shifts_reuse:
        Whether the shifts-reuse optimisation is assumed (the ablation
        benchmarks switch it off); forwarded to methods that model it.
    extra:
        Additional keyword arguments for methods with richer profile
        builders (e.g. the SDSL baseline's tiling configuration).
    """
    return get_method(method).profile(
        spec, isa=isa, m=m, shifts_reuse=shifts_reuse, **extra
    )
