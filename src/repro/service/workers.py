"""Process-pool worker tier: runs cold jobs off the event loop.

The front end (:mod:`repro.service.server`) never computes: every cold
request becomes a picklable payload executed by :func:`execute_payload` in a
worker process (or inline on a thread for ``workers=0`` deployments and
tests).  Workers are long-lived and keep a process-local
:class:`~repro.study.cache.EvalCache`, so the expensive pipeline stages
(profiles, estimates) amortise across the jobs a worker sees — the study
sharding below leans on exactly that.

Fault handling: a worker process dying mid-job breaks the whole
``ProcessPoolExecutor`` (CPython semantics), so :meth:`WorkerPool.submit`
detects the broken pool, rebuilds it, and retries the job **once**; a second
failure surfaces as a structured ``worker-crash`` error rather than an
exception, keeping one poisoned request from wedging the service.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.service.protocol import ServiceError
from repro.study.cache import EvalCache

__all__ = ["execute_payload", "WorkerPool"]

#: Process-local memo shared by every job one worker executes.
_WORKER_CACHE = EvalCache()


def worker_cache() -> EvalCache:
    """The executing process's job-level :class:`EvalCache`."""
    return _WORKER_CACHE


# --------------------------------------------------------------------------- #
# job execution (runs inside worker processes — top level, picklable)
# --------------------------------------------------------------------------- #
def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one canonical request payload and return its result.

    Results are plain dicts of JSON-native values and NumPy arrays — both
    picklable across the process boundary; the transport encodes arrays for
    the wire and the store writes them to NPZ sidecars.

    ``payload`` is :meth:`repro.service.protocol.Request.to_payload` output —
    already validated, so failures here are execution errors (method/grid
    mismatches, simulation constraints) and are raised as ``ValueError`` /
    ``KeyError`` for the caller to wrap.
    """
    kind = payload["kind"]
    handler = _HANDLERS[kind]
    return handler(payload)


def _compiled_plan(payload: Dict[str, Any]):
    import repro

    return (
        repro.plan(payload["stencil"])
        .method(payload["method"])
        .isa(payload["isa"])
        .unroll(payload["m"])
        .compile()
    )


def _execute_plan(payload: Dict[str, Any]) -> Dict[str, Any]:
    plan = _compiled_plan(payload)
    result: Dict[str, Any] = {
        "stencil": plan.spec.name,
        "method": plan.method_key,
        "label": plan.label,
        "isa": plan.config.isa,
        "unroll": plan.config.unroll,
        "steps_per_update": plan.steps_per_update,
        "linear": plan.spec.linear,
        "dims": plan.spec.dims,
        "explain": plan.explain(),
    }
    if plan.spec.linear:
        report = plan.folding_report()
        result["profitability"] = {
            "collect_naive": report.collect_naive,
            "collect_optimized": report.collect_optimized,
            "profitability_optimized": report.profitability_optimized,
        }
    return result


def _estimate_cell(
    cache: EvalCache, stencil: str, method: str, isa: str, m: int,
    shape: Sequence[int], time_steps: int, cores: int, shifts_reuse: bool = True,
) -> Dict[str, Any]:
    """One estimate row, routed through the worker's memo cache."""
    from repro.machine import machine_for_isa
    from repro.stencils.library import get_benchmark

    spec = get_benchmark(stencil).spec
    machine = machine_for_isa(isa)
    profile = cache.profile(method, spec, isa=isa, m=m, shifts_reuse=shifts_reuse)
    # Same path as CompiledPlan.estimate (multicore model even at one core),
    # so service responses agree with the library API to the last bit.
    estimate = cache.multicore(profile, tuple(shape), time_steps, machine, cores, spec.radius)
    return {
        "method": method,
        "isa": isa,
        "m": m,
        "gflops": estimate.gflops,
        "gflops_per_core": estimate.gflops_per_core,
        "cycles_per_point": estimate.cycles_per_point,
        "bound": estimate.bound,
        "residency": estimate.residency,
    }


def _execute_estimate(payload: Dict[str, Any]) -> Dict[str, Any]:
    return _estimate_cell(
        _WORKER_CACHE,
        payload["stencil"],
        payload["method"],
        payload["isa"],
        payload["m"],
        payload["shape"],
        payload["time_steps"],
        payload["cores"],
        payload["shifts_reuse"],
    )


def _execute_simulate(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.stencils.grid import Grid

    plan = _compiled_plan(payload)
    grid = Grid.random(tuple(payload["shape"]), seed=payload["seed"])
    values, counts = plan.simulate(
        grid,
        payload["steps"],
        backend=payload.get("backend", "trace"),
        optimize=payload["optimize"],
    )
    return {
        "values": values,
        "backend": payload.get("backend", "trace"),
        "instructions": {
            "total": counts.total,
            # InstructionClass enum keys -> stable lowercase names on the wire.
            "counts": {
                k.name.lower(): v
                for k, v in sorted(counts.counts.items(), key=lambda kv: kv[0].name)
            },
        },
    }


def _execute_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.stencils.library import get_benchmark

    plan = _compiled_plan(payload)
    grid = get_benchmark(payload["stencil"]).make_grid(
        tuple(payload["shape"]), seed=payload["seed"]
    )
    backend = payload.get("backend", "auto")
    values = plan.run(grid, payload["steps"], backend=None if backend == "auto" else backend)
    return {"values": values, "backend": backend}


def _execute_study(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A whole study in one worker (the server shards instead when it can)."""
    from repro.service.protocol import expand_study_cells

    rows = _execute_study_shard(dict(payload, cells=expand_study_cells(payload)))
    return {"rows": rows["rows"], "cells": len(rows["rows"])}


def _execute_study_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One contiguous chunk of a study's cells (an internal job kind)."""
    rows = []
    for cell in payload["cells"]:
        row = _estimate_cell(
            _WORKER_CACHE,
            payload["stencil"],
            cell["method"],
            cell["isa"],
            cell["m"],
            payload["shape"],
            payload["time_steps"],
            payload["cores"],
        )
        rows.append({"index": cell["index"], **row})
    return {"rows": rows}


def _execute_sleep(payload: Dict[str, Any]) -> Dict[str, Any]:
    time.sleep(payload["seconds"])
    return {"slept": payload["seconds"], "token": payload.get("token", 0)}


def _execute_crash(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Fault injection: die hard on the first attempt, succeed on the retry.

    The marker file records that the first attempt happened; its absence
    means "crash now".  ``os._exit`` bypasses every handler — exactly the
    signature of a segfaulted or OOM-killed worker.
    """
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed-once\n")
        os._exit(2)
    return {"recovered": True}


_HANDLERS = {
    "plan": _execute_plan,
    "estimate": _execute_estimate,
    "simulate": _execute_simulate,
    "run": _execute_run,
    "study": _execute_study,
    "study-shard": _execute_study_shard,
    "_sleep": _execute_sleep,
    "_crash": _execute_crash,
}


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
class WorkerPool:
    """Job executor with crash recovery and an inline fallback.

    ``workers >= 1`` runs jobs on a ``ProcessPoolExecutor`` (``fork`` where
    available, so workers inherit the warm NumPy import); ``workers == 0``
    runs them on a small thread pool in-process — no isolation, but no spawn
    cost either, which is what unit tests and single-user deployments want.
    """

    def __init__(self, workers: int = 2):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)
        self._lock = threading.Lock()
        self._generation = 0
        self._executor = self._make_executor()

    def _make_executor(self):
        if self.workers == 0:
            return ThreadPoolExecutor(max_workers=4, thread_name_prefix="repro-service-inline")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=context)

    def _submit(self, payload: Dict[str, Any]) -> Future:
        with self._lock:
            return self._executor.submit(execute_payload, payload)

    def _rebuild(self, broken_generation: int) -> None:
        """Replace a broken executor exactly once per breakage."""
        with self._lock:
            if self._generation != broken_generation:
                return  # another job's retry already rebuilt it
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._executor = self._make_executor()
            self._generation += 1

    async def run(self, payload: Dict[str, Any], retries: int = 1) -> Dict[str, Any]:
        """Execute ``payload`` on the pool, retrying once across a crash.

        Raises :class:`ServiceError` (``worker-crash``) when the job kills
        its worker more times than ``retries`` allows; other exceptions
        propagate unchanged (they are execution errors, not infrastructure).
        """
        attempt = 0
        while True:
            with self._lock:
                generation = self._generation
            try:
                return await asyncio.wrap_future(self._submit(payload))
            except (BrokenExecutor, EOFError, OSError) as exc:
                self._rebuild(generation)
                attempt += 1
                if attempt > retries:
                    raise ServiceError(
                        "worker-crash",
                        f"worker died executing {payload.get('kind')!r} "
                        f"({attempt} attempt(s)): {exc!r}",
                        status=500,
                    ) from exc

    def run_sync(self, payload: Dict[str, Any], retries: int = 1) -> Dict[str, Any]:
        """Blocking form of :meth:`run` for non-async callers (tests, tools)."""
        attempt = 0
        while True:
            with self._lock:
                generation = self._generation
            try:
                return self._submit(payload).result()
            except (BrokenExecutor, EOFError, OSError) as exc:
                self._rebuild(generation)
                attempt += 1
                if attempt > retries:
                    raise ServiceError(
                        "worker-crash",
                        f"worker died executing {payload.get('kind')!r} "
                        f"({attempt} attempt(s)): {exc!r}",
                        status=500,
                    ) from exc

    async def run_study(
        self, payload: Dict[str, Any], cells: Sequence[Dict[str, Any]], shards: int
    ) -> Dict[str, Any]:
        """Shard a study's cells across the pool and merge rows in order."""
        from repro.service.protocol import shard_cells

        chunks = shard_cells(cells, shards)
        if len(chunks) <= 1:
            return await self.run(dict(payload, kind="study"))
        jobs = [self.run(dict(payload, kind="study-shard", cells=chunk)) for chunk in chunks]
        merged: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        for shard_result in await asyncio.gather(*jobs):
            for row in shard_result["rows"]:
                merged[row["index"]] = row
        rows = [row for row in merged if row is not None]
        # Same shape as the unsharded path: the response must not depend on
        # how many workers happened to split the study.
        return {"rows": rows, "cells": len(rows)}

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "inline" if self.workers == 0 else f"{self.workers} processes"
        return f"WorkerPool({mode})"
