"""Process-pool worker tier: runs cold jobs off the event loop.

The front end (:mod:`repro.service.server`) never computes: every cold
request becomes a picklable payload executed by :func:`execute_payload` in a
worker process (or inline on a thread for ``workers=0`` deployments and
tests).  Workers are long-lived and keep a process-local
:class:`~repro.study.cache.EvalCache`, so the expensive pipeline stages
(profiles, estimates) amortise across the jobs a worker sees — the study
sharding below leans on exactly that.

Fault handling is layered (:mod:`repro.service.resilience`):

* A worker process dying mid-job breaks the whole ``ProcessPoolExecutor``
  (CPython semantics); :meth:`WorkerPool.run` rebuilds the pool and retries
  under a :class:`~repro.service.resilience.RetryPolicy` — exponential
  backoff with decorrelated jitter, bounded by the per-request budget.
* Every crash feeds the :class:`~repro.service.resilience.CircuitBreaker`;
  past its threshold the pool stops fork-rebuilding and degrades to an
  inline thread executor until the cooldown elapses.
* Crashes are charged to the request's content key; a key that keeps
  killing workers is quarantined
  (:class:`~repro.service.resilience.PoisonQuarantine`) and refused with a
  structured ``quarantined`` error instead of crash-looping the pool.

Chaos hooks: fault *decisions* for the ``worker.execute`` site are made on
the submitting side (one process, one counter space — replayable even
across pool rebuilds and forks) and shipped to the worker as a
``__fault__`` directive inside the payload; ``pool.submit`` faults fire in
the submit path itself.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import random
import threading
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.service import faults
from repro.service.faults import InjectedCrash
from repro.service.protocol import ServiceError
from repro.service.resilience import CircuitBreaker, PoisonQuarantine, RetryPolicy
from repro.study.cache import EvalCache

__all__ = ["execute_payload", "WorkerPool"]

#: Process-local memo shared by every job one worker executes.
_WORKER_CACHE = EvalCache()

#: Exceptions that mean "the worker died", not "the job was wrong".
CRASH_EXCEPTIONS = (BrokenExecutor, InjectedCrash, EOFError, OSError)


def worker_cache() -> EvalCache:
    """The executing process's job-level :class:`EvalCache`."""
    return _WORKER_CACHE


# --------------------------------------------------------------------------- #
# job execution (runs inside worker processes — top level, picklable)
# --------------------------------------------------------------------------- #
def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one canonical request payload and return its result.

    Results are plain dicts of JSON-native values and NumPy arrays — both
    picklable across the process boundary; the transport encodes arrays for
    the wire and the store writes them to NPZ sidecars.

    ``payload`` is :meth:`repro.service.protocol.Request.to_payload` output —
    already validated, so failures here are execution errors (method/grid
    mismatches, simulation constraints) and are raised as ``ValueError`` /
    ``KeyError`` for the caller to wrap.  A ``__fault__`` directive (attached
    by the submitting :class:`WorkerPool` under an active fault schedule) is
    honoured first: a crash directive kills the worker the way a segfault
    would.
    """
    directive = payload.get("__fault__")
    if directive is not None:
        payload = {k: v for k, v in payload.items() if k != "__fault__"}
        _apply_fault_directive(directive)
    kind = payload["kind"]
    handler = _HANDLERS[kind]
    return handler(payload)


def _apply_fault_directive(directive: Dict[str, Any]) -> None:
    """Act out one injected fault inside the executing worker."""
    kind = directive.get("kind")
    if kind == "delay":
        time.sleep(float(directive.get("seconds", 0.0)))
    elif kind == "crash":
        if directive.get("mode") == "process":
            # Bypass every handler — the signature of a segfaulted or
            # OOM-killed worker; the parent sees a BrokenExecutor.
            os._exit(3)
        raise InjectedCrash("injected worker crash (inline)")


def _compiled_plan(payload: Dict[str, Any]):
    import repro

    return (
        repro.plan(payload["stencil"])
        .method(payload["method"])
        .isa(payload["isa"])
        .unroll(payload["m"])
        .compile()
    )


def _execute_plan(payload: Dict[str, Any]) -> Dict[str, Any]:
    plan = _compiled_plan(payload)
    result: Dict[str, Any] = {
        "stencil": plan.spec.name,
        "method": plan.method_key,
        "label": plan.label,
        "isa": plan.config.isa,
        "unroll": plan.config.unroll,
        "steps_per_update": plan.steps_per_update,
        "linear": plan.spec.linear,
        "dims": plan.spec.dims,
        "explain": plan.explain(),
    }
    if plan.spec.linear:
        report = plan.folding_report()
        result["profitability"] = {
            "collect_naive": report.collect_naive,
            "collect_optimized": report.collect_optimized,
            "profitability_optimized": report.profitability_optimized,
        }
    return result


def _estimate_cell(
    cache: EvalCache, stencil: str, method: str, isa: str, m: int,
    shape: Sequence[int], time_steps: int, cores: int, shifts_reuse: bool = True,
) -> Dict[str, Any]:
    """One estimate row, routed through the worker's memo cache."""
    from repro.machine import machine_for_isa
    from repro.stencils.library import get_benchmark

    spec = get_benchmark(stencil).spec
    machine = machine_for_isa(isa)
    profile = cache.profile(method, spec, isa=isa, m=m, shifts_reuse=shifts_reuse)
    # Same path as CompiledPlan.estimate (multicore model even at one core),
    # so service responses agree with the library API to the last bit.
    estimate = cache.multicore(profile, tuple(shape), time_steps, machine, cores, spec.radius)
    return {
        "method": method,
        "isa": isa,
        "m": m,
        "gflops": estimate.gflops,
        "gflops_per_core": estimate.gflops_per_core,
        "cycles_per_point": estimate.cycles_per_point,
        "bound": estimate.bound,
        "residency": estimate.residency,
    }


def _execute_estimate(payload: Dict[str, Any]) -> Dict[str, Any]:
    return _estimate_cell(
        _WORKER_CACHE,
        payload["stencil"],
        payload["method"],
        payload["isa"],
        payload["m"],
        payload["shape"],
        payload["time_steps"],
        payload["cores"],
        payload["shifts_reuse"],
    )


def _execute_simulate(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.stencils.grid import Grid

    plan = _compiled_plan(payload)
    grid = Grid.random(tuple(payload["shape"]), seed=payload["seed"])
    values, counts = plan.simulate(
        grid,
        payload["steps"],
        backend=payload.get("backend", "trace"),
        optimize=payload["optimize"],
    )
    return {
        "values": values,
        "backend": payload.get("backend", "trace"),
        "instructions": {
            "total": counts.total,
            # InstructionClass enum keys -> stable lowercase names on the wire.
            "counts": {
                k.name.lower(): v
                for k, v in sorted(counts.counts.items(), key=lambda kv: kv[0].name)
            },
        },
    }


def _execute_run(payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.stencils.library import get_benchmark

    plan = _compiled_plan(payload)
    grid = get_benchmark(payload["stencil"]).make_grid(
        tuple(payload["shape"]), seed=payload["seed"]
    )
    backend = payload.get("backend", "auto")
    values = plan.run(grid, payload["steps"], backend=None if backend == "auto" else backend)
    return {"values": values, "backend": backend}


def _execute_study(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A whole study in one worker (the server shards instead when it can)."""
    from repro.service.protocol import expand_study_cells

    rows = _execute_study_shard(dict(payload, cells=expand_study_cells(payload)))
    return {"rows": rows["rows"], "cells": len(rows["rows"])}


def _execute_study_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """One contiguous chunk of a study's cells (an internal job kind)."""
    rows = []
    for cell in payload["cells"]:
        row = _estimate_cell(
            _WORKER_CACHE,
            payload["stencil"],
            cell["method"],
            cell["isa"],
            cell["m"],
            payload["shape"],
            payload["time_steps"],
            payload["cores"],
        )
        rows.append({"index": cell["index"], **row})
    return {"rows": rows}


def _execute_tune(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A whole staged search in one worker (the server shards when it can)."""
    from repro.autotune.tuner import execute_tune_payload

    return execute_tune_payload(payload, _WORKER_CACHE)


def _execute_tune_shard(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Predict stage over one chunk of a tune's candidates (internal kind)."""
    from repro.autotune.tuner import predict_candidate_rows

    rows = predict_candidate_rows(payload, payload["candidates"], _WORKER_CACHE)
    return {"rows": rows}


def _execute_tune_measure(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Measure stage over the pruned selection (internal kind, one job)."""
    from repro.autotune.tuner import measure_ledger_rows

    rows = measure_ledger_rows(payload, payload["rows"], _WORKER_CACHE)
    return {"rows": rows}


_HANDLERS = {
    "plan": _execute_plan,
    "estimate": _execute_estimate,
    "simulate": _execute_simulate,
    "run": _execute_run,
    "study": _execute_study,
    "study-shard": _execute_study_shard,
    "tune": _execute_tune,
    "tune-shard": _execute_tune_shard,
    "tune-measure": _execute_tune_measure,
}


# --------------------------------------------------------------------------- #
# the pool
# --------------------------------------------------------------------------- #
class WorkerPool:
    """Job executor with layered crash resilience and an inline fallback.

    ``workers >= 1`` runs jobs on a ``ProcessPoolExecutor`` (``fork`` where
    available, so workers inherit the warm NumPy import); ``workers == 0``
    runs them on a small thread pool in-process — no isolation, but no spawn
    cost either, which is what unit tests and single-user deployments want.

    ``retry``/``breaker``/``quarantine`` default to sensible production
    policies; tests inject seeded/fake-clock instances plus ``sleep`` /
    ``async_sleep`` doubles to stay wall-clock-free.
    """

    def __init__(
        self,
        workers: int = 2,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        quarantine: Optional[PoisonQuarantine] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        async_sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = int(workers)
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=2)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.quarantine = quarantine if quarantine is not None else PoisonQuarantine()
        # Deterministic by default: backoff trajectories replay across runs.
        self._rng = rng if rng is not None else random.Random(0x5EED)
        self._sleep = sleep
        self._async_sleep = async_sleep
        self._lock = threading.Lock()
        self._generation = 0
        self._rebuilds = 0
        self._retries = 0
        self._crashes = 0
        self._fallback_jobs = 0
        self._executor = self._make_executor()
        self._fallback: Optional[ThreadPoolExecutor] = None

    def _make_executor(self):
        if self.workers == 0:
            return ThreadPoolExecutor(max_workers=4, thread_name_prefix="repro-service-inline")
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            context = multiprocessing.get_context()
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=context)

    def _fallback_executor(self) -> ThreadPoolExecutor:
        """The degraded path the breaker fails over to (lazily built)."""
        if self._fallback is None:
            self._fallback = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-service-fallback"
            )
        return self._fallback

    def _submit(self, payload: Dict[str, Any]) -> Tuple[Future, bool]:
        """Pick the executor, attach any fault directive, submit.

        Returns ``(future, used_fallback)``.  Both fault sites fire here,
        on the submitting side, so schedules stay single-counter even with
        forked workers.
        """
        injector = faults.get()
        injector.inject("pool.submit", context=payload)  # may raise InjectedCrash
        with self._lock:
            degraded = self.workers > 0 and not self.breaker.allow_primary()
            executor = self._fallback_executor() if degraded else self._executor
            mode = "inline" if (self.workers == 0 or degraded) else "process"
            rule = injector.decide("worker.execute", context=payload)
            if rule is not None and rule.kind in ("crash", "delay"):
                payload = dict(
                    payload,
                    __fault__={"kind": rule.kind, "seconds": rule.seconds, "mode": mode},
                )
            if degraded:
                self._fallback_jobs += 1
            return executor.submit(execute_payload, payload), degraded

    def _rebuild(self, broken_generation: int) -> None:
        """Replace a broken executor exactly once per breakage."""
        with self._lock:
            if self._generation != broken_generation:
                return  # another job's retry already rebuilt it
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._executor = self._make_executor()
            self._generation += 1
            self._rebuilds += 1

    # ------------------------------------------------------------------ #
    # crash bookkeeping shared by the sync and async run loops
    # ------------------------------------------------------------------ #
    def _check_quarantine(self, key: Optional[str], payload: Dict[str, Any]) -> None:
        if key and self.quarantine.is_quarantined(key):
            raise ServiceError(
                "quarantined",
                f"payload {key[:12]}… repeatedly killed workers and is quarantined "
                f"({payload.get('kind')!r}); it will not be retried",
                status=422,
            )

    def _note_crash(self, key: Optional[str], used_fallback: bool, generation: int) -> None:
        """Rebuild (primary path only), feed the breaker, charge the key."""
        with self._lock:
            self._crashes += 1
        if self.workers > 0 and not used_fallback:
            self._rebuild(generation)
        self.breaker.record_failure()
        if key and self.quarantine.record_crash(key):
            raise ServiceError(
                "quarantined",
                f"payload {key[:12]}… killed its worker "
                f"{self.quarantine.threshold} time(s) and is now quarantined",
                status=422,
            )

    def _crash_error(
        self, payload: Dict[str, Any], attempt: int, exc: BaseException
    ) -> ServiceError:
        return ServiceError(
            "worker-crash",
            f"worker died executing {payload.get('kind')!r} "
            f"({attempt} attempt(s)): {exc!r}",
            status=500,
        )

    def _attempt_budget(self, retries: Optional[int]) -> int:
        # Back-compat: callers passing the old retries=N mean N+1 attempts.
        return self.retry.max_attempts if retries is None else max(1, int(retries) + 1)

    async def run(
        self, payload: Dict[str, Any], retries: Optional[int] = None, key: Optional[str] = None
    ) -> Dict[str, Any]:
        """Execute ``payload`` on the pool under the full resilience policy.

        Raises :class:`ServiceError` ``worker-crash`` when the retry budget
        is exhausted and ``quarantined`` when the payload's key has crashed
        workers past the quarantine threshold; other exceptions propagate
        unchanged (they are execution errors, not infrastructure).
        """
        self._check_quarantine(key, payload)
        attempts = self._attempt_budget(retries)
        attempt = 0
        delay: Optional[float] = None
        while True:
            with self._lock:
                generation = self._generation
            used_fallback = False
            try:
                future, used_fallback = self._submit(payload)
                result = await asyncio.wrap_future(future)
                if not used_fallback:
                    self.breaker.record_success()
                return result
            except CRASH_EXCEPTIONS as exc:
                attempt += 1
                self._note_crash(key, used_fallback, generation)
                if attempt >= attempts:
                    raise self._crash_error(payload, attempt, exc) from exc
                with self._lock:
                    self._retries += 1
                delay = self.retry.next_delay(delay, self._rng)
                await self._async_sleep(delay)

    def run_sync(
        self, payload: Dict[str, Any], retries: Optional[int] = None, key: Optional[str] = None
    ) -> Dict[str, Any]:
        """Blocking form of :meth:`run` for non-async callers (tests, tools)."""
        self._check_quarantine(key, payload)
        attempts = self._attempt_budget(retries)
        attempt = 0
        delay: Optional[float] = None
        while True:
            with self._lock:
                generation = self._generation
            used_fallback = False
            try:
                future, used_fallback = self._submit(payload)
                result = future.result()
                if not used_fallback:
                    self.breaker.record_success()
                return result
            except CRASH_EXCEPTIONS as exc:
                attempt += 1
                self._note_crash(key, used_fallback, generation)
                if attempt >= attempts:
                    raise self._crash_error(payload, attempt, exc) from exc
                with self._lock:
                    self._retries += 1
                delay = self.retry.next_delay(delay, self._rng)
                self._sleep(delay)

    async def run_study(
        self,
        payload: Dict[str, Any],
        cells: Sequence[Dict[str, Any]],
        shards: int,
        key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Shard a study's cells across the pool and merge rows in order."""
        from repro.service.protocol import shard_cells

        chunks = shard_cells(cells, shards)
        if len(chunks) <= 1:
            return await self.run(dict(payload, kind="study"), key=key)
        jobs = [
            self.run(dict(payload, kind="study-shard", cells=chunk), key=key)
            for chunk in chunks
        ]
        merged: List[Optional[Dict[str, Any]]] = [None] * len(cells)
        for shard_result in await asyncio.gather(*jobs):
            for row in shard_result["rows"]:
                merged[row["index"]] = row
        rows = [row for row in merged if row is not None]
        # Same shape as the unsharded path: the response must not depend on
        # how many workers happened to split the study.
        return {"rows": rows, "cells": len(rows)}

    async def run_tune(
        self,
        payload: Dict[str, Any],
        candidates: Sequence[Dict[str, Any]],
        shards: int,
        key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run the staged search with the predict stage sharded over the pool.

        The prune stage is a pure function of the merged predicted rows, so
        it runs here on the submitting side; the surviving selection (at most
        ``budget`` rows) is measured in a single worker job to keep timing
        off the event loop.  The assembled response is byte-identical in
        shape to the unsharded ``tune`` handler's.
        """
        from repro.autotune.tuner import assemble_tune_response, prune_rows
        from repro.service.protocol import shard_cells

        chunks = shard_cells(candidates, shards)
        if len(chunks) <= 1:
            return await self.run(dict(payload, kind="tune"), key=key)
        jobs = [
            self.run(dict(payload, kind="tune-shard", candidates=chunk), key=key)
            for chunk in chunks
        ]
        merged: List[Optional[Dict[str, Any]]] = [None] * len(candidates)
        for shard_result in await asyncio.gather(*jobs):
            for row in shard_result["rows"]:
                merged[row["index"]] = row
        rows = [row for row in merged if row is not None]
        selected = prune_rows(rows, int(payload["budget"]), payload["objective"])
        if selected:
            measured = await self.run(
                dict(payload, kind="tune-measure", rows=selected), key=key
            )
            by_index = {row["index"]: row for row in measured["rows"]}
            rows = [by_index.get(row["index"], row) for row in rows]
        return assemble_tune_response(payload, rows)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def resilience_stats(self) -> Dict[str, Any]:
        """Counters for the ``/v1/stats`` resilience block."""
        with self._lock:
            counters = {
                "rebuilds": self._rebuilds,
                "retries": self._retries,
                "crashes": self._crashes,
                "fallback_jobs": self._fallback_jobs,
            }
        return {
            "pool": counters,
            "breaker": self.breaker.stats(),
            "quarantine": self.quarantine.stats(),
            "retry_policy": {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "max_delay": self.retry.max_delay,
            },
        }

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            if self._fallback is not None:
                self._fallback.shutdown(wait=wait, cancel_futures=not wait)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "inline" if self.workers == 0 else f"{self.workers} processes"
        return f"WorkerPool({mode}, breaker={self.breaker.state})"
