"""JSON-safe encoding of the values the service computes and stores.

The persistent result store (:mod:`repro.service.store`) and the HTTP wire
format both carry plain JSON, but the pipeline's values are richer: NumPy
arrays (simulated grids), ``repro`` dataclasses
(:class:`~repro.perfmodel.costmodel.PerformanceEstimate`,
:class:`~repro.simd.machine.InstructionCounts`, ...), tuples and nested
containers.  :func:`encode` maps any such value onto a JSON-ready structure
with tagged escapes, and :func:`decode` inverts it **bit-identically** for
floats and arrays — which is what makes "the same request returns the same
bytes, whether computed or replayed from the store" testable.

Two array transports exist:

* inline — the array's raw bytes, base64, inside the JSON (the wire format);
* sidecar — the array lands in a ``.npz`` next to the JSON blob and the JSON
  holds only a reference (the store format for large grids, so the hot path
  never base64s megabytes).

Dataclasses are encoded by qualified name and re-instantiated on decode;
only classes from ``repro.*`` modules are honoured, so a store blob cannot
instruct the decoder to build arbitrary objects.
"""

from __future__ import annotations

import base64
import dataclasses
import enum
import importlib
from typing import Any, Dict, List, Optional

import numpy as np

from repro.service import faults

__all__ = ["encode", "decode", "UnserialisableValue"]

#: Arrays at or above this many bytes go to the ``.npz`` sidecar when one is
#: offered; smaller ones are inlined (a sidecar round-trip costs a file).
SIDECAR_THRESHOLD_BYTES = 2048

#: Escape tag — a plain dict that happens to carry this key is itself
#: escaped, so user payloads cannot collide with the tagged forms.
TAG = "__repro__"


class UnserialisableValue(TypeError):
    """Raised when a value has no JSON-safe encoding (e.g. an open handle)."""


def encode(value: Any, arrays: Optional[List[np.ndarray]] = None) -> Any:
    """Return a JSON-ready structure identifying ``value``.

    ``arrays`` — when given, large ndarrays are appended to it and encoded
    as sidecar references ``{"__repro__": "npz", "index": i}``; the caller
    owns writing them (``np.savez`` with keys ``arr_<i>``).  Without it,
    every array is inlined as base64.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return {TAG: "npscalar", "dtype": value.dtype.str, "value": value.item()}
    if isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        if arrays is not None and contiguous.nbytes >= SIDECAR_THRESHOLD_BYTES:
            arrays.append(contiguous)
            return {TAG: "npz", "index": len(arrays) - 1}
        return {
            TAG: "ndarray",
            "dtype": contiguous.dtype.str,
            "shape": list(contiguous.shape),
            "b64": base64.b64encode(contiguous.tobytes()).decode("ascii"),
        }
    if isinstance(value, enum.Enum):
        cls = type(value)
        if not cls.__module__.startswith("repro."):
            raise UnserialisableValue(f"refusing to serialise non-repro enum {cls.__qualname__!r}")
        return {
            TAG: "enum",
            "class": f"{cls.__module__}:{cls.__qualname__}",
            "name": value.name,
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if not cls.__module__.startswith("repro."):
            raise UnserialisableValue(
                f"refusing to serialise non-repro dataclass {cls.__qualname__!r}"
            )
        return {
            TAG: "dataclass",
            "class": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode(getattr(value, f.name), arrays)
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [encode(v, arrays) for v in value]}
    if isinstance(value, list):
        return [encode(v, arrays) for v in value]
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for k, v in value.items():
            if not isinstance(k, str):
                return {
                    TAG: "dict",
                    "items": [[encode(k, arrays), encode(v, arrays)] for k, v in value.items()],
                }
            out[k] = encode(v, arrays)
        if TAG in out:
            return {TAG: "escaped", "value": out}
        return out
    raise UnserialisableValue(f"no JSON encoding for {type(value).__qualname__}")


def decode(payload: Any, arrays: Optional[Dict[str, np.ndarray]] = None) -> Any:
    """Invert :func:`encode`.

    ``arrays`` maps sidecar keys (``arr_<i>``) to loaded ndarrays; required
    only for payloads encoded with a sidecar.
    """
    # Chaos hook: one fault-site invocation per top-level decode, never per
    # recursion step (the recursion depth would make schedules unreadable).
    faults.get().inject("serial.decode")
    return _decode(payload, arrays)


def _decode(payload: Any, arrays: Optional[Dict[str, np.ndarray]] = None) -> Any:
    if isinstance(payload, list):
        return [_decode(v, arrays) for v in payload]
    if not isinstance(payload, dict):
        return payload
    tag = payload.get(TAG)
    if tag is None:
        return {k: _decode(v, arrays) for k, v in payload.items()}
    if tag == "escaped":
        return {k: _decode(v, arrays) for k, v in payload["value"].items()}
    if tag == "tuple":
        return tuple(_decode(v, arrays) for v in payload["items"])
    if tag == "dict":
        return {_decode(k, arrays): _decode(v, arrays) for k, v in payload["items"]}
    if tag == "npscalar":
        return np.dtype(payload["dtype"]).type(payload["value"])
    if tag == "ndarray":
        raw = base64.b64decode(payload["b64"])
        return np.frombuffer(raw, dtype=np.dtype(payload["dtype"])).reshape(payload["shape"]).copy()
    if tag == "npz":
        if arrays is None:
            raise UnserialisableValue("payload references a sidecar but none was loaded")
        return arrays[f"arr_{payload['index']}"]
    if tag == "enum":
        return _resolve_repro_class(payload["class"])[payload["name"]]
    if tag == "dataclass":
        cls = _resolve_repro_class(payload["class"])
        fields = {k: _decode(v, arrays) for k, v in payload["fields"].items()}
        return cls(**fields)
    raise UnserialisableValue(f"unknown serialisation tag {tag!r}")


def _resolve_repro_class(spec: str) -> Any:
    """``"module:QualName"`` → the class, restricted to ``repro.*`` modules."""
    module_name, _, qualname = spec.partition(":")
    if not module_name.startswith("repro."):
        raise UnserialisableValue(f"refusing to decode class from {module_name!r}")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj
