"""Backpressure primitives: priority admission queue, histograms, counters.

Under heavy traffic the service must (a) keep cheap requests responsive
while cold ``simulate``/``study`` jobs grind, and (b) shed load instead of
building an unbounded backlog.  Both live here:

* :class:`AdmissionQueue` — a bounded two-priority queue.  Cheap requests
  (``plan``/``estimate`` and anything already known to be cached) are
  admitted at priority 0 and overtake expensive cold jobs at priority 1;
  a full queue rejects immediately (``overloaded``) — the client retries,
  the server never falls behind.
* :class:`LatencyHistogram` — fixed log₂ buckets in milliseconds, cheap to
  update, meaningful in a ``/stats`` JSON dump.
* :class:`ServiceStats` — per-kind request counters plus gauges, the single
  source for the ``/stats`` endpoint.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "PRIORITY_CHEAP",
    "PRIORITY_EXPENSIVE",
    "AdmissionQueue",
    "LatencyHistogram",
    "ServiceStats",
]

PRIORITY_CHEAP = 0
PRIORITY_EXPENSIVE = 1


class AdmissionQueue:
    """Bounded priority queue with non-blocking admission.

    Entries are ``(priority, seq, item)``: the sequence number keeps FIFO
    order within a priority class (``asyncio.PriorityQueue`` would otherwise
    compare the items themselves).
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._queue: asyncio.PriorityQueue = asyncio.PriorityQueue(maxsize)
        self._seq = itertools.count()

    def offer(self, item: Any, priority: int) -> bool:
        """Admit ``item`` or return ``False`` immediately (load shedding)."""
        try:
            self._queue.put_nowait((priority, next(self._seq), item))
        except asyncio.QueueFull:
            return False
        return True

    async def take(self) -> Any:
        """Next item, cheapest priority class first, FIFO within a class."""
        _, _, item = await self._queue.get()
        return item

    def task_done(self) -> None:
        self._queue.task_done()

    async def join(self) -> None:
        await self._queue.join()

    @property
    def depth(self) -> int:
        return self._queue.qsize()


class LatencyHistogram:
    """Log₂-bucketed latency histogram (milliseconds).

    Buckets: <1ms, <2ms, <4ms, ... <2¹⁴ms (~16s), plus an overflow bucket.
    Thread-safe — request completions land from the event loop, snapshots
    from wherever ``/stats`` is being rendered.
    """

    BUCKETS = 15  # 2^0 .. 2^14 ms, then +inf

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (self.BUCKETS + 1)
        self._total_ms = 0.0
        self._observations = 0

    def observe(self, seconds: float) -> None:
        ms = max(0.0, seconds * 1000.0)
        bucket = 0
        bound = 1.0
        while ms >= bound and bucket < self.BUCKETS:
            bucket += 1
            bound *= 2.0
        with self._lock:
            self._counts[bucket] += 1
            self._total_ms += ms
            self._observations += 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total_ms = self._total_ms
            observations = self._observations
        buckets = {}
        bound = 1
        for count in counts[: self.BUCKETS]:
            buckets[f"<{bound}ms"] = count
            bound *= 2
        buckets["+inf"] = counts[self.BUCKETS]
        return {
            "count": observations,
            "mean_ms": (total_ms / observations) if observations else 0.0,
            "buckets": buckets,
        }


class ServiceStats:
    """Per-kind request accounting plus service-level gauges."""

    #: Outcome counters tracked per request kind.
    OUTCOMES = (
        "received",
        "completed",
        "errors",
        "shed",
        "timeouts",
        "memory_hits",
        "store_hits",
        "computed",
        "deduplicated",
        "quarantined",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, Dict[str, int]] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self.started_at: Optional[float] = None

    def count(self, kind: str, outcome: str, n: int = 1) -> None:
        assert outcome in self.OUTCOMES, outcome
        with self._lock:
            per_kind = self._counts.setdefault(kind, dict.fromkeys(self.OUTCOMES, 0))
            per_kind[outcome] += n

    def observe_latency(self, kind: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(kind)
            if histogram is None:
                histogram = self._histograms[kind] = LatencyHistogram()
        histogram.observe(seconds)

    def totals(self) -> Dict[str, int]:
        with self._lock:
            totals = dict.fromkeys(self.OUTCOMES, 0)
            for per_kind in self._counts.values():
                for outcome, value in per_kind.items():
                    totals[outcome] += value
            return totals

    def hit_rate(self) -> float:
        """Fraction of completed requests served from memory or store."""
        totals = self.totals()
        completed = totals["completed"]
        if not completed:
            return 0.0
        return (totals["memory_hits"] + totals["store_hits"]) / completed

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            counts = {kind: dict(per_kind) for kind, per_kind in sorted(self._counts.items())}
            histograms = dict(self._histograms)
        return {
            "requests": counts,
            "totals": self.totals(),
            "hit_rate": self.hit_rate(),
            "latency_ms": {kind: h.to_dict() for kind, h in sorted(histograms.items())},
        }


def classify_priority(expensive: bool, cached: bool) -> Tuple[int, str]:
    """Priority class for a request: cached or cheap work jumps the queue."""
    if cached or not expensive:
        return PRIORITY_CHEAP, "cheap"
    return PRIORITY_EXPENSIVE, "expensive"
