"""Deterministic, seeded fault injection for the compute service.

Chaos testing is only useful when a failing run can be *replayed*: the same
seed and schedule must provoke the same faults at the same points, every
time, in any process.  This module provides that determinism:

* A :class:`FaultInjector` holds a ``seed`` and a list of :class:`FaultRule`
  entries.  Every instrumented call site (``worker.execute``,
  ``pool.submit``, ``store.read``, ``store.write``, ``serial.decode``,
  ``server.dispatch``, ``client.request``) asks the injector for a decision;
  the injector keeps a per-site invocation counter and decides purely from
  ``(seed, site, invocation_index, rule)`` — no wall clock, no global RNG —
  so a schedule is a pure function of the call sequence.
* Rules select invocations explicitly (``at``), periodically (``every`` /
  ``phase``) or by a deterministic pseudo-random ``rate`` (a SHA-256 of the
  decision coordinates, *not* ``random``), optionally filtered by a
  ``where`` context match (e.g. only ``estimate`` payloads) and capped by
  ``max_fires``.
* Every injected fault is appended to a bounded in-memory log; the log and
  per-site counters surface in ``/v1/stats`` under ``"faults"`` and are the
  artifact ``benchmarks/chaos_smoke.py`` uploads in CI.

The injector is **disabled by default** and costs one attribute check per
site when disabled.  Enable it by installing a configured injector
(:func:`install`), normally via
:class:`~repro.service.server.ServiceConfig.faults`.

Fault kinds (sites interpret the subset that makes sense for them):

``crash``
    Raise :class:`InjectedCrash` (worker processes translate it into a hard
    ``os._exit`` — indistinguishable from a segfault).
``delay``
    Sleep ``seconds`` (through the injector's injectable sleep).
``corrupt-bytes``
    Flip one deterministic byte of the payload (``corrupt`` sites).
``partial-write``
    Truncate the payload to a deterministic prefix (``corrupt`` sites).
``connection-reset``
    Raise :class:`InjectedConnectionReset` (an ``OSError`` subclass, so
    transports handle it exactly like a peer reset).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SITES",
    "FAULT_KINDS",
    "InjectedFault",
    "InjectedCrash",
    "InjectedConnectionReset",
    "FaultRule",
    "FaultInjector",
    "get",
    "install",
    "deactivate",
]

#: The instrumented call sites, in stack order.
SITES = (
    "client.request",
    "server.dispatch",
    "pool.submit",
    "worker.execute",
    "store.read",
    "store.write",
    "serial.decode",
)

FAULT_KINDS = ("crash", "delay", "corrupt-bytes", "partial-write", "connection-reset")

#: Log entries kept in memory (oldest dropped beyond this).
LOG_CAP = 1000


class InjectedFault(RuntimeError):
    """Base class of every injector-raised failure."""


class InjectedCrash(InjectedFault):
    """A fault standing in for a dead worker / broken executor."""


class InjectedConnectionReset(ConnectionResetError, InjectedFault):
    """A fault standing in for a peer-reset connection (an ``OSError``)."""


@dataclass(frozen=True)
class FaultRule:
    """One schedule entry: *where* and *when* to inject *what*.

    Selection (any combination; a rule fires when **all** its configured
    selectors agree):

    ``at``
        Explicit invocation indices (0-based, per site).
    ``every`` / ``phase``
        Periodic: fire when ``index % every == phase``.
    ``rate``
        Deterministic pseudo-random fraction of invocations, decided by
        hashing ``(seed, site, index, rule_index)`` — replayable, unlike
        ``random.random()``.
    ``where``
        Context filter: every key must equal the call site's context value
        (worker sites pass the job payload, so ``{"kind": "estimate"}`` or
        ``{"m": 7}`` scope a fault to matching requests).
    ``max_fires``
        Stop after this many injections from this rule.
    """

    site: str
    kind: str
    at: Optional[Tuple[int, ...]] = None
    every: Optional[int] = None
    phase: int = 0
    rate: Optional[float] = None
    where: Optional[Mapping[str, Any]] = None
    seconds: float = 0.0
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.every is not None and self.every < 1:
            raise ValueError("'every' must be >= 1")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError("'rate' must lie in [0, 1]")
        if self.at is not None:
            object.__setattr__(self, "at", tuple(int(i) for i in self.at))
        if self.at is None and self.every is None and self.rate is None and self.where is None:
            # A rule with no selector would fire on every invocation of the
            # site implicitly; require the schedule to say so explicitly
            # (``every=1``) so specs read as schedules, not accidents.
            raise ValueError("a fault rule needs a selector: at, every, rate or where")

    def to_spec(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"site": self.site, "kind": self.kind}
        if self.at is not None:
            spec["at"] = list(self.at)
        if self.every is not None:
            spec["every"] = self.every
            if self.phase:
                spec["phase"] = self.phase
        if self.rate is not None:
            spec["rate"] = self.rate
        if self.where is not None:
            spec["where"] = dict(self.where)
        if self.seconds:
            spec["seconds"] = self.seconds
        if self.max_fires is not None:
            spec["max_fires"] = self.max_fires
        return spec

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "FaultRule":
        known = {"site", "kind", "at", "every", "phase", "rate", "where", "seconds", "max_fires"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown fault rule fields: {sorted(unknown)}")
        return cls(
            site=spec["site"],
            kind=spec["kind"],
            at=tuple(spec["at"]) if "at" in spec else None,
            every=spec.get("every"),
            phase=int(spec.get("phase", 0)),
            rate=spec.get("rate"),
            where=dict(spec["where"]) if "where" in spec else None,
            seconds=float(spec.get("seconds", 0.0)),
            max_fires=spec.get("max_fires"),
        )


def _context_matches(
    where: Optional[Mapping[str, Any]], context: Optional[Mapping[str, Any]]
) -> bool:
    if where is None:
        return True
    if context is None:
        return False
    return all(context.get(k) == v for k, v in where.items())


class FaultInjector:
    """Seeded, replayable fault scheduler (thread-safe).

    One injector is installed process-wide (:func:`install`); instrumented
    call sites consult it through :func:`get`.  Worker *processes* never
    consult their own copy for scheduling — the pool decides faults on the
    submitting side and ships a directive inside the payload, so the whole
    schedule unfolds in one process's counters and is replayable even
    across pool rebuilds.
    """

    def __init__(
        self,
        seed: int = 0,
        rules: Sequence[FaultRule] = (),
        enabled: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.seed = int(seed)
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.enabled = bool(enabled) and bool(self.rules)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._injected: Dict[str, Dict[str, int]] = {}
        self._fires: Dict[int, int] = {}
        self._log: List[Dict[str, Any]] = []
        self._log_total = 0

    # ------------------------------------------------------------------ #
    # construction from / to JSON specs
    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(
        cls, spec: Mapping[str, Any], sleep: Callable[[float], None] = time.sleep
    ) -> "FaultInjector":
        """Build an injector from a JSON-ready ``{"seed":…, "rules":[…]}``."""
        known = {"seed", "rules", "enabled"}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown fault spec fields: {sorted(unknown)}")
        rules = tuple(FaultRule.from_spec(r) for r in spec.get("rules", ()))
        return cls(
            seed=int(spec.get("seed", 0)),
            rules=rules,
            enabled=bool(spec.get("enabled", True)),
            sleep=sleep,
        )

    def to_spec(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "enabled": self.enabled,
            "rules": [rule.to_spec() for rule in self.rules],
        }

    # ------------------------------------------------------------------ #
    # the decision core
    # ------------------------------------------------------------------ #
    def _hash_fraction(self, site: str, index: int, rule_index: int) -> float:
        token = f"{self.seed}|{site}|{index}|{rule_index}".encode()
        digest = hashlib.sha256(token).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, site: str, context: Optional[Mapping[str, Any]] = None) -> Optional[FaultRule]:
        """Advance ``site``'s invocation counter and pick the firing rule.

        Returns ``None`` (the overwhelmingly common case) or the first rule
        whose selectors all match this invocation.  Disabled injectors are
        complete no-ops: no counters, no log.
        """
        rule, _ = self._decide(site, context)
        return rule

    def _decide(
        self, site: str, context: Optional[Mapping[str, Any]] = None
    ) -> Tuple[Optional[FaultRule], int]:
        if not self.enabled:
            return None, -1
        with self._lock:
            index = self._invocations.get(site, 0)
            self._invocations[site] = index + 1
            for rule_index, rule in enumerate(self.rules):
                if rule.site != site:
                    continue
                if rule.max_fires is not None and self._fires.get(rule_index, 0) >= rule.max_fires:
                    continue
                if not _context_matches(rule.where, context):
                    continue
                if rule.at is not None and index not in rule.at:
                    continue
                if rule.every is not None and index % rule.every != rule.phase % rule.every:
                    continue
                if (
                    rule.rate is not None
                    and self._hash_fraction(site, index, rule_index) >= rule.rate
                ):
                    continue
                self._fires[rule_index] = self._fires.get(rule_index, 0) + 1
                self._injected.setdefault(site, {})
                self._injected[site][rule.kind] = self._injected[site].get(rule.kind, 0) + 1
                self._log_total += 1
                self._log.append(
                    {"site": site, "index": index, "kind": rule.kind, "rule": rule_index}
                )
                if len(self._log) > LOG_CAP:
                    del self._log[: len(self._log) - LOG_CAP]
                return rule, index
        return None, index

    # ------------------------------------------------------------------ #
    # acting entry points used by the call sites
    # ------------------------------------------------------------------ #
    def inject(self, site: str, context: Optional[Mapping[str, Any]] = None) -> None:
        """Control-flow faults: raise or delay; corrupt kinds are no-ops."""
        rule = self.decide(site, context)
        if rule is None:
            return
        if rule.kind == "delay":
            self._sleep(rule.seconds)
        elif rule.kind == "crash":
            raise InjectedCrash(f"injected crash at {site} (seed={self.seed})")
        elif rule.kind == "connection-reset":
            raise InjectedConnectionReset(f"injected connection reset at {site} (seed={self.seed})")

    def corrupt(self, site: str, data: bytes, context: Optional[Mapping[str, Any]] = None) -> bytes:
        """Byte-stream faults for read/write sites; may also raise/delay.

        ``corrupt-bytes`` flips one deterministically-chosen byte;
        ``partial-write`` keeps a deterministic prefix (at least dropping
        one byte).  Both are pure functions of ``(seed, site, index)``.
        """
        rule, index = self._decide(site, context)
        if rule is None or not data:
            return data
        fraction = self._hash_fraction(site, index, -1)
        if rule.kind == "corrupt-bytes":
            position = int(fraction * len(data)) % len(data)
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            return bytes(corrupted)
        if rule.kind == "partial-write":
            keep = min(len(data) - 1, int(fraction * len(data)))
            return data[: max(0, keep)]
        if rule.kind == "delay":
            self._sleep(rule.seconds)
            return data
        if rule.kind == "crash":
            raise InjectedCrash(f"injected crash at {site} (seed={self.seed})")
        if rule.kind == "connection-reset":
            raise InjectedConnectionReset(f"injected connection reset at {site} (seed={self.seed})")
        return data

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def snapshot_log(self) -> List[Dict[str, Any]]:
        """The injected-fault sequence (bounded to the last ``LOG_CAP``)."""
        with self._lock:
            return [dict(event) for event in self._log]

    def stats(self) -> Dict[str, Any]:
        """Per-site accounting for ``/v1/stats`` and chaos artifacts."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "seed": self.seed,
                "rules": len(self.rules),
                "invocations": dict(sorted(self._invocations.items())),
                "injected": {site: dict(kinds) for site, kinds in sorted(self._injected.items())},
                "total_injected": self._log_total,
            }

    def reset_counters(self) -> None:
        """Zero every counter and the log (the rules and seed stay)."""
        with self._lock:
            self._invocations.clear()
            self._injected.clear()
            self._fires.clear()
            self._log.clear()
            self._log_total = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"FaultInjector(seed={self.seed}, rules={len(self.rules)}, {state})"


# --------------------------------------------------------------------------- #
# the process-global injector
# --------------------------------------------------------------------------- #
_DISABLED = FaultInjector(enabled=False)
_GLOBAL: FaultInjector = _DISABLED
_GLOBAL_LOCK = threading.Lock()


def get() -> FaultInjector:
    """The process-global injector (a disabled no-op by default)."""
    return _GLOBAL


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-global one; returns it for chaining.

    Call before building a :class:`~repro.service.workers.WorkerPool` so
    fault *directives* decided on the submitting side govern forked
    workers too.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = injector
    return injector


def deactivate() -> None:
    """Restore the disabled no-op injector (tests call this in teardown)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = _DISABLED
