"""``python -m repro.service`` — alias for the ``repro-serve`` entry point."""

from repro.service.server import main

if __name__ == "__main__":
    raise SystemExit(main())
