"""The asyncio compute service: front end, dispatcher and ``repro-serve``.

Request life cycle::

    HTTP POST /v1/requests ──▶ normalize ──▶ in-memory EvalCache peek ── hit ──▶ reply
                                  │ miss
                                  ▼
                        single-flight table (concurrent identical
                        requests coalesce onto one in-flight future)
                                  │ owner
                                  ▼
                        bounded priority queue  ── full ──▶ 503 overloaded
                        (cheap/cached requests jump cold simulate jobs)
                                  ▼
                        dispatcher: persistent ResultStore ── hit ──▶ promote + reply
                                  │ miss
                                  ▼
                        process-pool workers (study cross-products
                        sharded across workers) ──▶ store + memoize + reply

Per-request deadlines cover the whole journey: a request that expires while
queued is failed with a structured ``timeout`` error and its single-flight
cell is released, so a later identical request computes fresh — the cell is
never poisoned.  ``SIGTERM``/``SIGINT`` trigger a graceful drain: admission
stops (503 ``draining``), queued work finishes within the drain deadline,
then the sockets close.

``repro-serve`` (or ``python -m repro.service.server``) runs it standalone;
:func:`serve_background` embeds it for tests, benchmarks and examples.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.service import faults, serial
from repro.service.faults import FaultInjector
from repro.service.protocol import (
    Request,
    ServiceError,
    expand_study_cells,
    expand_tune_candidates,
    normalize,
)
from repro.service.resilience import CircuitBreaker, PoisonQuarantine, RetryPolicy
from repro.service.scheduling import AdmissionQueue, ServiceStats, classify_priority
from repro.service.store import DEFAULT_MAX_BYTES, STORE_VERSION, ResultStore
from repro.service.workers import WorkerPool
from repro.study.cache import EvalCache

__all__ = ["ServiceConfig", "StencilService", "serve_background", "main"]


@dataclass
class ServiceConfig:
    """Deployment knobs of one :class:`StencilService`.

    Attributes
    ----------
    host, port:
        TCP listen address; ``port=0`` binds an ephemeral port (tests).
    unix_socket:
        When set, listen on this Unix-domain socket instead of TCP.
    store_path:
        Root of the persistent :class:`~repro.service.store.ResultStore`.
    store_max_bytes:
        LRU size cap of the store.
    workers:
        Process-pool width; ``0`` executes jobs inline on threads.
    queue_size:
        Admission-queue bound — beyond it, requests are shed (503).
    concurrency:
        Dispatcher tasks pulling from the queue (defaults to the pool width,
        at least 2, so cheap requests are not stuck behind one cold job).
    request_timeout:
        Default and maximum per-request deadline, seconds.
    drain_timeout:
        How long a graceful shutdown waits for queued work.
    faults:
        Optional fault-injection spec (``{"seed": ..., "rules": [...]}``,
        :meth:`repro.service.faults.FaultInjector.from_spec`).  ``None``
        (default) leaves the process-global injector untouched — tests may
        have installed their own.
    retry_max_attempts, retry_base_delay, retry_max_delay:
        The worker tier's :class:`~repro.service.resilience.RetryPolicy`.
    breaker_threshold, breaker_window, breaker_cooldown:
        The pool's :class:`~repro.service.resilience.CircuitBreaker`:
        ``threshold`` crashes within ``window`` seconds open it; after
        ``cooldown`` seconds it half-opens for a trial job.
    quarantine_threshold:
        Worker-killing crashes per ``config_hash`` before the payload is
        refused with a structured ``quarantined`` error.
    watchdog_interval:
        How often the dispatcher watchdog checks for dead dispatcher tasks.
    retry_after_hint:
        ``Retry-After`` seconds attached to shed/draining 503 responses.
    """

    host: str = "127.0.0.1"
    port: int = 8750
    unix_socket: Optional[str] = None
    store_path: str = ".repro-store"
    store_max_bytes: int = DEFAULT_MAX_BYTES
    workers: int = 2
    queue_size: int = 64
    concurrency: Optional[int] = None
    request_timeout: float = 30.0
    drain_timeout: float = 10.0
    faults: Optional[Dict[str, Any]] = None
    retry_max_attempts: int = 3
    retry_base_delay: float = 0.02
    retry_max_delay: float = 0.25
    breaker_threshold: int = 3
    breaker_window: float = 30.0
    breaker_cooldown: float = 5.0
    quarantine_threshold: int = 2
    watchdog_interval: float = 0.25
    retry_after_hint: float = 1.0

    def dispatcher_count(self) -> int:
        if self.concurrency is not None:
            return max(1, int(self.concurrency))
        return max(2, self.workers)


class _Job:
    """One queued computation: the request plus its single-flight future."""

    __slots__ = ("request", "future", "deadline")

    def __init__(self, request: Request, future: "asyncio.Future", deadline: float):
        self.request = request
        self.future = future
        self.deadline = deadline

    def __lt__(self, other: "_Job") -> bool:  # pragma: no cover - tie-break only
        return id(self) < id(other)


class StencilService:
    """The long-running service; create, :meth:`start`, :meth:`shutdown`."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        # Install the chaos schedule FIRST: the worker pool forks its
        # processes lazily, but any directive-carrying payload depends on the
        # submitting side's injector, which must be this one.
        if config.faults is not None:
            faults.install(FaultInjector.from_spec(config.faults))
        self.store = ResultStore(config.store_path, max_bytes=config.store_max_bytes)
        #: In-memory response tier; the persistent store sits underneath it
        #: (peek here first, fall through to :attr:`store` in the dispatcher).
        self.memo = EvalCache()
        self.pool = WorkerPool(
            config.workers,
            retry=RetryPolicy(
                max_attempts=config.retry_max_attempts,
                base_delay=config.retry_base_delay,
                max_delay=config.retry_max_delay,
            ),
            breaker=CircuitBreaker(
                threshold=config.breaker_threshold,
                window=config.breaker_window,
                cooldown=config.breaker_cooldown,
            ),
            quarantine=PoisonQuarantine(threshold=config.quarantine_threshold),
        )
        self.stats = ServiceStats()
        self.queue = AdmissionQueue(config.queue_size)
        self._inflight: Dict[str, asyncio.Future] = {}
        self._dispatchers: List[asyncio.Task] = []
        self._watchdog: Optional[asyncio.Task] = None
        self._dispatcher_restarts = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._closed = asyncio.Event()
        self.started_at = time.time()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the socket and start the dispatcher tasks + watchdog."""
        for _ in range(self.config.dispatcher_count()):
            self._dispatchers.append(asyncio.create_task(self._dispatch_loop()))
        self._watchdog = asyncio.create_task(self._watchdog_loop())
        if self.config.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_socket
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )

    @property
    def address(self) -> str:
        """``host:port`` (TCP) or the socket path actually bound."""
        if self.config.unix_socket:
            return self.config.unix_socket
        assert self._server is not None and self._server.sockets
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admission, optionally drain queued work, close everything."""
        if self._draining and self._closed.is_set():
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if drain:
            try:
                await asyncio.wait_for(self.queue.join(), timeout=self.config.drain_timeout)
            except asyncio.TimeoutError:
                pass  # deadline wins; remaining jobs fail with cancellation
        if self._watchdog is not None:
            self._watchdog.cancel()
        for task in self._dispatchers:
            task.cancel()
        for future in list(self._inflight.values()):
            if not future.done():
                future.set_exception(
                    ServiceError("draining", "service shut down mid-request", status=503)
                )
        if self._server is not None:
            await self._server.wait_closed()
        self.pool.shutdown(wait=False)
        self._closed.set()

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # ------------------------------------------------------------------ #
    # request handling (transport independent)
    # ------------------------------------------------------------------ #
    async def handle_request(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """Process one request payload; returns ``(http_status, envelope)``.

        The envelope's ``result`` may contain NumPy arrays — the transport
        encodes them (:mod:`repro.service.serial`) just before the wire.
        """
        started = time.perf_counter()
        try:
            request = normalize(payload)
        except ServiceError as exc:
            self.stats.count("invalid", "received")
            self.stats.count("invalid", "errors")
            return exc.status, _error_envelope(None, exc)
        kind = request.kind
        self.stats.count(kind, "received")
        if self._draining:
            error = ServiceError(
                "draining",
                "service is draining; retry elsewhere",
                503,
                retry_after=self.config.retry_after_hint,
            )
            self.stats.count(kind, "shed")
            return error.status, _error_envelope(request, error)
        timeout = self._request_timeout(payload)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout

        while True:
            found, value = self.memo.peek(kind, request.key)
            if found:
                self.stats.count(kind, "memory_hits")
                return self._complete(request, value, "memory", started)

            future = self._inflight.get(request.key)
            owner = future is None
            if owner:
                future = loop.create_future()
                self._inflight[request.key] = future
                future.add_done_callback(lambda _f, key=request.key: self._inflight.pop(key, None))
                cached = self.store.contains(kind, request.key)
                priority, _ = classify_priority(request.expensive, cached)
                job = _Job(request, future, deadline=deadline)
                if not self.queue.offer(job, priority):
                    self.stats.count(kind, "shed")
                    future.cancel()
                    error = ServiceError(
                        "overloaded",
                        f"admission queue full ({self.queue.maxsize} deep); retry later",
                        status=503,
                        retry_after=self.config.retry_after_hint,
                    )
                    return error.status, _error_envelope(request, error)
            else:
                self.stats.count(kind, "deduplicated")

            try:
                value, served_from = await asyncio.wait_for(
                    asyncio.shield(future), deadline - loop.time()
                )
            except asyncio.TimeoutError:
                # This waiter gives up; a computation it merely rode keeps
                # running for its owner and still lands in the caches.
                self.stats.count(kind, "timeouts")
                error = ServiceError(
                    "timeout", f"request exceeded its {timeout:.3f}s deadline", status=504
                )
                return error.status, _error_envelope(request, error)
            except asyncio.CancelledError:
                error = ServiceError("overloaded", "request was cancelled by shedding", 503)
                return error.status, _error_envelope(request, error)
            except ServiceError as exc:
                # A rider can join a cell created under a *tighter* deadline
                # than its own moments before that cell expires.  Its budget
                # is still intact, so go around: the failed cell has been
                # released and the retry computes on a fresh one.
                if (
                    exc.code == "timeout"
                    and not owner
                    and loop.time() < deadline - 0.001
                    and not self._draining
                ):
                    await asyncio.sleep(0)  # let the done-callback pop the cell
                    continue
                if exc.code == "timeout":
                    self.stats.count(kind, "timeouts")
                elif exc.code == "quarantined":
                    self.stats.count(kind, "quarantined")
                    self.stats.count(kind, "errors")
                else:
                    self.stats.count(kind, "errors")
                return exc.status, _error_envelope(request, exc)
            return self._complete(request, value, served_from, started)

    def _request_timeout(self, payload: Any) -> float:
        timeout = self.config.request_timeout
        if isinstance(payload, dict):
            requested = payload.get("timeout")
            if isinstance(requested, (int, float)) and not isinstance(requested, bool):
                timeout = min(float(requested), self.config.request_timeout)
        return max(0.001, timeout)

    def _complete(
        self, request: Request, value: Any, served_from: str, started: float
    ) -> Tuple[int, Dict[str, Any]]:
        elapsed = time.perf_counter() - started
        self.stats.count(request.kind, "completed")
        self.stats.observe_latency(request.kind, elapsed)
        return 200, {
            "ok": True,
            "kind": request.kind,
            "key": request.key,
            "served_from": served_from,
            "elapsed_ms": elapsed * 1000.0,
            "result": value,
        }

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        while True:
            # Chaos hook, deliberately BEFORE take(): a dispatcher killed
            # here holds no job, so the watchdog restart loses nothing and
            # the no-hung-futures invariant survives dispatcher death.
            faults.get().inject("server.dispatch")
            job = await self.queue.take()
            try:
                await self._execute_job(job)
            except asyncio.CancelledError:
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError("draining", "service shut down mid-job", 503)
                    )
                raise
            except ServiceError as exc:
                if not job.future.done():
                    job.future.set_exception(exc)
            except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError("internal", f"unexpected failure: {exc!r}", 500)
                    )
            finally:
                self.queue.task_done()

    async def _execute_job(self, job: _Job) -> None:
        request, future = job.request, job.future
        if future.done():
            return
        loop = asyncio.get_running_loop()
        if loop.time() >= job.deadline:
            # Expired while queued: fail the cell and release it (the done
            # callback pops it), so the next identical request starts clean.
            future.set_exception(
                ServiceError("timeout", "request expired while queued", status=504)
            )
            self.stats.count(request.kind, "timeouts")
            return

        found, value = await loop.run_in_executor(None, self.store.load, request.kind, request.key)
        if found:
            self.memo.put(request.kind, request.key, value, persist=False)
            self.stats.count(request.kind, "store_hits")
            if not future.done():
                future.set_result((value, "store"))
            return

        remaining = job.deadline - loop.time()
        if remaining <= 0:
            future.set_exception(
                ServiceError("timeout", "request expired before compute", status=504)
            )
            self.stats.count(request.kind, "timeouts")
            return
        try:
            result = await asyncio.wait_for(self._compute(request), timeout=remaining)
        except asyncio.TimeoutError:
            self.stats.count(request.kind, "timeouts")
            if not future.done():
                future.set_exception(
                    ServiceError(
                        "timeout",
                        f"computation exceeded the request deadline "
                        f"({self._request_timeout(None):.3f}s default)",
                        status=504,
                    )
                )
            return
        except (ValueError, KeyError) as exc:
            raise ServiceError("execution-error", str(exc), status=422) from exc

        self.memo.put(request.kind, request.key, result, persist=False)
        self.stats.count(request.kind, "computed")
        await loop.run_in_executor(None, self.store.save, request.kind, request.key, result)
        if not future.done():
            future.set_result((result, "computed"))

    async def _compute(self, request: Request) -> Dict[str, Any]:
        """Run the request on the worker tier (sharding studies and tunes)."""
        shards = self.pool.workers if self.pool.workers > 0 else 1
        if request.kind == "study":
            cells = expand_study_cells(request.params)
            if shards > 1 and len(cells) > 1:
                return await self.pool.run_study(
                    dict(request.to_payload()), cells, shards, key=request.key
                )
        if request.kind == "tune":
            candidates = expand_tune_candidates(request.params)
            if shards > 1 and len(candidates) > 1:
                return await self.pool.run_tune(
                    dict(request.to_payload()), candidates, shards, key=request.key
                )
        return await self.pool.run(request.to_payload(), key=request.key)

    # ------------------------------------------------------------------ #
    # dispatcher watchdog
    # ------------------------------------------------------------------ #
    async def _watchdog_loop(self) -> None:
        """Replace dispatcher tasks that died (e.g. an injected crash).

        Dispatchers are designed never to die — the loop catches every
        job-level exception — so a dead one means a bug or a chaos fault.
        Either way the service must keep draining its queue.
        """
        while True:
            await asyncio.sleep(self.config.watchdog_interval)
            if self._draining:
                continue
            for i, task in enumerate(self._dispatchers):
                if task.done() and not task.cancelled():
                    self._dispatchers[i] = asyncio.create_task(self._dispatch_loop())
                    self._dispatcher_restarts += 1

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #
    def stats_payload(self) -> Dict[str, Any]:
        """The ``/stats`` document: queues, caches, store, workers, latency."""
        return {
            "service": self.stats.to_dict(),
            "queue": {"depth": self.queue.depth, "capacity": self.queue.maxsize},
            "inflight": len(self._inflight),
            "draining": self._draining,
            "uptime_seconds": time.time() - self.started_at,
            "cache": {
                "overall": self.memo.stats.to_dict(),
                "by_kind": {
                    kind: s.to_dict() for kind, s in self.memo.stats_by_kind().items()
                },
            },
            "store": {
                "version": STORE_VERSION,
                "path": str(self.store.dir),
                **self.store.stats.to_dict(),
            },
            "workers": {
                "processes": self.pool.workers,
                "mode": "inline" if self.pool.workers == 0 else "process-pool",
            },
            "resilience": {
                **self.pool.resilience_stats(),
                "dispatchers": {
                    "configured": self.config.dispatcher_count(),
                    "alive": sum(1 for t in self._dispatchers if not t.done()),
                    "restarts": self._dispatcher_restarts,
                },
            },
            # The injected-fault sequence rides along so a chaos artifact can
            # assert byte-for-byte replay across processes, not just counts.
            "faults": {**faults.get().stats(), "log": faults.get().snapshot_log()},
        }

    # ------------------------------------------------------------------ #
    # HTTP transport (deliberately minimal: one request per connection)
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._handle_http(reader)
        except Exception:
            error = {"code": "internal", "message": "bad request"}
            status, body = 500, {"ok": False, "error": error}
        try:
            encoded = json.dumps(serial.encode(body), sort_keys=True).encode()
            headers = (
                b"Content-Type: application/json\r\n"
                + b"Content-Length: %d\r\n" % len(encoded)
            )
            retry_after = None
            if isinstance(body, dict):
                error = body.get("error")
                if isinstance(error, dict):
                    retry_after = error.get("retry_after")
            if isinstance(retry_after, (int, float)):
                # HTTP wants integral seconds; never advertise zero.
                headers += b"Retry-After: %d\r\n" % max(1, int(retry_after))
            writer.write(
                b"HTTP/1.1 %d %s\r\n" % (status, _REASONS.get(status, b"OK"))
                + headers
                + b"Connection: close\r\n\r\n"
                + encoded
            )
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_http(self, reader: asyncio.StreamReader) -> Tuple[int, Dict[str, Any]]:
        request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, _http_error("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _http_error("bad Content-Length")
        if content_length > 32 * 1024 * 1024:
            return 413, _http_error("request body too large")
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and path in ("/healthz", "/v1/healthz"):
            return 200, {"ok": True, "draining": self._draining}
        if method == "GET" and path in ("/stats", "/v1/stats"):
            return 200, self.stats_payload()
        if method == "POST" and path in ("/v1/requests", "/requests"):
            try:
                payload = json.loads(body.decode("utf-8")) if body else None
            except (ValueError, UnicodeDecodeError):
                return 400, _http_error("request body is not valid JSON")
            return await self.handle_request(payload)
        return 404, _http_error(f"no route for {method} {path}")


_REASONS = {
    200: b"OK",
    400: b"Bad Request",
    404: b"Not Found",
    413: b"Payload Too Large",
    422: b"Unprocessable Entity",
    500: b"Internal Server Error",
    503: b"Service Unavailable",
    504: b"Gateway Timeout",
}


def _http_error(message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"code": "invalid-request", "message": message}}


def _error_envelope(request: Optional[Request], error: ServiceError) -> Dict[str, Any]:
    envelope: Dict[str, Any] = {"ok": False, "error": error.to_dict()}
    if request is not None:
        envelope["kind"] = request.kind
        envelope["key"] = request.key
    return envelope


# --------------------------------------------------------------------------- #
# embedding helper (tests, benchmarks, examples)
# --------------------------------------------------------------------------- #
@dataclass
class ServiceHandle:
    """A service running on a background thread, plus the means to stop it."""

    service: StencilService
    loop: asyncio.AbstractEventLoop
    thread: threading.Thread
    base_url: str = field(default="")

    def stop(self, drain: bool = True) -> None:
        if self.thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.service.shutdown(drain=drain), self.loop
            ).result(timeout=30)
            self.thread.join(timeout=30)


def serve_background(config: ServiceConfig) -> ServiceHandle:
    """Start a :class:`StencilService` on a daemon thread and wait until bound."""
    started = threading.Event()
    boot_error: List[BaseException] = []
    holder: Dict[str, Any] = {}

    def runner() -> None:
        async def boot() -> None:
            service = StencilService(config)
            try:
                await service.start()
            except BaseException as exc:
                boot_error.append(exc)
                started.set()
                return
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await service.wait_closed()

        asyncio.run(boot())

    thread = threading.Thread(target=runner, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=60):
        raise RuntimeError("service failed to start within 60s")
    if boot_error:
        raise RuntimeError(f"service failed to start: {boot_error[0]!r}")
    service: StencilService = holder["service"]
    if config.unix_socket:
        base_url = f"unix://{config.unix_socket}"
    else:
        base_url = f"http://{config.host}:{service.port}"
    return ServiceHandle(service=service, loop=holder["loop"], thread=thread, base_url=base_url)


# --------------------------------------------------------------------------- #
# repro-serve
# --------------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve plan/estimate/simulate/run/study requests over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8750)
    parser.add_argument(
        "--unix", default=None, metavar="PATH", help="listen on a Unix socket instead"
    )
    parser.add_argument(
        "--store",
        default=".repro-store",
        metavar="DIR",
        help="persistent result store root (default: .repro-store)",
    )
    parser.add_argument(
        "--store-cap-mb",
        type=int,
        default=DEFAULT_MAX_BYTES // (1024 * 1024),
        help="LRU size cap of the store in MiB",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes (0 = inline threads, no isolation)",
    )
    parser.add_argument("--queue-size", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=30.0, help="per-request deadline, seconds")
    parser.add_argument(
        "--drain-timeout", type=float, default=10.0, help="graceful shutdown budget"
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="SPEC.json",
        help="fault-injection schedule ({'seed':..., 'rules':[...]}) — chaos runs only",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="override the seed of the --faults schedule",
    )
    return parser


async def _serve(config: ServiceConfig) -> None:
    service = StencilService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(service.shutdown(drain=True))
            )
        except NotImplementedError:  # pragma: no cover - non-POSIX loops
            pass
    where = service.address if config.unix_socket else f"http://{service.address}"
    print(
        f"repro-serve listening on {where} "
        f"(store={service.store.dir}, workers={config.workers}, "
        f"queue={config.queue_size})",
        flush=True,
    )
    await service.wait_closed()
    print("repro-serve drained and stopped", flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point (``repro-serve``)."""
    args = _build_parser().parse_args(argv)
    fault_spec: Optional[Dict[str, Any]] = None
    if args.faults:
        fault_spec = json.loads(Path(args.faults).read_text())
        if args.fault_seed is not None:
            fault_spec["seed"] = args.fault_seed
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        unix_socket=args.unix,
        store_path=str(Path(args.store)),
        store_max_bytes=args.store_cap_mb * 1024 * 1024,
        workers=args.workers,
        queue_size=args.queue_size,
        request_timeout=args.timeout,
        drain_timeout=args.drain_timeout,
        faults=fault_spec,
    )
    try:
        asyncio.run(_serve(config))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
