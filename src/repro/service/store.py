"""Persistent, versioned, size-capped result store.

The durable half of the service's cache hierarchy: an on-disk table of
computed results keyed by ``(kind, config_hash)``, layered under the
in-memory :class:`~repro.study.cache.EvalCache` so identical requests are
hits across process restarts.  Design points:

* **Schema versioning** — entries live under ``<root>/v<STORE_VERSION>/``;
  bumping :data:`STORE_VERSION` (required whenever the hash canonicalisation
  or the value encoding changes) silently orphans the old tree instead of
  serving stale bytes.
* **Atomic writes** — every blob is written to a temporary file in the same
  directory and ``os.replace``d into place, so a crashed or concurrent
  writer can never leave a half-written entry observable; unreadable or
  truncated blobs degrade to cold misses, never errors.
* **JSON + NPZ blobs** — each entry is ``<kind>-<key>.json`` (the encoded
  value, :mod:`repro.service.serial`) plus an optional ``.npz`` sidecar
  holding large arrays (simulated grids) in binary.
* **LRU size cap** — reads refresh an entry's mtime; when the tree exceeds
  ``max_bytes`` after a write, least-recently-used entries are evicted until
  it fits (the entry just written is exempt).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.service.serial import UnserialisableValue, decode, encode

__all__ = ["STORE_VERSION", "StoreStats", "ResultStore"]

#: Schema version of the on-disk tree.  Covers the value encoding
#: (:mod:`repro.service.serial`) *and* the key canonicalisation
#: (:mod:`repro.study.hashing` — see ``tests/test_hashing_golden.py``):
#: changing either invalidates every stored key, so bump this.
STORE_VERSION = 1

#: Default size cap: 256 MiB — generous for result blobs, small enough that
#: an unattended service cannot eat a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class StoreStats:
    """Accounting snapshot of a :class:`ResultStore`."""

    hits: int
    misses: int
    puts: int
    evictions: int
    entries: int
    bytes: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
        }


class ResultStore:
    """On-disk result table under ``root`` (created on first use).

    Safe for concurrent readers/writers across threads and processes: blobs
    are immutable once placed, placement is atomic, and eviction tolerates
    files disappearing underneath it.
    """

    def __init__(self, root: os.PathLike | str, max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.dir = self.root / f"v{STORE_VERSION}"
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stem(kind: str, key_hash: str) -> str:
        safe_kind = "".join(c if c.isalnum() or c in "-_" else "_" for c in kind)
        return f"{safe_kind}-{key_hash}"

    def _json_path(self, kind: str, key_hash: str) -> Path:
        return self.dir / f"{self._stem(kind, key_hash)}.json"

    def _npz_path(self, kind: str, key_hash: str) -> Path:
        return self.dir / f"{self._stem(kind, key_hash)}.npz"

    # ------------------------------------------------------------------ #
    # load / save
    # ------------------------------------------------------------------ #
    def load(self, kind: str, key_hash: str) -> Tuple[bool, Any]:
        """``(True, value)`` when the entry exists and decodes; else miss."""
        path = self._json_path(kind, key_hash)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != STORE_VERSION:
                raise ValueError("schema mismatch")
            arrays: Optional[Dict[str, np.ndarray]] = None
            if payload.get("sidecar"):
                with np.load(self._npz_path(kind, key_hash)) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = decode(payload["value"], arrays)
        except (OSError, ValueError, KeyError, UnserialisableValue):
            with self._lock:
                self._misses += 1
            return False, None
        self._touch(kind, key_hash)
        with self._lock:
            self._hits += 1
        return True, value

    def save(self, kind: str, key_hash: str, value: Any) -> bool:
        """Serialise and atomically place ``value``; ``False`` if it cannot
        be encoded (the caller keeps it memory-only)."""
        arrays: List[np.ndarray] = []
        try:
            encoded = encode(value, arrays)
        except UnserialisableValue:
            return False
        self.dir.mkdir(parents=True, exist_ok=True)
        if arrays:
            self._atomic_write_npz(
                self._npz_path(kind, key_hash),
                {f"arr_{i}": a for i, a in enumerate(arrays)},
            )
        payload = {
            "schema": STORE_VERSION,
            "kind": kind,
            "key": key_hash,
            "sidecar": bool(arrays),
            "value": encoded,
        }
        self._atomic_write_text(
            self._json_path(kind, key_hash),
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
        )
        with self._lock:
            self._puts += 1
        self._enforce_cap(keep=self._stem(kind, key_hash))
        return True

    def contains(self, kind: str, key_hash: str) -> bool:
        """Whether an entry exists on disk (no decode, no accounting)."""
        return self._json_path(kind, key_hash).exists()

    # ------------------------------------------------------------------ #
    # write helpers
    # ------------------------------------------------------------------ #
    def _atomic_write_text(self, path: Path, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _atomic_write_npz(self, path: Path, arrays: Dict[str, np.ndarray]) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _touch(self, kind: str, key_hash: str) -> None:
        """Refresh the entry's recency (best effort)."""
        now = None  # os.utime(None) = current time
        for path in (self._json_path(kind, key_hash), self._npz_path(kind, key_hash)):
            try:
                os.utime(path, now)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # LRU eviction
    # ------------------------------------------------------------------ #
    def _entries(self) -> List[Tuple[float, str, int]]:
        """(oldest mtime, stem, total bytes) per entry, least recent first."""
        grouped: Dict[str, List[Path]] = {}
        try:
            listing = list(self.dir.iterdir())
        except OSError:
            return []
        for path in listing:
            if path.suffix in (".json", ".npz"):
                grouped.setdefault(path.stem, []).append(path)
        rows = []
        for stem, paths in grouped.items():
            try:
                stats = [p.stat() for p in paths]
            except OSError:
                continue  # evicted by a concurrent writer mid-scan
            rows.append((min(s.st_mtime for s in stats), stem, sum(s.st_size for s in stats)))
        rows.sort()
        return rows

    def _enforce_cap(self, keep: str) -> None:
        rows = self._entries()
        total = sum(size for _, _, size in rows)
        for _, stem, size in rows:
            if total <= self.max_bytes:
                break
            if stem == keep:
                continue
            for suffix in (".json", ".npz"):
                try:
                    os.unlink(self.dir / f"{stem}{suffix}")
                except OSError:
                    pass
            total -= size
            with self._lock:
                self._evictions += 1

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> StoreStats:
        rows = self._entries()
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                entries=len(rows),
                bytes=sum(size for _, _, size in rows),
            )

    def clear(self) -> None:
        """Delete every entry of the current schema version."""
        for _, stem, _ in self._entries():
            for suffix in (".json", ".npz"):
                try:
                    os.unlink(self.dir / f"{stem}{suffix}")
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return f"ResultStore({str(self.dir)!r}, entries={s.entries}, bytes={s.bytes})"
