"""Persistent, versioned, size-capped, digest-verified result store.

The durable half of the service's cache hierarchy: an on-disk table of
computed results keyed by ``(kind, config_hash)``, layered under the
in-memory :class:`~repro.study.cache.EvalCache` so identical requests are
hits across process restarts.  Design points:

* **Schema versioning** — entries live under ``<root>/v<STORE_VERSION>/``;
  bumping :data:`STORE_VERSION` (required whenever the hash canonicalisation
  or the value encoding changes) silently orphans the old tree instead of
  serving stale bytes.
* **Atomic writes** — every blob is written to a temporary file in the same
  directory and ``os.replace``d into place, so a crashed or concurrent
  writer can never leave a half-written entry observable.  Stale ``.tmp``
  litter from a crashed writer is swept into quarantine on startup.
* **Content digests** — the manifest records a SHA-256 over the canonical
  value JSON and over the raw NPZ sidecar bytes; **every** read path
  verifies them before a single byte is decoded, so flipped bits or torn
  writes can never reach a response.  A failing entry is moved into
  ``<dir>/quarantine/`` (kept for post-mortems, counted in stats) and the
  read degrades to a cold miss — never an exception, never bad bytes.
* **JSON + NPZ blobs** — each entry is ``<kind>-<key>.json`` (the encoded
  value, :mod:`repro.service.serial`) plus an optional ``.npz`` sidecar
  holding large arrays (simulated grids) in binary.
* **LRU size cap** — reads refresh an entry's mtime; when the tree exceeds
  ``max_bytes`` after a write, least-recently-used entries are evicted until
  it fits (the entry just written is exempt).

Chaos hooks: the ``store.write`` site may corrupt/truncate blob bytes on
their way to disk and the ``store.read`` site may corrupt manifest bytes on
their way in — which is exactly what the digest machinery must catch.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import threading
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.service import faults
from repro.service.faults import InjectedFault
from repro.service.serial import UnserialisableValue, decode, encode

__all__ = ["STORE_VERSION", "StoreStats", "ResultStore"]

#: Schema version of the on-disk tree.  Covers the value encoding
#: (:mod:`repro.service.serial`), the key canonicalisation
#: (:mod:`repro.study.hashing` — see ``tests/test_hashing_golden.py``) *and*
#: the manifest layout.  v2 added mandatory content digests.
STORE_VERSION = 2

#: Default size cap: 256 MiB — generous for result blobs, small enough that
#: an unattended service cannot eat a disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: A ``.tmp`` file this old at startup belongs to a dead writer, not a
#: concurrent one, and is swept into quarantine.
STALE_TMP_SECONDS = 60.0

#: Errors that mean "this entry is damaged" (vs. infrastructure trouble).
_CORRUPTION_ERRORS = (
    ValueError,
    KeyError,
    TypeError,
    EOFError,
    UnserialisableValue,
    zipfile.BadZipFile,
    json.JSONDecodeError,
)


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _canonical_value_bytes(encoded: Any) -> bytes:
    """The digestable form of an encoded value: canonical compact JSON."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class StoreStats:
    """Accounting snapshot of a :class:`ResultStore`."""

    hits: int
    misses: int
    puts: int
    evictions: int
    entries: int
    bytes: int
    digest_failures: int = 0
    quarantined: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
            "digest_failures": self.digest_failures,
            "quarantined": self.quarantined,
        }


class ResultStore:
    """On-disk result table under ``root`` (created on first use).

    Safe for concurrent readers/writers across threads and processes: blobs
    are immutable once placed, placement is atomic, and eviction tolerates
    files disappearing underneath it.
    """

    def __init__(self, root: os.PathLike | str, max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.dir = self.root / f"v{STORE_VERSION}"
        self.quarantine_dir = self.dir / "quarantine"
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._digest_failures = 0
        self._quarantined = 0
        self._quarantine_seq = 0
        self._sweep_stale_tmp()

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stem(kind: str, key_hash: str) -> str:
        safe_kind = "".join(c if c.isalnum() or c in "-_" else "_" for c in kind)
        return f"{safe_kind}-{key_hash}"

    def _json_path(self, kind: str, key_hash: str) -> Path:
        return self.dir / f"{self._stem(kind, key_hash)}.json"

    def _npz_path(self, kind: str, key_hash: str) -> Path:
        return self.dir / f"{self._stem(kind, key_hash)}.npz"

    # ------------------------------------------------------------------ #
    # load / save
    # ------------------------------------------------------------------ #
    def load(self, kind: str, key_hash: str) -> Tuple[bool, Any]:
        """``(True, value)`` when the entry exists, verifies and decodes.

        Misses come in three flavours, all returning ``(False, None)``:
        the entry simply isn't there; the entry is damaged — digest
        mismatch, bad JSON, bad NPZ — in which case its files move to
        ``quarantine/`` first; or an injected ``store.read`` fault ate the
        read (counted as a miss only, nothing to quarantine).
        """
        path = self._json_path(kind, key_hash)
        try:
            raw = path.read_bytes()
        except OSError:
            return self._miss()
        try:
            raw = faults.get().corrupt("store.read", raw, context={"kind": kind})
        except InjectedFault:
            return self._miss()
        try:
            payload = json.loads(raw.decode("utf-8"))
            if payload.get("schema") != STORE_VERSION:
                raise ValueError("schema mismatch")
            digests = payload["digests"]
            value_digest = _sha256_hex(_canonical_value_bytes(payload["value"]))
            if value_digest != digests["value"]:
                return self._digest_failure(kind, key_hash)
            arrays: Optional[Dict[str, np.ndarray]] = None
            if payload.get("sidecar"):
                sidecar_raw = self._npz_path(kind, key_hash).read_bytes()
                if _sha256_hex(sidecar_raw) != digests["sidecar"]:
                    return self._digest_failure(kind, key_hash)
                with np.load(io.BytesIO(sidecar_raw)) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = decode(payload["value"], arrays)
        except OSError:
            # A sidecar vanished (concurrent eviction): a plain miss.
            return self._miss()
        except InjectedFault:
            return self._miss()
        except _CORRUPTION_ERRORS:
            return self._quarantine_miss(kind, key_hash)
        self._touch(kind, key_hash)
        with self._lock:
            self._hits += 1
        return True, value

    def _miss(self) -> Tuple[bool, Any]:
        with self._lock:
            self._misses += 1
        return False, None

    def _digest_failure(self, kind: str, key_hash: str) -> Tuple[bool, Any]:
        with self._lock:
            self._digest_failures += 1
        return self._quarantine_miss(kind, key_hash)

    def _quarantine_miss(self, kind: str, key_hash: str) -> Tuple[bool, Any]:
        self._quarantine_entry(self._stem(kind, key_hash))
        return self._miss()

    def save(self, kind: str, key_hash: str, value: Any) -> bool:
        """Serialise, digest and atomically place ``value``.

        ``False`` when the value cannot be encoded (the caller keeps it
        memory-only) or when an injected ``store.write`` crash ate the
        write.  Digests are computed over the *true* bytes before the
        chaos hook gets a chance to corrupt them on the way to disk —
        a torn write must be detectable on the next read.
        """
        arrays: List[np.ndarray] = []
        try:
            encoded = encode(value, arrays)
        except UnserialisableValue:
            return False
        self.dir.mkdir(parents=True, exist_ok=True)
        injector = faults.get()
        context = {"kind": kind}
        try:
            sidecar_digest: Optional[str] = None
            if arrays:
                buffer = io.BytesIO()
                np.savez(buffer, **{f"arr_{i}": a for i, a in enumerate(arrays)})
                sidecar_bytes = buffer.getvalue()
                sidecar_digest = _sha256_hex(sidecar_bytes)
                self._atomic_write_bytes(
                    self._npz_path(kind, key_hash),
                    injector.corrupt("store.write", sidecar_bytes, context=context),
                )
            payload = {
                "schema": STORE_VERSION,
                "kind": kind,
                "key": key_hash,
                "sidecar": bool(arrays),
                "digests": {
                    "value": _sha256_hex(_canonical_value_bytes(encoded)),
                    "sidecar": sidecar_digest,
                },
                "value": encoded,
            }
            manifest_bytes = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            )
            self._atomic_write_bytes(
                self._json_path(kind, key_hash),
                injector.corrupt("store.write", manifest_bytes, context=context),
            )
        except InjectedFault:
            return False
        with self._lock:
            self._puts += 1
        self._enforce_cap(keep=self._stem(kind, key_hash))
        return True

    def contains(self, kind: str, key_hash: str) -> bool:
        """Whether an entry exists on disk (no decode, no accounting)."""
        return self._json_path(kind, key_hash).exists()

    # ------------------------------------------------------------------ #
    # write helpers
    # ------------------------------------------------------------------ #
    def _atomic_write_bytes(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _touch(self, kind: str, key_hash: str) -> None:
        """Refresh the entry's recency (best effort)."""
        now = None  # os.utime(None) = current time
        for path in (self._json_path(kind, key_hash), self._npz_path(kind, key_hash)):
            try:
                os.utime(path, now)
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # quarantine
    # ------------------------------------------------------------------ #
    def _quarantine_entry(self, stem: str) -> None:
        """Move an entry's files into ``quarantine/`` (best effort).

        Quarantined blobs keep their name plus a sequence suffix so repeated
        corruption of the same key never overwrites earlier evidence.
        """
        moved = False
        for suffix in (".json", ".npz"):
            source = self.dir / f"{stem}{suffix}"
            if not source.exists():
                continue
            with self._lock:
                self._quarantine_seq += 1
                seq = self._quarantine_seq
            try:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(source, self.quarantine_dir / f"{stem}.{seq}{suffix}")
                moved = True
            except OSError:
                try:
                    os.unlink(source)
                    moved = True
                except OSError:
                    pass
        if moved:
            with self._lock:
                self._quarantined += 1

    def _sweep_stale_tmp(self) -> None:
        """Quarantine ``.tmp`` litter from writers that died mid-write.

        Only files older than :data:`STALE_TMP_SECONDS` move — younger ones
        may belong to a live concurrent writer about to ``os.replace``.
        """
        try:
            listing = list(self.dir.iterdir())
        except OSError:
            return
        cutoff = time.time() - STALE_TMP_SECONDS
        for path in listing:
            if path.suffix != ".tmp":
                continue
            try:
                if path.stat().st_mtime > cutoff:
                    continue
                with self._lock:
                    self._quarantine_seq += 1
                    seq = self._quarantine_seq
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                os.replace(path, self.quarantine_dir / f"{path.name}.{seq}")
                with self._lock:
                    self._quarantined += 1
            except OSError:
                continue

    def quarantined_files(self) -> List[str]:
        """Names currently sitting in ``quarantine/`` (sorted)."""
        try:
            return sorted(p.name for p in self.quarantine_dir.iterdir())
        except OSError:
            return []

    # ------------------------------------------------------------------ #
    # LRU eviction
    # ------------------------------------------------------------------ #
    def _entries(self) -> List[Tuple[float, str, int]]:
        """(oldest mtime, stem, total bytes) per entry, least recent first."""
        grouped: Dict[str, List[Path]] = {}
        try:
            listing = list(self.dir.iterdir())
        except OSError:
            return []
        for path in listing:
            if path.suffix in (".json", ".npz"):
                grouped.setdefault(path.stem, []).append(path)
        rows = []
        for stem, paths in grouped.items():
            try:
                stats = [p.stat() for p in paths]
            except OSError:
                continue  # evicted by a concurrent writer mid-scan
            rows.append((min(s.st_mtime for s in stats), stem, sum(s.st_size for s in stats)))
        rows.sort()
        return rows

    def _enforce_cap(self, keep: str) -> None:
        rows = self._entries()
        total = sum(size for _, _, size in rows)
        for _, stem, size in rows:
            if total <= self.max_bytes:
                break
            if stem == keep:
                continue
            for suffix in (".json", ".npz"):
                try:
                    os.unlink(self.dir / f"{stem}{suffix}")
                except OSError:
                    pass
            total -= size
            with self._lock:
                self._evictions += 1

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> StoreStats:
        rows = self._entries()
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                entries=len(rows),
                bytes=sum(size for _, _, size in rows),
                digest_failures=self._digest_failures,
                quarantined=self._quarantined,
            )

    def clear(self) -> None:
        """Delete every entry of the current schema version."""
        for _, stem, _ in self._entries():
            for suffix in (".json", ".npz"):
                try:
                    os.unlink(self.dir / f"{stem}{suffix}")
                except OSError:
                    pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats
        return f"ResultStore({str(self.dir)!r}, entries={s.entries}, bytes={s.bytes})"
