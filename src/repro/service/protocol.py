"""Request schema, validation and canonical keys of the compute service.

A request is one JSON object: ``{"kind": ..., <parameters>}``.  Kinds map
onto the plan API's verbs:

``plan``
    Compile a plan and return its explanation and derived configuration.
``estimate``
    Modelled performance (GFLOPS, cycles/point) of a configuration on the
    paper's machine model — the cheap, cache-friendly workhorse.
``simulate``
    Execute the register-level schedule on the simulated SIMD machine and
    return the final grid plus the instruction tally.
``run``
    Numerically advance a grid with the compiled method.
``study``
    A declarative sweep (axes of method/isa/unroll) evaluated cell-by-cell;
    the server shards the cross-product across its worker pool.
``tune``
    A staged autotuning search (:mod:`repro.autotune`): the candidate list
    is sharded across the worker pool for the predict stage, the prune
    stage runs as a pure function on the merged rows, and the surviving
    top-``budget`` candidates are measured in one worker job.  The response
    is the :meth:`repro.autotune.TuneResult.to_dict` ledger, cached by the
    request's ``config_hash`` key like every other kind.

:func:`normalize` validates a raw payload against the method registry and
the benchmark library **before** it costs a queue slot, fills defaults, and
returns a canonical :class:`Request` whose :attr:`~Request.key` is stable
across processes, platforms and JSON key orders
(:func:`repro.study.hashing.config_hash` — see the golden-hash tests).
That key is the identity used for single-flight dedup, the in-memory
response cache and the persistent store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.backend import backend_keys
from repro.registry import get_method, is_registered
from repro.stencils.library import BENCHMARKS, get_benchmark
from repro.study.hashing import config_hash

__all__ = [
    "PROTOCOL_VERSION",
    "KINDS",
    "RETIRED_KINDS",
    "ServiceError",
    "Request",
    "normalize",
    "expand_study_cells",
    "expand_tune_candidates",
    "shard_cells",
]

#: Wire-format version; part of every request key so a future incompatible
#: protocol cannot read this one's store entries as its own.
PROTOCOL_VERSION = 1

#: Public request kinds, cheap → expensive.
KINDS = ("plan", "estimate", "simulate", "run", "study", "tune")

#: Former hidden fault-injection kinds, replaced by the seeded
#: :mod:`repro.service.faults` framework.  Rejected with a pointed message
#: so a stale chaos harness fails loudly instead of silently validating.
RETIRED_KINDS = ("_sleep", "_crash")

#: Kinds whose cold execution is heavyweight (full grid sweeps): they queue
#: behind cheap analysis requests at the same arrival time.
EXPENSIVE_KINDS = frozenset({"simulate", "run", "study", "tune"})

ISAS = ("avx2", "avx512")


class ServiceError(Exception):
    """A structured, client-visible failure.

    ``code`` is machine-matchable (``invalid-request``, ``overloaded``,
    ``timeout``, ``worker-crash``, ``quarantined``, ``draining``,
    ``internal``); ``status`` is the HTTP status the front end maps it to.
    ``retry_after`` (seconds) rides along on load-shedding errors and
    becomes the HTTP ``Retry-After`` header, so well-behaved clients back
    off for exactly as long as the server suggests.
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 400,
        retry_after: Optional[float] = None,
    ):
        super().__init__(message)
        self.code = code
        self.message = message
        self.status = status
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            out["retry_after"] = self.retry_after
        return out


def _invalid(message: str) -> ServiceError:
    return ServiceError("invalid-request", message, status=400)


@dataclass(frozen=True)
class Request:
    """A validated, canonicalised request.

    ``params`` is complete (defaults filled) and key-sorted; ``key`` is the
    request's content hash — equal requests, however spelled, share it.
    """

    kind: str
    params: Mapping[str, Any]
    key: str

    @property
    def expensive(self) -> bool:
        """Whether a cold execution is heavyweight (priority class)."""
        return self.kind in EXPENSIVE_KINDS

    def to_payload(self) -> Dict[str, Any]:
        """The canonical JSON payload (what workers receive)."""
        return {"kind": self.kind, **self.params}


# --------------------------------------------------------------------------- #
# field coercers
# --------------------------------------------------------------------------- #
def _str_field(params: Mapping[str, Any], name: str, default: Optional[str]) -> str:
    value = params.get(name, default)
    if not isinstance(value, str) or not value:
        raise _invalid(f"{name!r} must be a non-empty string")
    return value.strip().lower()


def _int_field(params: Mapping[str, Any], name: str, default: Optional[int], minimum: int) -> int:
    value = params.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise _invalid(f"{name!r} must be an integer")
    if value < minimum:
        raise _invalid(f"{name!r} must be >= {minimum}")
    return value

def _bool_field(params: Mapping[str, Any], name: str, default: bool) -> bool:
    value = params.get(name, default)
    if not isinstance(value, bool):
        raise _invalid(f"{name!r} must be a boolean")
    return value


def _shape_field(
    params: Mapping[str, Any], name: str = "shape", max_points: int = 1 << 24
) -> List[int]:
    value = params.get(name)
    if not isinstance(value, (list, tuple)) or not 1 <= len(value) <= 3:
        raise _invalid(f"{name!r} must be a list of 1-3 extents")
    shape = []
    total = 1
    for extent in value:
        if isinstance(extent, bool) or not isinstance(extent, int) or extent < 1:
            raise _invalid(f"{name!r} extents must be positive integers")
        shape.append(extent)
        total *= extent
    if total > max_points:
        raise _invalid(f"{name!r} exceeds the service's {max_points}-point limit")
    return shape


def _stencil_field(params: Mapping[str, Any]) -> str:
    key = _str_field(params, "stencil", None)
    try:
        return get_benchmark(key).key
    except KeyError:
        raise _invalid(f"unknown stencil {key!r}; known: {', '.join(sorted(BENCHMARKS))}") from None


def _method_field(params: Mapping[str, Any], executable: bool) -> str:
    key = _str_field(params, "method", "folded")
    if not is_registered(key):
        raise _invalid(f"unknown method {key!r}")
    descriptor = get_method(key)
    if descriptor.virtual:
        raise _invalid(f"method {key!r} is a figure label, not an executable method")
    if executable and descriptor.profile_only:
        raise _invalid(f"method {key!r} is profile-only; it cannot execute requests")
    if not executable and descriptor.profile_builder is None:
        raise _invalid(f"method {key!r} has no instruction profile to estimate from")
    return descriptor.key


def _isa_field(params: Mapping[str, Any]) -> str:
    isa = _str_field(params, "isa", "avx2")
    if isa not in ISAS:
        raise _invalid(f"'isa' must be one of {ISAS}")
    return isa


def _backend_field(params: Mapping[str, Any], default: str, allow_auto: bool) -> str:
    """Validate ``backend`` against the execution-backend registry.

    The normalized value lands in ``params`` and therefore in the request's
    ``config_hash`` identity: kernel and interpret executions of the same
    configuration are distinct store entries, never collisions.
    """
    backend = _str_field(params, "backend", default)
    allowed = (("auto",) if allow_auto else ()) + backend_keys()
    if backend not in allowed:
        raise _invalid(f"'backend' must be one of {allowed}")
    return backend


# --------------------------------------------------------------------------- #
# per-kind normalisers — each returns the complete params dict
# --------------------------------------------------------------------------- #
def _normalize_plan(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "stencil": _stencil_field(params),
        "method": _method_field(params, executable=True),
        "isa": _isa_field(params),
        "m": _int_field(params, "m", 2, 1),
    }


def _normalize_estimate(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "stencil": _stencil_field(params),
        "method": _method_field(params, executable=False),
        "isa": _isa_field(params),
        "m": _int_field(params, "m", 2, 1),
        "shape": _shape_field(params) if "shape" in params else [4096, 4096],
        "time_steps": _int_field(params, "time_steps", 1000, 1),
        "cores": _int_field(params, "cores", 1, 1),
        "shifts_reuse": _bool_field(params, "shifts_reuse", True),
    }


def _normalize_simulate(params: Mapping[str, Any]) -> Dict[str, Any]:
    out = {
        "stencil": _stencil_field(params),
        "method": _method_field(params, executable=True),
        "isa": _isa_field(params),
        "m": _int_field(params, "m", 2, 1),
        "shape": _shape_field(params, max_points=1 << 20),
        "steps": _int_field(params, "steps", None, 1),
        "seed": _int_field(params, "seed", 0, 0),
        "optimize": _bool_field(params, "optimize", False),
        "backend": _backend_field(params, default="trace", allow_auto=False),
    }
    # Cross-field validation mirrors the plan API exactly: the combinations
    # CompiledPlan.simulate() rejects (e.g. optimize on the interpret
    # backend) fail here, before the request costs a queue slot.
    from repro.backend.options import ExecutionOptions

    try:
        ExecutionOptions.normalize(
            backend=out["backend"], optimize=out["optimize"], context="simulate"
        )
    except ValueError as exc:
        raise _invalid(str(exc)) from None
    return out


def _normalize_run(params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "stencil": _stencil_field(params),
        "method": _method_field(params, executable=True),
        "isa": _isa_field(params),
        "m": _int_field(params, "m", 2, 1),
        "shape": _shape_field(params, max_points=1 << 22),
        "steps": _int_field(params, "steps", None, 1),
        "seed": _int_field(params, "seed", 0, 0),
        "backend": _backend_field(params, default="auto", allow_auto=True),
    }


#: Axes a study request may sweep, with their validators.
_STUDY_AXES = ("method", "isa", "m")


def _normalize_study(params: Mapping[str, Any]) -> Dict[str, Any]:
    axes_raw = params.get("axes")
    if not isinstance(axes_raw, Mapping) or not axes_raw:
        raise _invalid("'axes' must be a non-empty mapping of axis name -> values")
    axes: Dict[str, List[Any]] = {}
    for name, values in axes_raw.items():
        if name not in _STUDY_AXES:
            raise _invalid(f"unknown study axis {name!r}; known: {_STUDY_AXES}")
        if not isinstance(values, (list, tuple)) or not values:
            raise _invalid(f"study axis {name!r} must be a non-empty list")
        levels = []
        for value in values:
            probe = {name: value}
            if name == "method":
                levels.append(_method_field(probe, executable=False))
            elif name == "isa":
                levels.append(_isa_field(probe))
            else:
                levels.append(_int_field(probe, "m", None, 1))
        axes[name] = levels
    cells = 1
    for levels in axes.values():
        cells *= len(levels)
    if cells > 4096:
        raise _invalid(f"study expands to {cells} cells; the service caps at 4096")
    return {
        "stencil": _stencil_field(params),
        # Axis order is canonical (method, isa, m) so equal studies share a
        # key; row order is restored from the cells themselves.
        "axes": {name: axes[name] for name in _STUDY_AXES if name in axes},
        "shape": _shape_field(params) if "shape" in params else [4096, 4096],
        "time_steps": _int_field(params, "time_steps", 1000, 1),
        "cores": _int_field(params, "cores", 1, 1),
    }


def _normalize_tune(params: Mapping[str, Any]) -> Dict[str, Any]:
    from repro.autotune.space import SearchSpace, default_workload_shape
    from repro.autotune.tuner import OBJECTIVES

    stencil = _stencil_field(params)
    spec = get_benchmark(stencil).spec

    isas_raw = params.get("isas", list(ISAS))
    if not isinstance(isas_raw, (list, tuple)) or not isas_raw:
        raise _invalid("'isas' must be a non-empty list")
    requested = {_isa_field({"isa": value}) for value in isas_raw}
    isas = [isa for isa in ISAS if isa in requested]

    # Registry-/stencil-derived defaults for the method and unroll axes come
    # from the same SearchSpace the tuner itself would build, so a bare
    # {"kind": "tune", "stencil": ...} request is a full default search.
    defaults = SearchSpace.for_spec(spec, isas=tuple(isas))
    methods_raw = params.get("methods", list(defaults.methods))
    if not isinstance(methods_raw, (list, tuple)) or not methods_raw:
        raise _invalid("'methods' must be a non-empty list")
    methods = []
    for value in methods_raw:
        method = _method_field({"method": value}, executable=False)
        if method not in methods:
            methods.append(method)

    m_raw = params.get("m_values", list(defaults.m_values))
    if not isinstance(m_raw, (list, tuple)) or not m_raw:
        raise _invalid("'m_values' must be a non-empty list")
    m_values = sorted({_int_field({"m": value}, "m", None, 1) for value in m_raw})

    budget = _int_field(params, "budget", 0, 0)
    if budget > 8:
        raise _invalid("'budget' must be <= 8 (measured candidates per request)")
    objective = _str_field(params, "objective", "cycles_per_point")
    if objective not in OBJECTIVES:
        raise _invalid(f"'objective' must be one of {OBJECTIVES}")

    shape = (
        _shape_field(params)
        if "shape" in params
        else list(default_workload_shape(spec.dims))
    )
    if len(shape) != spec.dims:
        raise _invalid(
            f"'shape' must have {spec.dims} extents for stencil {stencil!r}"
        )
    return {
        "stencil": stencil,
        "isas": isas,
        "methods": methods,
        "m_values": m_values,
        "budget": budget,
        "objective": objective,
        "shape": shape,
        "time_steps": _int_field(params, "time_steps", 1000, 1),
        "cores": _int_field(params, "cores", 1, 1),
        "repeats": _int_field(params, "repeats", 3, 1),
        "seed": _int_field(params, "seed", 0, 0),
    }


_NORMALIZERS = {
    "plan": _normalize_plan,
    "estimate": _normalize_estimate,
    "simulate": _normalize_simulate,
    "run": _normalize_run,
    "study": _normalize_study,
    "tune": _normalize_tune,
}


def normalize(payload: Any) -> Request:
    """Validate ``payload`` and return the canonical :class:`Request`.

    Raises :class:`ServiceError` (code ``invalid-request``) for anything
    malformed; the error message names the offending field so clients can
    fix their request without reading server logs.
    """
    if not isinstance(payload, Mapping):
        raise _invalid("request body must be a JSON object")
    kind = payload.get("kind")
    if not isinstance(kind, str):
        raise _invalid("'kind' must be a string")
    kind = kind.strip().lower()
    if kind in RETIRED_KINDS:
        raise _invalid(
            f"kind {kind!r} was retired; use the seeded fault-injection "
            f"schedule (ServiceConfig.faults / repro.service.faults) instead"
        )
    if kind not in KINDS:
        raise _invalid(f"unknown kind {kind!r}; known: {', '.join(KINDS)}")
    params = _NORMALIZERS[kind](payload)
    key = config_hash("service", PROTOCOL_VERSION, kind, params)
    return Request(kind=kind, params=params, key=key)


# --------------------------------------------------------------------------- #
# study sharding
# --------------------------------------------------------------------------- #
def expand_study_cells(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The study's cross-product, in canonical axis order (method, isa, m).

    The first declared axis varies slowest, mirroring
    :meth:`repro.study.builder.StudyBuilder.over` semantics.
    """
    axes: Mapping[str, Sequence[Any]] = params["axes"]
    cells: List[Dict[str, Any]] = [{}]
    for name in _STUDY_AXES:
        if name not in axes:
            continue
        cells = [dict(cell, **{name: value}) for cell in cells for value in axes[name]]
    defaults = {"method": "folded", "isa": "avx2", "m": 2}
    return [
        {"index": i, **{k: cell.get(k, defaults[k]) for k in _STUDY_AXES}}
        for i, cell in enumerate(cells)
    ]


def expand_tune_candidates(params: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """The tune request's deterministic candidate list (predict-stage units).

    Rebuilt identically on the server and in any worker from the normalized
    params alone, so shards can be merged back by candidate ``index``.
    """
    from repro.autotune.space import expand_candidates
    from repro.autotune.tuner import space_from_params

    spec, space, _ = space_from_params(params)
    return expand_candidates(spec, space)


def shard_cells(cells: Sequence[Dict[str, Any]], shards: int) -> List[List[Dict[str, Any]]]:
    """Split ``cells`` into at most ``shards`` contiguous, ordered chunks."""
    shards = max(1, min(int(shards), len(cells)))
    size, extra = divmod(len(cells), shards)
    out: List[List[Dict[str, Any]]] = []
    start = 0
    for i in range(shards):
        end = start + size + (1 if i < extra else 0)
        out.append(list(cells[start:end]))
        start = end
    return out
