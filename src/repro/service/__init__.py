"""repro.service — the async, sharded stencil-compute service.

A small production-style serving layer over the compile-once/run-many plan
API: an :mod:`asyncio` front end (:mod:`repro.service.server`) validates
JSON requests against the method registry, coalesces concurrent identical
requests, schedules cold work onto a process-pool worker tier
(:mod:`repro.service.workers`, studies sharded across workers), and answers
repeats from a two-level cache — in-memory
:class:`~repro.study.cache.EvalCache` over the persistent, versioned,
LRU-capped :class:`~repro.service.store.ResultStore`.

Start it with ``repro-serve`` (or ``python -m repro.service.server``) and
talk to it with :class:`~repro.service.client.ServiceClient` — see
``examples/service_client.py`` and the README's "Running the service".
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.protocol import (
    KINDS,
    PROTOCOL_VERSION,
    Request,
    ServiceError,
    normalize,
)
from repro.service.serial import UnserialisableValue, decode, encode
from repro.service.server import (
    ServiceConfig,
    ServiceHandle,
    StencilService,
    serve_background,
)
from repro.service.store import STORE_VERSION, ResultStore, StoreStats
from repro.service.workers import WorkerPool, execute_payload

__all__ = [
    "KINDS",
    "PROTOCOL_VERSION",
    "STORE_VERSION",
    "Request",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceUnavailable",
    "StencilService",
    "StoreStats",
    "UnserialisableValue",
    "WorkerPool",
    "decode",
    "encode",
    "execute_payload",
    "normalize",
    "serve_background",
]
