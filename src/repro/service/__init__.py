"""repro.service — the async, sharded stencil-compute service.

A small production-style serving layer over the compile-once/run-many plan
API: an :mod:`asyncio` front end (:mod:`repro.service.server`) validates
JSON requests against the method registry, coalesces concurrent identical
requests, schedules cold work onto a process-pool worker tier
(:mod:`repro.service.workers`, studies sharded across workers), and answers
repeats from a two-level cache — in-memory
:class:`~repro.study.cache.EvalCache` over the persistent, versioned,
LRU-capped, digest-verified :class:`~repro.service.store.ResultStore`.

The service is chaos-hardened: :mod:`repro.service.faults` injects seeded,
replayable failures at named sites throughout this stack, and
:mod:`repro.service.resilience` supplies the survival policies (retry
budgets with decorrelated-jitter backoff, a circuit breaker over pool
crashes, poison-pill quarantine) the chaos suite validates.

Start it with ``repro-serve`` (or ``python -m repro.service.server``) and
talk to it with :class:`~repro.service.client.ServiceClient` — see
``examples/service_client.py`` and the README's "Running the service".
"""

from repro.service.client import ServiceClient, ServiceUnavailable
from repro.service.faults import (
    FaultInjector,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    deactivate,
    install,
)
from repro.service.protocol import (
    KINDS,
    PROTOCOL_VERSION,
    Request,
    ServiceError,
    normalize,
)
from repro.service.resilience import CircuitBreaker, PoisonQuarantine, RetryPolicy
from repro.service.serial import UnserialisableValue, decode, encode
from repro.service.server import (
    ServiceConfig,
    ServiceHandle,
    StencilService,
    serve_background,
)
from repro.service.store import STORE_VERSION, ResultStore, StoreStats
from repro.service.workers import WorkerPool, execute_payload

__all__ = [
    "KINDS",
    "PROTOCOL_VERSION",
    "STORE_VERSION",
    "CircuitBreaker",
    "FaultInjector",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "PoisonQuarantine",
    "Request",
    "ResultStore",
    "RetryPolicy",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHandle",
    "ServiceUnavailable",
    "StencilService",
    "StoreStats",
    "UnserialisableValue",
    "WorkerPool",
    "deactivate",
    "decode",
    "encode",
    "execute_payload",
    "install",
    "normalize",
    "serve_background",
]
