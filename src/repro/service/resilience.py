"""Resilience policies: retry backoff, circuit breaking, poison quarantine.

These are the survival half of the chaos story
(:mod:`repro.service.faults` is the provocation half).  All three classes
are deliberately free of service imports and take injectable clocks/RNGs,
so the chaos suite can drive them through years of simulated failures
without a single real sleep — the tier-1 suite stays wall-clock-free.

* :class:`RetryPolicy` — exponential backoff with *decorrelated jitter*
  (AWS architecture-blog variant: each delay is drawn uniformly from
  ``[base, 3 * previous]``, capped), plus the per-request retry budget
  (``max_attempts``).
* :class:`CircuitBreaker` — counts pool-crash events in a sliding window;
  at ``threshold`` it opens and the worker tier degrades to its inline
  thread executor instead of fork-rebuilding a pool the workload keeps
  killing.  After ``cooldown`` it half-opens: one trial job may use the
  pool again; success closes it, failure re-opens.
* :class:`PoisonQuarantine` — payload keys (``config_hash``) that
  repeatedly kill workers are refused with a structured error instead of
  crash-looping the pool; bounded, with FIFO eviction of old records.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

__all__ = ["RetryPolicy", "CircuitBreaker", "PoisonQuarantine"]

#: Breaker states (plain strings so they serialise into ``/v1/stats`` as-is).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget plus decorrelated-jitter backoff.

    ``max_attempts`` counts *total* tries (1 = never retry).  Delays are a
    pure function of the injected RNG: seeding it makes the whole retry
    trajectory replayable.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")

    @property
    def retry_budget(self) -> int:
        """Retries available after the first attempt."""
        return self.max_attempts - 1

    def next_delay(self, previous: Optional[float], rng: random.Random) -> float:
        """The delay before the next attempt, given the previous delay."""
        if previous is None or previous <= 0:
            previous = self.base_delay
        upper = max(self.base_delay, min(self.max_delay, previous * 3.0))
        return rng.uniform(self.base_delay, upper)

    def delays(self, rng: random.Random):
        """Generate the full backoff trajectory (``retry_budget`` delays)."""
        previous: Optional[float] = None
        for _ in range(self.retry_budget):
            previous = self.next_delay(previous, rng)
            yield previous


class CircuitBreaker:
    """Sliding-window failure breaker over pool-crash events (thread-safe).

    ``record_failure`` marks one pool crash/rebuild; ``threshold`` of them
    inside ``window`` seconds opens the circuit.  While open,
    :meth:`allow_primary` is ``False`` and callers should use their
    degraded path.  ``cooldown`` seconds later the breaker half-opens:
    :meth:`allow_primary` returns ``True`` again so one caller can probe
    the primary; :meth:`record_success` then closes the circuit,
    :meth:`record_failure` re-opens it for another cooldown.
    """

    def __init__(
        self,
        threshold: int = 3,
        window: float = 30.0,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self.window = float(window)
        self.cooldown = float(cooldown)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures: Deque[float] = deque()
        self._opened_at: Optional[float] = None
        self._opened_count = 0
        self._closed_count = 0
        self._transitions: list = []

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def _state_locked(self, now: float) -> str:
        if self._opened_at is None:
            return CLOSED
        if now - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked(self._clock())

    def allow_primary(self) -> bool:
        """Whether the primary (process-pool) path may be used right now."""
        return self.state != OPEN

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #
    def _transition_locked(self, now: float, new_state: str) -> None:
        self._transitions.append({"at": now, "to": new_state})
        if len(self._transitions) > 64:
            del self._transitions[: len(self._transitions) - 64]

    def record_failure(self) -> bool:
        """Note one pool-crash event; returns ``True`` if now open."""
        with self._lock:
            now = self._clock()
            state = self._state_locked(now)
            if state == HALF_OPEN:
                # The trial job failed: straight back to open, fresh cooldown.
                self._opened_at = now
                self._opened_count += 1
                self._transition_locked(now, OPEN)
                return True
            if state == OPEN:
                return True
            self._failures.append(now)
            while self._failures and now - self._failures[0] > self.window:
                self._failures.popleft()
            if len(self._failures) >= self.threshold:
                self._opened_at = now
                self._opened_count += 1
                self._failures.clear()
                self._transition_locked(now, OPEN)
                return True
            return False

    def record_success(self) -> None:
        """Note a successful primary job; closes a half-open circuit."""
        with self._lock:
            now = self._clock()
            if self._opened_at is not None and self._state_locked(now) == HALF_OPEN:
                self._opened_at = None
                self._closed_count += 1
                self._failures.clear()
                self._transition_locked(now, CLOSED)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            now = self._clock()
            return {
                "state": self._state_locked(now),
                "threshold": self.threshold,
                "window_seconds": self.window,
                "cooldown_seconds": self.cooldown,
                "failures_in_window": len(self._failures),
                "opened": self._opened_count,
                "closed": self._closed_count,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.state}, threshold={self.threshold})"


class PoisonQuarantine:
    """Crash-count registry over payload content keys (thread-safe).

    A key that crashes workers ``threshold`` times is quarantined: the pool
    refuses it with a structured error instead of burning another fork.
    Bounded at ``capacity`` tracked keys (oldest records evicted first);
    quarantined keys are never evicted by growth, only by :meth:`clear`.
    """

    def __init__(self, threshold: int = 2, capacity: int = 256):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold = int(threshold)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._crashes: "OrderedDict[str, int]" = OrderedDict()
        self._quarantined: "OrderedDict[str, int]" = OrderedDict()

    def record_crash(self, key: Optional[str]) -> bool:
        """Count one worker-killing crash for ``key``; ``True`` when the
        key is (now or already) quarantined."""
        if not key:
            return False
        with self._lock:
            if key in self._quarantined:
                return True
            count = self._crashes.get(key, 0) + 1
            self._crashes[key] = count
            self._crashes.move_to_end(key)
            while len(self._crashes) > self.capacity:
                self._crashes.popitem(last=False)
            if count >= self.threshold:
                self._quarantined[key] = count
                del self._crashes[key]
                return True
            return False

    def is_quarantined(self, key: Optional[str]) -> bool:
        if not key:
            return False
        with self._lock:
            return key in self._quarantined

    def clear(self, key: Optional[str] = None) -> None:
        """Release one key (or everything) from quarantine."""
        with self._lock:
            if key is None:
                self._crashes.clear()
                self._quarantined.clear()
            else:
                self._crashes.pop(key, None)
                self._quarantined.pop(key, None)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "threshold": self.threshold,
                "tracked": len(self._crashes),
                "quarantined": len(self._quarantined),
                "keys": list(self._quarantined)[:32],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return f"PoisonQuarantine(quarantined={s['quarantined']}, tracked={s['tracked']})"
