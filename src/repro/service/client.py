"""Small synchronous client for the stencil-compute service.

Talks plain HTTP/1.1 over TCP or a Unix socket via :mod:`http.client` —
no third-party dependencies — and decodes tagged values (arrays, dataclasses)
back into Python objects.  Intended for scripts, tests and benchmarks::

    with ServiceClient("http://127.0.0.1:8750") as client:
        reply = client.submit({"kind": "estimate", "stencil": "heat-3d",
                               "method": "folded", "m": 4})
        print(reply["served_from"], reply["result"]["gflops"])
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Optional, Tuple

from repro.service import serial

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service could not be reached (refused, reset, or timed out)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:  # pragma: no cover - exercised via --unix runs
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServiceClient:
    """One service endpoint; connections are per-call (the server closes
    after each response), so a client object is cheap and thread-safe."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if base_url.startswith("unix://"):
            self._unix_path: Optional[str] = base_url[len("unix://") :]
            self._netloc = None
        else:
            self._unix_path = None
            stripped = self.base_url
            for prefix in ("http://", "https://"):
                if stripped.startswith(prefix):
                    stripped = stripped[len(prefix) :]
            self._netloc = stripped

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._unix_path is not None:
            return _UnixHTTPConnection(self._unix_path, timeout=self.timeout)
        return http.client.HTTPConnection(self._netloc, timeout=self.timeout)

    def request_raw(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body_bytes)`` verbatim.

        The raw form exists so tests can assert byte-identical responses
        (cache correctness) without any decode/re-encode laundering.
        """
        conn = self._connection()
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        except (ConnectionError, socket.timeout, socket.gaierror, OSError) as exc:
            raise ServiceUnavailable(f"{method} {path} on {self.base_url}: {exc}") from exc
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def submit(self, payload: Dict[str, Any], decode_result: bool = True) -> Dict[str, Any]:
        """POST one request; returns the response envelope.

        Raises :class:`ServiceError`-shaped ``RuntimeError`` on non-2xx so
        callers don't silently treat errors as results.  With
        ``decode_result`` (default) the envelope's ``result`` has tagged
        arrays decoded back to ``numpy.ndarray``.
        """
        body = json.dumps(payload, sort_keys=True).encode()
        status, raw = self.request_raw("POST", "/v1/requests", body)
        envelope = json.loads(raw.decode())
        if status != 200 or not envelope.get("ok", False):
            error = envelope.get("error", {})
            message = error.get("message", repr(raw[:200]))
            raise RuntimeError(f"service error {status}: {error.get('code', '?')}: {message}")
        if decode_result and "result" in envelope:
            envelope["result"] = serial.decode(envelope["result"])
        return envelope

    def submit_raw(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """POST one request; return the raw ``(status, body)`` exchange."""
        body = json.dumps(payload, sort_keys=True).encode()
        return self.request_raw("POST", "/v1/requests", body)

    def stats(self) -> Dict[str, Any]:
        status, raw = self.request_raw("GET", "/v1/stats")
        if status != 200:
            raise RuntimeError(f"stats endpoint returned {status}")
        return json.loads(raw.decode())

    def healthy(self) -> bool:
        """Whether the service answers ``/healthz`` (False on conn errors)."""
        try:
            status, raw = self.request_raw("GET", "/healthz")
        except ServiceUnavailable:
            return False
        if status != 200:
            return False
        return bool(json.loads(raw.decode()).get("ok"))

    # ------------------------------------------------------------------ #
    # context manager sugar
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClient({self.base_url!r})"
