"""Small synchronous client for the stencil-compute service.

Talks plain HTTP/1.1 over TCP or a Unix socket via :mod:`http.client` —
no third-party dependencies — and decodes tagged values (arrays, dataclasses)
back into Python objects.  Intended for scripts, tests and benchmarks::

    with ServiceClient("http://127.0.0.1:8750") as client:
        reply = client.submit({"kind": "estimate", "stencil": "heat-3d",
                               "method": "folded", "m": 4})
        print(reply["served_from"], reply["result"]["gflops"])

Retries are **opt-in**: pass a
:class:`~repro.service.resilience.RetryPolicy` and :meth:`submit` retries
idempotent requests (every service request is content-addressed, hence
idempotent) on connection failures and 503s, honouring the server's
``Retry-After`` hint with the same decorrelated-jitter backoff the worker
tier uses.  Without a policy the client fails fast, as before.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.service import faults, serial
from repro.service.resilience import RetryPolicy

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """The service could not be reached (refused, reset, or timed out)."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._path = path

    def connect(self) -> None:  # pragma: no cover - exercised via --unix runs
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._path)
        self.sock = sock


class ServiceClient:
    """One service endpoint; connections are per-call (the server closes
    after each response), so a client object is cheap and thread-safe."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._rng = rng if rng is not None else random.Random(0xC11E)
        self._sleep = sleep
        if base_url.startswith("unix://"):
            self._unix_path: Optional[str] = base_url[len("unix://") :]
            self._netloc = None
        else:
            self._unix_path = None
            stripped = self.base_url
            for prefix in ("http://", "https://"):
                if stripped.startswith(prefix):
                    stripped = stripped[len(prefix) :]
            self._netloc = stripped

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._unix_path is not None:
            return _UnixHTTPConnection(self._unix_path, timeout=self.timeout)
        return http.client.HTTPConnection(self._netloc, timeout=self.timeout)

    def request_full(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Mapping[str, str], bytes]:
        """One HTTP exchange; ``(status, headers, body_bytes)`` verbatim.

        The ``client.request`` chaos site fires inside the same ``try`` the
        real socket errors come from, so an injected connection reset is
        indistinguishable from a genuine one.
        """
        conn = self._connection()
        try:
            faults.get().inject("client.request", context={"method": method, "path": path})
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                response.read(),
            )
        except (ConnectionError, socket.timeout, socket.gaierror, OSError) as exc:
            raise ServiceUnavailable(f"{method} {path} on {self.base_url}: {exc}") from exc
        finally:
            conn.close()

    def request_raw(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body_bytes)`` verbatim.

        The raw form exists so tests can assert byte-identical responses
        (cache correctness) without any decode/re-encode laundering.
        """
        status, _, raw = self.request_full(method, path, body)
        return status, raw

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #
    def submit(self, payload: Dict[str, Any], decode_result: bool = True) -> Dict[str, Any]:
        """POST one request; returns the response envelope.

        Raises :class:`ServiceError`-shaped ``RuntimeError`` on non-2xx so
        callers don't silently treat errors as results.  With
        ``decode_result`` (default) the envelope's ``result`` has tagged
        arrays decoded back to ``numpy.ndarray``.  With a ``retry`` policy,
        connection failures and 503 (overloaded/draining) responses are
        retried under the policy's budget, waiting at least the server's
        ``Retry-After`` when one is given.
        """
        body = json.dumps(payload, sort_keys=True).encode()
        attempts = self.retry.max_attempts if self.retry is not None else 1
        attempt = 0
        delay: Optional[float] = None
        while True:
            attempt += 1
            retry_after: Optional[float] = None
            try:
                status, headers, raw = self.request_full("POST", "/v1/requests", body)
            except ServiceUnavailable:
                if attempt >= attempts:
                    raise
                status = None
            else:
                if status == 200:
                    envelope = json.loads(raw.decode())
                    if envelope.get("ok", False):
                        if decode_result and "result" in envelope:
                            envelope["result"] = serial.decode(envelope["result"])
                        return envelope
                    status = 500  # 200 without ok: treat as a server error
                if status != 503 or attempt >= attempts:
                    envelope = _parse_envelope(raw)
                    error = envelope.get("error", {})
                    message = error.get("message", repr(raw[:200]))
                    raise RuntimeError(
                        f"service error {status}: {error.get('code', '?')}: {message}"
                    )
                header = headers.get("retry-after")
                if header is not None:
                    try:
                        retry_after = float(header)
                    except ValueError:
                        retry_after = None
            assert self.retry is not None  # attempts > 1 implies a policy
            delay = self.retry.next_delay(delay, self._rng)
            self._sleep(max(delay, retry_after or 0.0))

    def submit_raw(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """POST one request; return the raw ``(status, body)`` exchange."""
        body = json.dumps(payload, sort_keys=True).encode()
        return self.request_raw("POST", "/v1/requests", body)

    def stats(self) -> Dict[str, Any]:
        status, raw = self.request_raw("GET", "/v1/stats")
        if status != 200:
            raise RuntimeError(f"stats endpoint returned {status}")
        return json.loads(raw.decode())

    def healthy(self) -> bool:
        """Whether the service answers ``/healthz`` (False on conn errors)."""
        try:
            status, raw = self.request_raw("GET", "/healthz")
        except ServiceUnavailable:
            return False
        if status != 200:
            return False
        return bool(json.loads(raw.decode()).get("ok"))

    # ------------------------------------------------------------------ #
    # context manager sugar
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceClient({self.base_url!r})"


def _parse_envelope(raw: bytes) -> Dict[str, Any]:
    try:
        envelope = json.loads(raw.decode())
    except (ValueError, UnicodeDecodeError):
        return {}
    return envelope if isinstance(envelope, dict) else {}
