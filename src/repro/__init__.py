"""repro — reproduction of "Reducing Redundancy in Data Organization and
Arithmetic Calculation for Stencil Computations" (SC'21).

The package implements the paper's transpose data layout, temporal
computation folding (with shifts reuse, tessellate-tiling integration and the
linear-regression generalisation for arbitrary stencils), the baselines it
compares against (multiple loads, data reorganisation, DLT, SDSL) and the
substrates needed to evaluate everything from Python: a simulated SIMD
machine with instruction accounting, a cache-hierarchy model and an analytic
multicore performance model mirroring the paper's Xeon Gold 6140.

Quick start
-----------
>>> import repro
>>> case = repro.get_benchmark("2d9p")
>>> p = repro.plan(case.spec).method("folded").isa("avx2").unroll(2).compile()
>>> grid = case.make_grid()
>>> result = p.run(grid, steps=4)
>>> batch = p.run_batch([case.make_grid(seed=s) for s in range(4)], steps=4)
>>> round(p.folding_report().profitability_optimized, 1)
10.0

Methods are looked up in a pluggable registry
(:mod:`repro.registry`); register new backends with
:func:`~repro.registry.register_method`.  (The legacy ``StencilEngine``
wrapper was removed in 1.5 — see the README migration table.)

Simulated execution (:meth:`~repro.core.plan.CompiledPlan.simulate`) defaults
to the trace-replay backend of :mod:`repro.trace`: the register-level
schedule is recorded once, compiled into a batched NumPy program and replayed
over all block positions per sweep — bit-identical to the instruction-level
interpreter (``backend="interpret"``) and typically orders of magnitude
faster.  ``backend="kernel"`` goes one step further: :mod:`repro.backend`
code-generates the typed IR into one fused megakernel (content-key cached,
optional numba target) and :mod:`repro.backend.measure` puts its measured
wall-clock cycles per point next to the cost model's estimate.

Configuration search is first-class too: ``repro.plan(spec).autotune()``
(or :func:`repro.autotune.autotune`) runs a staged search over
``(method, m, isa, tiling, pass pipeline, backend)`` — every candidate is
scored with the IR cost model first, unprofitable ones are pruned with a
recorded reason, and only the top-K survivors are measured on the kernel
backend.  The immutable :class:`~repro.autotune.TuneResult` keeps the full
ranked ledger, so "why was this configuration not chosen" is always one
lookup away.

Parameter sweeps are first-class: :func:`repro.study` declares an
experiment grid (method × stencil × ISA × core count × ...), expands the
cross-product, memoizes the profile/estimate pipeline, optionally fans the
cells out over a worker pool, and returns an immutable queryable
:class:`~repro.study.resultset.ResultSet`.  Every figure and table of the
paper's evaluation (:mod:`repro.harness.experiments`) is a thin study
definition over any :class:`~repro.machine.MachineSpec`.
"""

from repro.machine import (
    MachineSpec,
    MACHINES,
    XEON_GOLD_6140_AVX2,
    XEON_GOLD_6140_AVX512,
    isa_variant,
    machine_for_isa,
    scalability_cores,
)
from repro.methods import METHOD_KEYS, METHOD_LABELS, build_profile
from repro.registry import (
    MethodDescriptor,
    get_method,
    label_for,
    method_keys,
    method_labels,
    register_method,
)
from repro.core.plan import CompiledPlan, PlanBuilder, PlanConfig, plan
from repro.parallel.executor import map_ordered, run_plan_batch
from repro.study import (
    EvalCache,
    Provenance,
    ResultSet,
    StudyBuilder,
    config_hash,
    study,
)
from repro.core.folding import analyze_folding, profitability, folding_matrix
from repro.core.vectorized_folding import FoldingSchedule
from repro.stencils.grid import Grid
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.spec import StencilSpec, StencilShape
from repro.stencils.library import BENCHMARKS, BenchmarkCase, get_benchmark
from repro.stencils.reference import reference_run, reference_step
from repro.tiling.tessellate import TessellationConfig, tessellate_run
from repro.perfmodel.costmodel import estimate_performance, PerformanceEstimate
from repro.ir import (
    DEFAULT_PASSES,
    PassManager,
    ScheduleIR,
    lower_schedule,
)
from repro.trace import (
    CompiledSweep,
    CompiledSweep1D,
    CompiledSweep2D,
    CompiledSweep3D,
    TraceRecorder,
    compile_sweep,
)
from repro.backend import (
    EXECUTION_BACKENDS,
    ExecutionOptions,
    KernelProgram,
    compile_kernel,
    measure_backend,
    measured_vs_estimated,
)
from repro.autotune import (
    CandidateRecord,
    SearchSpace,
    TuneResult,
    TuningWorkload,
    autotune,
)

__version__ = "1.9.0"

__all__ = [
    "MachineSpec",
    "MACHINES",
    "XEON_GOLD_6140_AVX2",
    "XEON_GOLD_6140_AVX512",
    "machine_for_isa",
    "METHOD_KEYS",
    "METHOD_LABELS",
    "build_profile",
    "MethodDescriptor",
    "get_method",
    "label_for",
    "method_keys",
    "method_labels",
    "register_method",
    "plan",
    "PlanBuilder",
    "PlanConfig",
    "CompiledPlan",
    "run_plan_batch",
    "analyze_folding",
    "profitability",
    "folding_matrix",
    "FoldingSchedule",
    "Grid",
    "BoundaryCondition",
    "StencilSpec",
    "StencilShape",
    "BENCHMARKS",
    "BenchmarkCase",
    "get_benchmark",
    "reference_run",
    "reference_step",
    "TessellationConfig",
    "tessellate_run",
    "estimate_performance",
    "PerformanceEstimate",
    "CompiledSweep",
    "CompiledSweep1D",
    "CompiledSweep2D",
    "CompiledSweep3D",
    "ScheduleIR",
    "lower_schedule",
    "PassManager",
    "DEFAULT_PASSES",
    "study",
    "StudyBuilder",
    "ResultSet",
    "EvalCache",
    "Provenance",
    "config_hash",
    "map_ordered",
    "isa_variant",
    "scalability_cores",
    "TraceRecorder",
    "compile_sweep",
    "EXECUTION_BACKENDS",
    "ExecutionOptions",
    "KernelProgram",
    "compile_kernel",
    "measure_backend",
    "measured_vs_estimated",
    "autotune",
    "SearchSpace",
    "TuningWorkload",
    "TuneResult",
    "CandidateRecord",
    "__version__",
]
