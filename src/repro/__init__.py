"""repro — reproduction of "Reducing Redundancy in Data Organization and
Arithmetic Calculation for Stencil Computations" (SC'21).

The package implements the paper's transpose data layout, temporal
computation folding (with shifts reuse, tessellate-tiling integration and the
linear-regression generalisation for arbitrary stencils), the baselines it
compares against (multiple loads, data reorganisation, DLT, SDSL) and the
substrates needed to evaluate everything from Python: a simulated SIMD
machine with instruction accounting, a cache-hierarchy model and an analytic
multicore performance model mirroring the paper's Xeon Gold 6140.

Quick start
-----------
>>> from repro import StencilEngine, get_benchmark
>>> case = get_benchmark("2d9p")
>>> engine = StencilEngine(case.spec, method="folded", isa="avx2", unroll=2)
>>> grid = case.make_grid()
>>> result = engine.run(grid, steps=4)
>>> report = engine.folding_report()
>>> round(report.profitability_optimized, 1)
10.0
"""

from repro.machine import (
    MachineSpec,
    MACHINES,
    XEON_GOLD_6140_AVX2,
    XEON_GOLD_6140_AVX512,
    machine_for_isa,
)
from repro.methods import METHOD_KEYS, METHOD_LABELS, build_profile
from repro.core.engine import StencilEngine, EngineConfig
from repro.core.folding import analyze_folding, profitability, folding_matrix
from repro.core.vectorized_folding import FoldingSchedule
from repro.stencils.grid import Grid
from repro.stencils.boundary import BoundaryCondition
from repro.stencils.spec import StencilSpec, StencilShape
from repro.stencils.library import BENCHMARKS, BenchmarkCase, get_benchmark
from repro.stencils.reference import reference_run, reference_step
from repro.tiling.tessellate import TessellationConfig, tessellate_run
from repro.perfmodel.costmodel import estimate_performance, PerformanceEstimate

__version__ = "1.0.0"

__all__ = [
    "MachineSpec",
    "MACHINES",
    "XEON_GOLD_6140_AVX2",
    "XEON_GOLD_6140_AVX512",
    "machine_for_isa",
    "METHOD_KEYS",
    "METHOD_LABELS",
    "build_profile",
    "StencilEngine",
    "EngineConfig",
    "analyze_folding",
    "profitability",
    "folding_matrix",
    "FoldingSchedule",
    "Grid",
    "BoundaryCondition",
    "StencilSpec",
    "StencilShape",
    "BENCHMARKS",
    "BenchmarkCase",
    "get_benchmark",
    "reference_run",
    "reference_step",
    "TessellationConfig",
    "tessellate_run",
    "estimate_performance",
    "PerformanceEstimate",
    "__version__",
]
