"""Instruction-set descriptions for the simulated vector machine.

Each supported ISA (AVX-2 with ``vl = 4`` doubles, AVX-512 with ``vl = 8``)
is described by an :class:`IsaSpec`: vector width, number of architectural
registers, and a table of per-instruction-class latencies, reciprocal
throughputs and issue ports.  The numbers are Skylake-SP figures (the
paper's Xeon Gold 6140) taken from the usual public instruction tables; they
only need to be *relatively* right — the cost model uses them to decide how
much of the data-reorganisation work can hide behind the arithmetic, which
is the paper's central overlap argument.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


class InstructionClass(enum.Enum):
    """Execution class used for instruction accounting.

    The classes partition the instructions the schedules emit by the
    execution resource they occupy on Skylake-SP:

    * ``ARITH`` — vector add/sub/mul (ports 0/1),
    * ``FMA`` — fused multiply-add (ports 0/1),
    * ``MAX`` — vector max/min (ports 0/1); kept separate so the nonlinear
      benchmarks' rule application can be reported,
    * ``SHUFFLE`` — in-lane data movement (``unpack``, in-lane ``shuffle``,
      ``blend`` executes on port 5 or 015 depending on form; we bill blends
      separately),
    * ``PERMUTE`` — lane-crossing permutes (``permute2f128``, ``vpermpd``,
      ``vpermt2pd``), port 5, higher latency,
    * ``BLEND`` — cheap lane-select blends,
    * ``BROADCAST`` — scalar→vector broadcasts,
    * ``LOAD`` / ``STORE`` — vector memory operations (ports 2/3 and 4),
    * ``SCALAR`` — bookkeeping scalar ops (loop counters etc.), normally
      negligible and not emitted by the schedules.
    """

    ARITH = "arith"
    FMA = "fma"
    MAX = "max"
    SHUFFLE = "shuffle"
    PERMUTE = "permute"
    BLEND = "blend"
    BROADCAST = "broadcast"
    LOAD = "load"
    LOADU = "loadu"
    STORE = "store"
    SCALAR = "scalar"


@dataclass(frozen=True)
class InstructionTiming:
    """Timing of one instruction class.

    Attributes
    ----------
    latency:
        Result latency in cycles (dependency chains).
    rthroughput:
        Reciprocal throughput in cycles per instruction (issue pressure).
    ports:
        Names of the execution ports that can issue the class; used by the
        port-pressure cost model.
    """

    latency: float
    rthroughput: float
    ports: Tuple[str, ...]


def _skylake_timings(avx512: bool) -> Dict[InstructionClass, InstructionTiming]:
    """Skylake-SP style timing table.

    512-bit operation fuses port 0 and port 1 into a single FMA unit on the
    Gold 6140 (it has a second dedicated 512-bit FMA on port 5), which in
    practice keeps arithmetic throughput at ~2 instructions/cycle but makes
    port 5 shuffles compete with FMAs; we encode that by listing port 5 as a
    legal arithmetic port for AVX-512.
    """
    arith_ports: Tuple[str, ...] = ("p0", "p1", "p5") if avx512 else ("p0", "p1")
    return {
        InstructionClass.ARITH: InstructionTiming(4.0, 0.5, arith_ports),
        InstructionClass.FMA: InstructionTiming(4.0, 0.5, arith_ports),
        InstructionClass.MAX: InstructionTiming(4.0, 0.5, arith_ports),
        InstructionClass.SHUFFLE: InstructionTiming(1.0, 1.0, ("p5",)),
        InstructionClass.PERMUTE: InstructionTiming(3.0, 1.0, ("p5",)),
        InstructionClass.BLEND: InstructionTiming(1.0, 0.33, ("p0", "p1", "p5")),
        InstructionClass.BROADCAST: InstructionTiming(3.0, 1.0, ("p5",)),
        InstructionClass.LOAD: InstructionTiming(5.0, 0.5, ("p2", "p3")),
        # Unaligned neighbour loads frequently split a cache line (a 32-byte
        # load at an 8-byte offset splits every other time), which halves the
        # sustained throughput.
        InstructionClass.LOADU: InstructionTiming(6.0, 1.0, ("p2", "p3")),
        InstructionClass.STORE: InstructionTiming(4.0, 1.0, ("p4",)),
        InstructionClass.SCALAR: InstructionTiming(1.0, 0.25, ("p0", "p1", "p5", "p6")),
    }


@dataclass(frozen=True)
class IsaSpec:
    """Description of one SIMD instruction set used by the simulator.

    Attributes
    ----------
    name:
        ``"avx2"`` or ``"avx512"``.
    vector_lanes:
        Number of ``float64`` lanes per register.
    registers:
        Number of architectural vector registers available to a kernel.
    lane_bytes:
        Width of the in-lane shuffle granule (128-bit lane = 16 bytes on both
        ISAs); kept for documentation purposes.
    timings:
        Per-class instruction timings.
    has_fma:
        Whether the ISA has fused multiply-add (both modelled ISAs do); the
        IR's multiply–add fusion pass is gated on it.
    has_two_source_permute:
        Whether the ISA has an arbitrary two-source lane-crossing permute
        (``vpermt2pd`` — AVX-512 only; AVX-2's ``vperm2f128`` is
        block-granular).  Gates the IR's roll/shift coalescing of
        blend+rotate pairs into single two-source permutes.
    """

    name: str
    vector_lanes: int
    registers: int
    lane_bytes: int
    timings: Mapping[InstructionClass, InstructionTiming]
    has_fma: bool = True
    has_two_source_permute: bool = False

    @property
    def vector_bytes(self) -> int:
        """Register width in bytes."""
        return self.vector_lanes * 8

    @property
    def lanes_per_128(self) -> int:
        """Number of doubles per 128-bit lane (always 2)."""
        return 2

    def timing(self, cls: InstructionClass) -> InstructionTiming:
        """Return the timing entry for instruction class ``cls``."""
        return self.timings[cls]

    @property
    def transpose_stages(self) -> int:
        """Number of exchange stages of the in-register ``vl×vl`` transpose.

        ``log2(vl)``: 2 stages for AVX-2 (Figure 3), 3 stages for AVX-512 —
        matching the paper's Section 2.3.
        """
        stages = 0
        v = self.vector_lanes
        while v > 1:
            v //= 2
            stages += 1
        return stages

    @property
    def transpose_instructions(self) -> int:
        """Instruction count of the in-register ``vl×vl`` transpose.

        ``vl`` instructions per stage: 8 for AVX-2 (the paper's Figure 3),
        24 for AVX-512.
        """
        return self.vector_lanes * self.transpose_stages


#: AVX-2 (256-bit) ISA: 4 doubles per register, 16 ymm registers.
AVX2 = IsaSpec(
    name="avx2",
    vector_lanes=4,
    registers=16,
    lane_bytes=16,
    timings=_skylake_timings(avx512=False),
)

#: AVX-512 (512-bit) ISA: 8 doubles per register, 32 zmm registers.
AVX512 = IsaSpec(
    name="avx512",
    vector_lanes=8,
    registers=32,
    lane_bytes=16,
    timings=_skylake_timings(avx512=True),
    has_two_source_permute=True,
)


def isa_for(name: str) -> IsaSpec:
    """Return the ISA spec named ``name`` (``"avx2"`` or ``"avx512"``)."""
    norm = name.strip().lower()
    if norm == "avx2":
        return AVX2
    if norm == "avx512":
        return AVX512
    raise KeyError(f"unknown ISA {name!r}; expected 'avx2' or 'avx512'")
