"""Simulated short-vector SIMD substrate.

The paper's contribution is expressed in terms of AVX-2 / AVX-512 vector
registers and the instructions that move data between and within them
(loads, stores, ``unpack``, ``permute2f128``, ``blend``, lane-crossing
permutes) plus the arithmetic instructions (``add``/``mul``/``fma``).  Python
cannot issue those instructions, so this subpackage provides a *simulated*
vector machine with two responsibilities:

1. **Exact value semantics** — every instruction operates on real
   ``float64`` lane values, so a schedule written against the simulator
   produces numerically correct stencil results that are validated against
   the NumPy reference.
2. **Instruction accounting** — every instruction is tallied by execution
   class (arithmetic, shuffle, load/store, ...) so the cost model in
   :mod:`repro.perfmodel` can convert a schedule into cycles on the paper's
   machine, reproducing the paper's op-count arguments (e.g. the
   8-instruction 4×4 register transpose of Figure 3).
"""

from repro.simd.isa import InstructionClass, IsaSpec, AVX2, AVX512, isa_for
from repro.simd.vector import Vector
from repro.simd.machine import InstructionCounts, SimdMachine
from repro.simd.transpose import register_transpose, transpose_4x4, transpose_8x8
from repro.simd.kernels import assemble_left_neighbor, assemble_right_neighbor

__all__ = [
    "InstructionClass",
    "IsaSpec",
    "AVX2",
    "AVX512",
    "isa_for",
    "Vector",
    "InstructionCounts",
    "SimdMachine",
    "register_transpose",
    "transpose_4x4",
    "transpose_8x8",
    "assemble_left_neighbor",
    "assemble_right_neighbor",
]
