"""Low-level vector-set helpers for the transpose layout (paper Figure 2).

In the transpose layout, a *vector set* holds ``vl * vl`` consecutive grid
elements as ``vl`` registers, register ``j`` containing the elements whose
in-set offset is congruent to ``j`` modulo ``vl`` (i.e. column ``j`` of the
``vl × vl`` matrix view).  A stencil update of the set needs, besides the
set's own registers, *assembled* dependence vectors:

* the **left dependent vector** of the set's first register — the elements
  immediately to the left of register 0's elements.  All but one of them live
  in the *last* register of the same set; the remaining one (the paper's
  ``Z``) is the last element of the previous set, i.e. lane ``vl - 1`` of the
  previous set's last register.
* the **right dependent vector** of the set's last register — symmetric, with
  one element taken from lane 0 of the next set's first register.

Each assembled vector costs one ``blend`` plus one lane-crossing ``permute``
(a circular rotate), exactly the two "data operations per vector set" the
paper counts in Section 2.2.

Larger stencil radii need further assembled vectors (offset ``±2`` etc.);
:func:`assemble_shifted` generalises the construction for any offset
``0 < |k| < vl``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.simd.machine import SimdMachine
from repro.simd.vector import Vector


def assemble_left_neighbor(
    machine: SimdMachine,
    last_of_current: Vector,
    last_of_previous: Vector,
) -> Vector:
    """Assemble the left dependent vector of a vector set (offset ``-1``).

    Parameters
    ----------
    machine:
        The simulated machine.
    last_of_current:
        Register ``vl - 1`` of the current vector set (holding the elements
        one to the left of register 0's elements, except the first one).
    last_of_previous:
        Register ``vl - 1`` of the *previous* vector set; its last lane is the
        element immediately preceding the current set.

    Returns
    -------
    Vector
        The vector of elements at offset ``-1`` from register 0's elements.
    """
    vl = machine.vl
    mask = [False] * vl
    mask[vl - 1] = True
    merged = machine.blend(last_of_current, last_of_previous, mask)
    return machine.rotate(merged, 1)


def assemble_right_neighbor(
    machine: SimdMachine,
    first_of_current: Vector,
    first_of_next: Vector,
) -> Vector:
    """Assemble the right dependent vector of a vector set (offset ``+1``).

    Mirror image of :func:`assemble_left_neighbor`: takes register 0 of the
    current set and register 0 of the *next* set, and returns the vector of
    elements at offset ``+1`` from the last register's elements.
    """
    vl = machine.vl
    mask = [False] * vl
    mask[0] = True
    merged = machine.blend(first_of_current, first_of_next, mask)
    return machine.rotate(merged, -1)


def assemble_shifted(
    machine: SimdMachine,
    current_set: Sequence[Vector],
    previous_set: Sequence[Vector],
    next_set: Sequence[Vector],
    offset: int,
) -> Vector:
    """Return the vector holding the elements at ``offset`` from register 0/last.

    For ``offset = -k`` (``k > 0``) this is the vector of elements ``k`` to the
    left of register 0's elements; for ``offset = +k`` it is the vector of
    elements ``k`` to the right of register ``vl - 1``'s elements.  Offsets
    with ``|offset| < vl`` are supported, which covers every stencil radius
    the paper evaluates (r ≤ 2 per fold step, and ``m·r < vl`` in practice).

    The construction generalises the blend+rotate of the paper: one blend to
    merge the wrap-around lanes from the neighbouring set, one lane-crossing
    rotate.  ``offset = 0`` raises, since no assembly is needed.
    """
    vl = machine.vl
    k = abs(offset)
    if offset == 0:
        raise ValueError("offset 0 needs no assembled vector")
    if k > vl:
        raise ValueError(f"|offset| must be <= vl={vl}")
    if len(current_set) != vl:
        raise ValueError("current_set must contain vl registers")
    if offset < 0:
        # Column at offset -k from register 0.  All its elements except the
        # first live in register (vl-k) mod vl of the current set (lanes
        # 0..vl-2); the first one is lane vl-1 of the previous set's register
        # of the same index.
        donor_current = current_set[(vl - k) % vl]
        donor_previous = previous_set[(vl - k) % vl]
        mask = [lane == vl - 1 for lane in range(vl)]
        merged = machine.blend(donor_current, donor_previous, mask)
        return machine.rotate(merged, 1)
    # Column at offset +k from register vl-1.  All its elements except the
    # last live in register k-1 of the current set (lanes 1..vl-1); the last
    # one is lane 0 of the next set's register k-1.
    donor_current = current_set[k - 1]
    donor_next = next_set[k - 1]
    mask = [lane == 0 for lane in range(vl)]
    merged = machine.blend(donor_current, donor_next, mask)
    return machine.rotate(merged, -1)


def neighbor_vectors_1d(
    machine: SimdMachine,
    current_set: Sequence[Vector],
    previous_set: Sequence[Vector],
    next_set: Sequence[Vector],
    radius: int,
) -> List[Vector]:
    """Return the ``2r + vl`` logical column vectors around a vector set.

    Index ``i`` of the returned list corresponds to column offset
    ``i - radius`` relative to register 0 of the current set, so the slice
    ``[i : i + 2r + 1]`` gives exactly the dependence vectors of register
    ``i``'s update for a radius-``r`` 1-D stencil.  Interior entries are the
    set's own registers (no instructions); the ``r`` leading and trailing
    entries are assembled with :func:`assemble_shifted` (2 instructions each),
    reproducing the per-set data-organisation cost of Section 2.2.
    """
    vl = machine.vl
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if radius > vl:
        raise ValueError("radius must not exceed the vector length")
    out: List[Vector] = []
    for k in range(radius, 0, -1):
        out.append(assemble_shifted(machine, current_set, previous_set, next_set, -k))
    out.extend(current_set)
    for k in range(1, radius + 1):
        out.append(assemble_shifted(machine, current_set, previous_set, next_set, +k))
    return out
