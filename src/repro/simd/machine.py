"""The simulated SIMD machine.

:class:`SimdMachine` executes the vector instructions used by the paper's
schedules with exact ``float64`` semantics while tallying every instruction
by :class:`~repro.simd.isa.InstructionClass`.  It also carries a simple
register-pressure model: schedules report their peak number of simultaneously
live vector values, and any excess over the architectural register count is
charged as spill stores/reloads — the mechanism behind the paper's
observation that naive multi-step register reuse "exacerbates excessive
register spilling" (Section 3.1).

The machine is deliberately *not* an out-of-order core model.  Converting the
instruction tallies into cycles (issue-port pressure, overlap of shuffles with
FMAs, memory bandwidth) is the cost model's job
(:mod:`repro.perfmodel.costmodel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.simd.isa import AVX2, InstructionClass, IsaSpec
from repro.simd.vector import Vector


@dataclass
class InstructionCounts:
    """Tally of executed instructions by class.

    The tally is a plain mapping plus a few derived conveniences.  Executed
    instructions are counted with integers and stay integral through
    :meth:`add`, :meth:`merge`, :meth:`scaled` and
    :meth:`SimdMachine.absorb` (integral round-trips are exact); analytically
    derived per-point averages may be fractional and reuse the same
    container with ``float`` values.
    """

    counts: Dict[InstructionClass, float] = field(default_factory=dict)

    def add(self, cls: InstructionClass, n: float = 1) -> None:
        """Add ``n`` instructions of class ``cls`` (integral ``n`` stays exact)."""
        self.counts[cls] = self.counts.get(cls, 0) + n

    def get(self, cls: InstructionClass) -> float:
        """Return the count for ``cls`` (0 when never executed)."""
        return self.counts.get(cls, 0)

    def merge(self, other: "InstructionCounts") -> "InstructionCounts":
        """Return a new tally holding the sum of ``self`` and ``other``.

        Integral counts merge to integral counts (``int + int`` stays
        ``int``); mixing with fractional counts yields floats as usual.
        """
        out = InstructionCounts(dict(self.counts))
        for cls, n in other.counts.items():
            out.add(cls, n)
        return out

    def scaled(self, factor: float) -> "InstructionCounts":
        """Return a new tally with every count multiplied by ``factor``.

        A whole-number ``factor`` (``3`` or ``3.0``) keeps integral counts
        integral — trace replay scales per-segment tallies by block counts
        and must round-trip exactly through :meth:`SimdMachine.absorb`.
        """
        if isinstance(factor, float) and factor.is_integer():
            factor = int(factor)
        return InstructionCounts({cls: n * factor for cls, n in self.counts.items()})

    @property
    def total(self) -> float:
        """Total instructions across all classes (integral when the tally is)."""
        return sum(self.counts.values())

    @property
    def arithmetic(self) -> float:
        """Arithmetic instructions (add/mul, FMA, max)."""
        return (
            self.get(InstructionClass.ARITH)
            + self.get(InstructionClass.FMA)
            + self.get(InstructionClass.MAX)
        )

    @property
    def data_organization(self) -> float:
        """Data-organisation instructions (shuffle, permute, blend, broadcast).

        This is the quantity the paper's Section 2 argues should be minimised
        and overlapped with arithmetic.
        """
        return (
            self.get(InstructionClass.SHUFFLE)
            + self.get(InstructionClass.PERMUTE)
            + self.get(InstructionClass.BLEND)
            + self.get(InstructionClass.BROADCAST)
        )

    @property
    def memory(self) -> float:
        """Memory instructions (vector loads + stores, aligned or not)."""
        return (
            self.get(InstructionClass.LOAD)
            + self.get(InstructionClass.LOADU)
            + self.get(InstructionClass.STORE)
        )

    def as_dict(self) -> Dict[str, float]:
        """Return a plain ``{class-name: count}`` dict (for reports/tests)."""
        return {cls.value: n for cls, n in sorted(self.counts.items(), key=lambda kv: kv[0].value)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{cls.value}={n:g}" for cls, n in self.counts.items())
        return f"InstructionCounts({inner})"


class SimdMachine:
    """Executes simulated SIMD instructions and accounts for them.

    Parameters
    ----------
    isa:
        The instruction set to simulate (:data:`repro.simd.isa.AVX2` or
        :data:`repro.simd.isa.AVX512`).

    Notes
    -----
    * All lane-manipulation semantics follow the Intel intrinsics they model;
      the 4×4 transpose built from :meth:`permute2f128` + :meth:`unpacklo` /
      :meth:`unpackhi` reproduces the paper's Figure 3 exactly.
    * Loads and stores address *1-D* NumPy arrays; multi-dimensional grids are
      addressed through flattened row-major views by the schedules.
    * ``aligned`` loads/stores assert the paper's 32-byte (AVX-2) or 64-byte
      (AVX-512) alignment requirement for vector sets.
    """

    def __init__(self, isa: IsaSpec = AVX2):
        self.isa = isa
        self.counts = InstructionCounts()
        self._peak_live = 0
        self._spills = 0.0

    # ------------------------------------------------------------------ #
    # accounting helpers
    # ------------------------------------------------------------------ #
    @property
    def vl(self) -> int:
        """Vector length in ``float64`` lanes."""
        return self.isa.vector_lanes

    def reset(self) -> None:
        """Clear all instruction tallies and register-pressure statistics."""
        self.counts = InstructionCounts()
        self._peak_live = 0
        self._spills = 0.0

    def _count(self, cls: InstructionClass, n: float = 1) -> None:
        self.counts.add(cls, n)

    def note_live_registers(self, live: int) -> None:
        """Record that ``live`` vector values are simultaneously live.

        If ``live`` exceeds the architectural register count, the excess is
        charged as one spill (a store now plus a reload later) per excess
        value — the simple but standard way to expose register pressure in an
        analytic model.
        """
        if live < 0:
            raise ValueError("live register count cannot be negative")
        self._peak_live = max(self._peak_live, live)
        excess = live - self.isa.registers
        if excess > 0:
            self._spills += excess
            self._count(InstructionClass.STORE, excess)
            self._count(InstructionClass.LOAD, excess)

    def absorb(self, counts: InstructionCounts, peak_live: int = 0, spills: float = 0.0) -> None:
        """Fold an externally derived tally into this machine's accounting.

        Used by the trace-replay backend (:mod:`repro.trace`), which executes
        schedules in bulk and derives the instruction tally analytically from
        the recorded trace instead of counting one instruction at a time.
        The spill stores/reloads charged by :meth:`note_live_registers` must
        already be included in ``counts`` (the recorder mirrors that
        accounting); ``spills`` only updates the :attr:`spill_count`
        statistic.
        """
        self.counts = self.counts.merge(counts)
        self._peak_live = max(self._peak_live, int(peak_live))
        self._spills += float(spills)

    @property
    def peak_live_registers(self) -> int:
        """Largest number of simultaneously live vector values reported."""
        return self._peak_live

    @property
    def spill_count(self) -> float:
        """Number of spill (store+reload) pairs charged so far."""
        return self._spills

    # ------------------------------------------------------------------ #
    # memory instructions
    # ------------------------------------------------------------------ #
    def _check_alignment(self, start: int, aligned: bool) -> None:
        if aligned and start % self.vl != 0:
            raise ValueError(
                f"aligned access at element offset {start} is not a multiple of vl={self.vl}"
            )

    def load(self, array: np.ndarray, start: int, aligned: bool = True) -> Vector:
        """Load ``vl`` consecutive doubles from ``array`` starting at ``start``."""
        array = np.asarray(array)
        if array.ndim != 1:
            raise ValueError("SimdMachine.load addresses 1-D arrays")
        if start < 0 or start + self.vl > array.size:
            raise IndexError(
                f"vector load [{start}, {start + self.vl}) out of bounds for size {array.size}"
            )
        self._check_alignment(start, aligned)
        self._count(InstructionClass.LOAD)
        return Vector(array[start : start + self.vl])

    def store(self, vec: Vector, array: np.ndarray, start: int, aligned: bool = True) -> None:
        """Store ``vec`` into ``array`` at element offset ``start``."""
        if vec.lanes != self.vl:
            raise ValueError(f"vector has {vec.lanes} lanes, machine vl is {self.vl}")
        array = np.asarray(array)
        if array.ndim != 1:
            raise ValueError("SimdMachine.store addresses 1-D arrays")
        if start < 0 or start + self.vl > array.size:
            raise IndexError(
                f"vector store [{start}, {start + self.vl}) out of bounds for size {array.size}"
            )
        self._check_alignment(start, aligned)
        self._count(InstructionClass.STORE)
        array[start : start + self.vl] = vec._raw()

    def broadcast(self, value: float) -> Vector:
        """Broadcast a scalar into every lane (``vbroadcastsd``)."""
        self._count(InstructionClass.BROADCAST)
        return Vector.broadcast(value, self.vl)

    # ------------------------------------------------------------------ #
    # arithmetic instructions
    # ------------------------------------------------------------------ #
    def _binary(self, a: Vector, b: Vector, op, cls: InstructionClass) -> Vector:
        if a.lanes != self.vl or b.lanes != self.vl:
            raise ValueError("operand width does not match machine vector length")
        self._count(cls)
        return Vector(op(a._raw(), b._raw()))

    def add(self, a: Vector, b: Vector) -> Vector:
        """Lane-wise addition (``vaddpd``)."""
        return self._binary(a, b, np.add, InstructionClass.ARITH)

    def sub(self, a: Vector, b: Vector) -> Vector:
        """Lane-wise subtraction (``vsubpd``)."""
        return self._binary(a, b, np.subtract, InstructionClass.ARITH)

    def mul(self, a: Vector, b: Vector) -> Vector:
        """Lane-wise multiplication (``vmulpd``)."""
        return self._binary(a, b, np.multiply, InstructionClass.ARITH)

    def fma(self, a: Vector, b: Vector, c: Vector) -> Vector:
        """Fused multiply-add ``a*b + c`` (``vfmadd231pd``)."""
        if a.lanes != self.vl or b.lanes != self.vl or c.lanes != self.vl:
            raise ValueError("operand width does not match machine vector length")
        self._count(InstructionClass.FMA)
        return Vector(a._raw() * b._raw() + c._raw())

    def maximum(self, a: Vector, b: Vector) -> Vector:
        """Lane-wise maximum (``vmaxpd``) — used by the APOP payoff rule."""
        return self._binary(a, b, np.maximum, InstructionClass.MAX)

    # ------------------------------------------------------------------ #
    # data-organisation instructions
    # ------------------------------------------------------------------ #
    def blend(self, a: Vector, b: Vector, mask: Sequence[bool]) -> Vector:
        """Per-lane select: lane ``i`` comes from ``b`` where ``mask[i]`` else from ``a``.

        Models ``vblendpd`` (immediate mask).
        """
        if len(mask) != self.vl:
            raise ValueError(f"blend mask must have {self.vl} entries")
        self._count(InstructionClass.BLEND)
        out = np.where(np.asarray(mask, dtype=bool), b._raw(), a._raw())
        return Vector(out)

    def permute_lanes(self, a: Vector, order: Sequence[int]) -> Vector:
        """Arbitrary lane permutation of a single register (``vpermpd`` class).

        ``order[i]`` gives the source lane of destination lane ``i``.  This is
        a lane-crossing permute and is billed as :class:`InstructionClass.PERMUTE`.
        """
        if len(order) != self.vl:
            raise ValueError(f"permutation must have {self.vl} entries")
        if sorted(int(i) for i in order) != list(range(self.vl)):
            # vpermpd allows arbitrary (even duplicating) selections; we only
            # validate the range so schedules can duplicate lanes when needed.
            if any(not (0 <= int(i) < self.vl) for i in order):
                raise ValueError("permutation indices out of range")
        self._count(InstructionClass.PERMUTE)
        raw = a._raw()
        return Vector(raw[np.asarray(order, dtype=int)])

    def rotate(self, a: Vector, shift: int) -> Vector:
        """Circularly rotate the lanes of ``a`` by ``shift`` positions.

        Positive ``shift`` rotates towards higher lane indices (i.e. the value
        previously in lane 0 moves to lane ``shift``).  Implemented as one
        lane-crossing permute, matching the paper's "permute operation to
        shift the components ... circularly" (Section 2.2).
        """
        order = [(i - shift) % self.vl for i in range(self.vl)]
        return self.permute_lanes(a, order)

    def unpacklo(self, a: Vector, b: Vector) -> Vector:
        """``vunpcklpd``: interleave the low double of every 128-bit lane."""
        self._count(InstructionClass.SHUFFLE)
        return Vector(self._unpack_raw(a, b, low=True))

    def unpackhi(self, a: Vector, b: Vector) -> Vector:
        """``vunpckhpd``: interleave the high double of every 128-bit lane."""
        self._count(InstructionClass.SHUFFLE)
        return Vector(self._unpack_raw(a, b, low=False))

    def _unpack_raw(self, a: Vector, b: Vector, low: bool) -> np.ndarray:
        if a.lanes != self.vl or b.lanes != self.vl:
            raise ValueError("operand width does not match machine vector length")
        ar, br = a._raw(), b._raw()
        out = np.empty(self.vl, dtype=np.float64)
        pick = 0 if low else 1
        for lane in range(self.vl // 2):
            out[2 * lane] = ar[2 * lane + pick]
            out[2 * lane + 1] = br[2 * lane + pick]
        return out

    def permute2f128(self, a: Vector, b: Vector, sel_lo: int, sel_hi: int) -> Vector:
        """``vperm2f128``-style selection of two 128-bit lanes (AVX-2, vl=4).

        The selectors name one of the four available 128-bit lanes:
        ``0`` = low lane of ``a``, ``1`` = high lane of ``a``,
        ``2`` = low lane of ``b``, ``3`` = high lane of ``b``.
        """
        if self.vl != 4:
            raise ValueError("permute2f128 is only defined for the 4-lane (AVX-2) machine")
        self._count(InstructionClass.PERMUTE)
        halves = [a._raw()[0:2], a._raw()[2:4], b._raw()[0:2], b._raw()[2:4]]
        for sel in (sel_lo, sel_hi):
            if not 0 <= sel <= 3:
                raise ValueError("permute2f128 selectors must be in [0, 3]")
        return Vector(np.concatenate([halves[sel_lo], halves[sel_hi]]))

    def exchange_blocks(self, a: Vector, b: Vector, block: int, high: bool) -> Vector:
        """Generic two-source block exchange used by the register transpose.

        Both operands are viewed as consecutive blocks of ``block`` lanes.
        The ``low`` result (``high=False``) interleaves the even-indexed
        blocks of ``a`` and ``b``; the ``high`` result interleaves the
        odd-indexed blocks:

        ``low  = [a0, b0, a2, b2, ...]``  /  ``high = [a1, b1, a3, b3, ...]``

        With ``block == vl//2`` this is exactly ``permute2f128`` (AVX-2) or
        ``vshuff64x2`` (AVX-512); with ``block == 1`` it is ``unpacklo`` /
        ``unpackhi``.  Accounting: billed as an in-lane ``SHUFFLE`` when
        ``block == 1`` and as a lane-crossing ``PERMUTE`` otherwise.
        """
        if a.lanes != self.vl or b.lanes != self.vl:
            raise ValueError("operand width does not match machine vector length")
        if block < 1 or self.vl % (2 * block) != 0:
            raise ValueError(f"invalid block size {block} for vl={self.vl}")
        cls = InstructionClass.SHUFFLE if block == 1 else InstructionClass.PERMUTE
        self._count(cls)
        ar = a._raw().reshape(-1, block)
        br = b._raw().reshape(-1, block)
        start = 1 if high else 0
        pieces: List[np.ndarray] = []
        for idx in range(start, ar.shape[0], 2):
            pieces.append(ar[idx])
            pieces.append(br[idx])
        return Vector(np.concatenate(pieces))

    # ------------------------------------------------------------------ #
    # composite helpers
    # ------------------------------------------------------------------ #
    def weighted_sum(self, vectors: Sequence[Vector], weights: Sequence[float]) -> Vector:
        """Compute ``sum_i weights[i] * vectors[i]`` with broadcast + FMA chain.

        The weights are broadcast once each (billed as broadcasts) and the sum
        is accumulated with one multiply followed by FMAs, the instruction mix
        the paper's folding kernels use.
        """
        if len(vectors) != len(weights):
            raise ValueError("vectors and weights must have the same length")
        if not vectors:
            raise ValueError("weighted_sum needs at least one term")
        wvecs = [self.broadcast(w) for w in weights]
        acc = self.mul(vectors[0], wvecs[0])
        for vec, w in zip(vectors[1:], wvecs[1:]):
            acc = self.fma(vec, w, acc)
        return acc
