"""Vector register values.

A :class:`Vector` is the value held by one simulated SIMD register: a small,
fixed-length tuple of ``float64`` lanes backed by a NumPy array.  Vectors are
immutable — every machine instruction returns a new :class:`Vector` — which
keeps schedules easy to reason about and makes accidental aliasing between
"registers" impossible.

Lane numbering follows the memory order convention of the Intel intrinsics
guide: lane 0 is the lowest-addressed element of a load.  128-bit *lanes*
(pairs of doubles) matter for the in-lane/lane-crossing distinction of the
shuffle instructions and are exposed via :meth:`Vector.lane128`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np


class Vector:
    """An immutable SIMD register value of ``vl`` ``float64`` lanes."""

    __slots__ = ("_data",)

    def __init__(self, data: Sequence[float] | np.ndarray):
        arr = np.array(data, dtype=np.float64, copy=True)
        if arr.ndim != 1:
            raise ValueError("a Vector is one-dimensional")
        if arr.size not in (2, 4, 8, 16):
            raise ValueError(f"unsupported vector length {arr.size}")
        arr.setflags(write=False)
        self._data = arr

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def broadcast(value: float, lanes: int) -> "Vector":
        """Return a vector with every lane equal to ``value``."""
        return Vector(np.full(lanes, float(value), dtype=np.float64))

    @staticmethod
    def zeros(lanes: int) -> "Vector":
        """Return the all-zero vector of width ``lanes``."""
        return Vector(np.zeros(lanes, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def lanes(self) -> int:
        """Number of ``float64`` lanes."""
        return int(self._data.size)

    def to_array(self) -> np.ndarray:
        """Return a writable copy of the lane values."""
        return self._data.copy()

    def lane(self, i: int) -> float:
        """Return lane ``i`` as a Python float."""
        return float(self._data[i])

    def lane128(self, i: int) -> np.ndarray:
        """Return 128-bit lane ``i`` (a pair of doubles) as a read-only view."""
        return self._data[2 * i : 2 * i + 2]

    def __iter__(self) -> Iterator[float]:
        return iter(self._data.tolist())

    def __len__(self) -> int:
        return self.lanes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return bool(np.array_equal(self._data, other._data))

    def __hash__(self) -> int:  # pragma: no cover - Vectors are rarely hashed
        return hash(self._data.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:g}" for v in self._data)
        return f"Vector[{vals}]"

    # ------------------------------------------------------------------ #
    # raw (un-accounted) helpers used internally by the machine
    # ------------------------------------------------------------------ #
    def _raw(self) -> np.ndarray:
        """Internal read-only view of the lane data (no copy)."""
        return self._data


def as_vectors(values: Iterable[Iterable[float]]) -> list[Vector]:
    """Convenience: build a list of :class:`Vector` from nested iterables."""
    return [Vector(np.asarray(list(v), dtype=np.float64)) for v in values]
