"""In-register ``vl × vl`` matrix transposes (paper Section 2.3, Figure 3).

The transpose layout of Section 2 requires transposing a small ``vl × vl``
matrix held in ``vl`` vector registers, twice per vector set (once before and
once after the stencil computation, the second one optionally fused with the
weighting — the "weighted transpose" of Figure 5).

The paper's improved AVX-2 kernel uses two stages of single-cycle,
non-parameterised instructions:

* stage 1 — ``permute2f128`` exchanges the 128-bit halves of register pairs
  with distance 2,
* stage 2 — ``unpacklo`` / ``unpackhi`` exchange single doubles between
  adjacent registers,

for a total of **8 instructions** on 4 registers.  The AVX-512 version has
three stages (the last one in-lane) for 24 instructions on 8 registers.

Both are instances of the classic recursive block transpose: at block size
``b`` (descending powers of two from ``vl/2`` to 1), registers ``i`` and
``i + b`` within each group of ``2b`` exchange alternating blocks of ``b``
lanes.  :func:`register_transpose` implements the generic algorithm on the
simulated machine; :func:`transpose_4x4` additionally spells out the exact
AVX-2 instruction sequence of Figure 3 so its instruction count can be
checked instruction-by-instruction.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.simd.machine import SimdMachine
from repro.simd.vector import Vector


def transpose_4x4(machine: SimdMachine, vectors: Sequence[Vector]) -> List[Vector]:
    """Transpose four 4-lane registers with the paper's 8-instruction kernel.

    Parameters
    ----------
    machine:
        A 4-lane (AVX-2) :class:`~repro.simd.machine.SimdMachine`.
    vectors:
        Four vectors, register ``i`` holding row ``i`` of the matrix.

    Returns
    -------
    list of Vector
        Four vectors, register ``i`` holding *column* ``i`` of the input.
    """
    if machine.vl != 4:
        raise ValueError("transpose_4x4 requires a 4-lane machine")
    if len(vectors) != 4:
        raise ValueError("transpose_4x4 requires exactly 4 vectors")
    v0, v1, v2, v3 = vectors
    # Stage 1: exchange 128-bit halves between registers with distance 2
    # (paper Figure 3, PERMUTE2F128).
    t0 = machine.permute2f128(v0, v2, 0, 2)  # [A B | I J]
    t1 = machine.permute2f128(v1, v3, 0, 2)  # [E F | M N]
    t2 = machine.permute2f128(v0, v2, 1, 3)  # [C D | K L]
    t3 = machine.permute2f128(v1, v3, 1, 3)  # [G H | O P]
    # Stage 2: interleave doubles between adjacent registers (UNPACKLO/HI).
    r0 = machine.unpacklo(t0, t1)  # [A E | I M]
    r1 = machine.unpackhi(t0, t1)  # [B F | J N]
    r2 = machine.unpacklo(t2, t3)  # [C G | K O]
    r3 = machine.unpackhi(t2, t3)  # [D H | L P]
    return [r0, r1, r2, r3]


def transpose_8x8(machine: SimdMachine, vectors: Sequence[Vector]) -> List[Vector]:
    """Transpose eight 8-lane registers in three stages (24 instructions).

    This is the AVX-512 analogue of Figure 3: two lane-crossing stages
    followed by one in-lane ``unpack`` stage, as described in the paper's
    Section 2.3.
    """
    if machine.vl != 8:
        raise ValueError("transpose_8x8 requires an 8-lane machine")
    if len(vectors) != 8:
        raise ValueError("transpose_8x8 requires exactly 8 vectors")
    return register_transpose(machine, vectors)


def register_transpose(machine: SimdMachine, vectors: Sequence[Vector]) -> List[Vector]:
    """Transpose ``vl`` registers of ``vl`` lanes on the simulated machine.

    Generic recursive block-exchange transpose: ``log2(vl)`` stages of ``vl``
    instructions each.  For ``vl = 4`` it executes the same number (and
    classes) of instructions as :func:`transpose_4x4`; for ``vl = 8`` it is
    the 24-instruction AVX-512 kernel.

    Parameters
    ----------
    machine:
        The simulated machine whose vector length matches ``len(vectors)``.
    vectors:
        ``vl`` vectors; register ``i`` holds row ``i``.

    Returns
    -------
    list of Vector
        ``vl`` vectors; register ``i`` holds column ``i`` of the input.
    """
    vl = machine.vl
    if len(vectors) != vl:
        raise ValueError(f"register_transpose requires exactly vl={vl} vectors")
    for v in vectors:
        if v.lanes != vl:
            raise ValueError("all vectors must have vl lanes")

    regs = list(vectors)
    block = vl // 2
    while block >= 1:
        new_regs: List[Vector] = list(regs)
        group = 2 * block
        for base in range(0, vl, group):
            for i in range(base, base + block):
                j = i + block
                low = machine.exchange_blocks(regs[i], regs[j], block, high=False)
                high = machine.exchange_blocks(regs[i], regs[j], block, high=True)
                new_regs[i] = low
                new_regs[j] = high
        regs = new_regs
        block //= 2
    return regs


def transpose_cost(vl: int) -> int:
    """Instruction count of the in-register transpose for vector length ``vl``.

    ``vl * log2(vl)``: 8 for AVX-2, 24 for AVX-512 (paper Section 2.3).
    """
    stages = 0
    v = vl
    while v > 1:
        v //= 2
        stages += 1
    return vl * stages
