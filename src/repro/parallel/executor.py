"""Concurrent executors: tessellation tiles and plan batches.

Two thread-pool executors live here:

* :func:`tessellate_run_parallel` runs the tiles of each tessellation stage
  concurrently.  The point of this executor in the reproduction is
  *correctness under concurrency*: tiles of one stage touch disjoint regions
  and depend only on completed earlier stages, so executing them in
  arbitrary interleavings must give exactly the reference result — which the
  integration tests assert.  (CPython threads do not provide real parallel
  speedup for this Python-level code; the performance side of the multicore
  experiments comes from :mod:`repro.parallel.model`.)

* :func:`run_plan_batch` fans one compiled plan
  (:class:`repro.core.plan.CompiledPlan`) out over many grids — the
  run-many half of the compile-once/run-many API.  Because a plan's ``run``
  is pure and its folding schedule is frozen at compile time, the batch
  result is bit-identical to the sequential loop for any worker count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.parallel.partition import partition_tiles
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.tiling.schedule import Tile
from repro.tiling.tessellate import TessellationConfig, build_tessellation, update_region


def _run_tile(
    spec: StencilSpec,
    tile: Tile,
    arrays,
    parity: int,
    boundary,
    aux: Optional[np.ndarray],
) -> None:
    """Execute every local time step of one tile."""
    for t, regions in enumerate(tile.steps, start=1):
        src = arrays[(parity + t - 1) % 2]
        dst = arrays[(parity + t) % 2]
        for region in regions:
            update_region(spec, src, dst, region, boundary, aux=aux)


def tessellate_run_parallel(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    config: TessellationConfig,
    workers: int = 4,
) -> np.ndarray:
    """Run ``steps`` time steps of tessellate tiling with concurrent tiles.

    Parameters
    ----------
    spec:
        Stencil to execute.
    grid:
        Initial grid.
    steps:
        Total time steps (the last pass shrinks its time range if needed).
    config:
        Tessellation block sizes and time range.
    workers:
        Thread-pool size; tiles of each stage are partitioned across the
        workers and stages are separated by a barrier (pool join), exactly
        mirroring the OpenMP structure the paper uses.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    radius = spec.radius
    arrays = [grid.values.copy(), np.empty_like(grid.values)]
    aux = grid.aux
    parity = 0
    done = 0
    while done < steps:
        tr = min(config.time_range, steps - done)
        pass_config = TessellationConfig(block_sizes=config.block_sizes, time_range=tr)
        schedule = build_tessellation(grid.shape, radius, pass_config, grid.boundary)
        for stage in schedule.stages:
            buckets = partition_tiles(stage, workers)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = []
                for bucket in buckets:
                    for tile in bucket:
                        futures.append(
                            pool.submit(
                                _run_tile, spec, tile, arrays, parity, grid.boundary, aux
                            )
                        )
                for fut in futures:
                    fut.result()
        done += tr
        parity = (parity + tr) % 2
    return arrays[parity]


#: Default fan-out of :func:`run_plan_batch` when the plan itself is not
#: configured with a worker pool.
DEFAULT_BATCH_WORKERS = 8


def map_ordered(fn, items: Sequence[Any], workers: int) -> List[Any]:
    """Apply ``fn`` over ``items`` on a thread pool, preserving input order.

    The shared fan-out primitive of the batch executor and the study sweep
    runner (:mod:`repro.study`): ``workers`` is capped at the item count,
    ``workers=1`` degenerates to a plain sequential loop, and the result
    list matches ``[fn(item) for item in items]`` element-for-element for
    any worker count — which is exactly the determinism contract both
    callers expose.  ``fn`` must be pure (or at least thread-safe) for that
    contract to hold.
    """
    items = list(items)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not items:
        return []
    workers = min(workers, len(items))
    if workers == 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        # map() preserves input order by contract.
        return list(pool.map(fn, items))


def run_plan_batch(
    plan: Any,
    grids: Sequence[Grid],
    steps: int,
    workers: Optional[int] = None,
) -> List[np.ndarray]:
    """Run one compiled plan over many grids on a thread pool.

    The schedule, profile and configuration were all resolved when the plan
    was compiled, so the per-grid work is a pure function of the grid — the
    expensive :class:`~repro.core.vectorized_folding.FoldingSchedule`
    construction is amortised across the whole batch and the results are
    bit-identical to ``[plan.run(g, steps) for g in grids]`` in input order.

    Parameters
    ----------
    plan:
        A :class:`repro.core.plan.CompiledPlan` (duck-typed: anything with a
        pure ``run(grid, steps)`` and a ``config.workers`` attribute works).
    grids:
        The grids to advance; results are returned in the same order.
    steps:
        Time steps to advance every grid by.
    workers:
        Thread-pool width; defaults to the plan's configured ``workers``
        (``plan(...).parallel(n)``, including an explicit sequential
        ``n=1``) or :data:`DEFAULT_BATCH_WORKERS` when the plan left it
        unconfigured, capped at the batch size.
    """
    grids = list(grids)
    if workers is None:
        configured = getattr(plan.config, "workers", None)
        workers = DEFAULT_BATCH_WORKERS if configured is None else int(configured)
    return map_ordered(lambda grid: plan.run(grid, steps), grids, workers)
