"""Multicore execution substrate.

Three pieces:

* :mod:`repro.parallel.partition` — assigns the tiles of one tessellation
  stage to cores (greedy balanced partitioning),
* :mod:`repro.parallel.executor` — thread-pool executors: one runs the
  tiles of each tessellation stage concurrently (tiles of one stage are
  disjoint and only depend on earlier stages, so the concurrent execution is
  race-free and validated against the reference in the tests), the other
  fans a compiled plan out over a batch of grids
  (:func:`~repro.parallel.executor.run_plan_batch`),
* :mod:`repro.parallel.model` — the analytic multicore model (shared memory
  bandwidth, AVX-512 frequency throttling, stage-barrier overhead and load
  imbalance) that produces the scalability curves of the paper's Figure 10 /
  Table 3.

Python threads cannot demonstrate real 36-core speedups (the experiments'
performance numbers come from the model), but the executor demonstrates that
the tile schedule itself is correct under concurrency, which is the part a
downstream user would reuse.
"""

from repro.parallel.partition import partition_tiles
from repro.parallel.executor import run_plan_batch, tessellate_run_parallel
from repro.parallel.model import (
    MulticoreConfig,
    multicore_estimate,
    scalability_curve,
    speedup_over_single_core,
)

__all__ = [
    "partition_tiles",
    "run_plan_batch",
    "tessellate_run_parallel",
    "MulticoreConfig",
    "multicore_estimate",
    "scalability_curve",
    "speedup_over_single_core",
]
