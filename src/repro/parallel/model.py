"""Analytic multicore performance model.

Extends the single-core cost model of :mod:`repro.perfmodel.costmodel` with
the three effects that shape the paper's scalability results (Figure 10,
Table 3):

* **memory-bandwidth sharing** — the per-socket DRAM bandwidth is divided
  between the active cores (already handled by
  :meth:`repro.machine.MachineSpec.memory_bytes_per_cycle`), which is what
  flattens the curves of the memory-bound 3-D stencils;
* **frequency throttling** — the clock drops as more cores activate, and
  further under heavy AVX-512 use (the paper observes 3.70 → 3.00 → 2.10 GHz
  on its Xeon Gold 6140);
* **tile-scheduling overheads** — each tessellation stage ends with a
  barrier, and the tiles of a stage may not divide evenly across the cores;
  both effects grow with the core count and shrink with the problem size.

The model works entirely from the method profile, the tiling configuration
and the machine description, so the harness can sweep stencils × methods ×
core counts cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.machine import MachineSpec
from repro.perfmodel.costmodel import PerformanceEstimate, estimate_performance
from repro.perfmodel.profiles import MethodProfile
from repro.tiling.tessellate import TessellationConfig, cache_reuse_factors


@dataclass(frozen=True)
class MulticoreConfig:
    """Parameters of the multicore model.

    Attributes
    ----------
    barrier_cycles:
        Cycles charged per stage barrier per core (covers the OpenMP fork/join
        and the cache-line ping-pong of the barrier itself).
    imbalance_exponent:
        Strength of the load-imbalance penalty: the efficiency is modelled as
        ``(tiles_per_stage / ceil(tiles_per_stage / cores) / cores) **
        imbalance_exponent`` — 1.0 uses the plain ceiling argument.
    """

    barrier_cycles: float = 20000.0
    imbalance_exponent: float = 1.0


def _tiles_per_stage(
    grid_shape: Sequence[int], tiling: Optional[TessellationConfig]
) -> float:
    """Approximate number of concurrent tiles per tessellation stage."""
    if tiling is None:
        return float(np.prod([max(1, s // 64) for s in grid_shape]))
    count = 1.0
    for extent, block in zip(grid_shape, tiling.block_sizes):
        if block is None:
            continue
        count *= max(1, extent // block)
    return max(count, 1.0)


def _imbalance_efficiency(tiles: float, cores: int, exponent: float) -> float:
    """Fraction of ideal throughput retained after load imbalance."""
    if cores <= 1:
        return 1.0
    waves = np.ceil(tiles / cores)
    ideal_waves = tiles / cores
    eff = ideal_waves / waves if waves > 0 else 1.0
    return float(eff ** exponent)


def multicore_estimate(
    profile: MethodProfile,
    grid_shape: Sequence[int],
    time_steps: int,
    machine: MachineSpec,
    cores: int,
    radius: int,
    tiling: Optional[TessellationConfig] = None,
    config: MulticoreConfig = MulticoreConfig(),
) -> PerformanceEstimate:
    """Estimate aggregate performance on ``cores`` cores.

    Parameters
    ----------
    profile:
        Steady-state method profile (its temporal reuse is extended by the
        tiling configuration passed here).
    grid_shape:
        Spatial problem size.
    time_steps:
        Total time steps of the run.
    machine:
        Machine description.
    cores:
        Active cores (1 … machine.total_cores).
    radius:
        Stencil radius, needed for the tile working-set estimate.
    tiling:
        Tessellation configuration providing temporal cache reuse and the
        stage/tile structure; ``None`` models an untiled (stream) execution.
    config:
        Overhead parameters.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    npoints = int(np.prod(grid_shape))

    effective_profile = profile
    stages = 1
    time_range = 1
    if tiling is not None:
        caches = [(lvl.name, lvl.capacity_bytes) for lvl in machine.caches]
        reuse = cache_reuse_factors(
            tiling, radius, 8.0 * profile.arrays, caches
        )
        effective_profile = profile.with_tiling(reuse)
        stages = sum(1 for b in tiling.block_sizes if b is not None) + 1
        time_range = tiling.time_range

    tiles = _tiles_per_stage(grid_shape, tiling)
    efficiency = _imbalance_efficiency(tiles, cores, config.imbalance_exponent)

    # Barrier overhead per point per time step: one barrier per stage per
    # pass of `time_range` steps, paid by every core, amortised over the
    # points a core updates during that pass.
    points_per_core_pass = max(1.0, npoints * time_range / cores)
    sync_cycles_per_point = stages * config.barrier_cycles / points_per_core_pass

    est = estimate_performance(
        effective_profile,
        npoints=npoints,
        time_steps=time_steps,
        machine=machine,
        active_cores=cores,
        sync_overhead_cycles_per_point=sync_cycles_per_point,
    )
    if efficiency < 1.0:
        est = PerformanceEstimate(
            gflops=est.gflops * efficiency,
            gflops_per_core=est.gflops_per_core * efficiency,
            cycles_per_point=est.cycles_per_point / efficiency,
            compute_cycles_per_point=est.compute_cycles_per_point,
            memory_cycles_per_point=est.memory_cycles_per_point,
            bound=est.bound,
            frequency_ghz=est.frequency_ghz,
            residency=est.residency,
        )
    return est


def scalability_curve(
    profile: MethodProfile,
    grid_shape: Sequence[int],
    time_steps: int,
    machine: MachineSpec,
    cores_list: Sequence[int],
    radius: int,
    tiling: Optional[TessellationConfig] = None,
    config: MulticoreConfig = MulticoreConfig(),
) -> Dict[int, PerformanceEstimate]:
    """Sweep ``cores_list`` and return the estimate for each core count."""
    return {
        cores: multicore_estimate(
            profile, grid_shape, time_steps, machine, cores, radius, tiling, config
        )
        for cores in cores_list
    }


def speedup_over_single_core(curve: Dict[int, PerformanceEstimate]) -> Dict[int, float]:
    """Convert a scalability curve into speedups relative to one core."""
    if 1 not in curve:
        raise ValueError("the curve must contain the single-core point")
    base = curve[1].gflops
    if base <= 0:
        raise ValueError("single-core estimate must be positive")
    return {cores: est.gflops / base for cores, est in curve.items()}
