"""Tile-to-core partitioning.

Tessellation stages contain independent tiles of (roughly) equal size; the
partitioner distributes them across cores with a greedy longest-processing-
time heuristic, which is what an OpenMP dynamic/guided schedule converges to
for this kind of workload.  The resulting per-core point counts are also the
source of the load-imbalance factor used by the analytic multicore model.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.tiling.schedule import Tile, TileStage


def partition_tiles(stage: TileStage, cores: int) -> List[List[Tile]]:
    """Partition the tiles of ``stage`` across ``cores`` workers.

    Greedy LPT: tiles are sorted by decreasing point count and each is placed
    on the currently least-loaded worker.

    Returns a list of ``cores`` tile lists (some possibly empty when the
    stage has fewer tiles than workers).
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    buckets: List[List[Tile]] = [[] for _ in range(cores)]
    loads = [0] * cores
    for tile in sorted(stage.tiles, key=lambda t: -t.points_updated()):
        target = min(range(cores), key=lambda c: loads[c])
        buckets[target].append(tile)
        loads[target] += tile.points_updated()
    return buckets


def stage_imbalance(stage: TileStage, cores: int) -> float:
    """Load-imbalance factor of ``stage`` on ``cores`` workers (``>= 1``).

    Defined as ``max(core points) / mean(core points)``; 1.0 means perfectly
    balanced.  Empty stages return 1.0.
    """
    total = stage.points_updated()
    if total == 0:
        return 1.0
    buckets = partition_tiles(stage, cores)
    per_core = [sum(t.points_updated() for t in bucket) for bucket in buckets]
    mean = total / cores
    return max(per_core) / mean if mean > 0 else 1.0


def schedule_imbalance(stages: Sequence[TileStage], cores: int) -> float:
    """Point-weighted average load imbalance over all stages."""
    total = sum(stage.points_updated() for stage in stages)
    if total == 0:
        return 1.0
    acc = 0.0
    for stage in stages:
        pts = stage.points_updated()
        if pts == 0:
            continue
        acc += stage_imbalance(stage, cores) * pts
    return acc / total
