"""Tiling frameworks.

* :mod:`repro.tiling.spatial` — plain rectangular spatial blocking (no
  temporal reuse), used as a building block and for ablations,
* :mod:`repro.tiling.tessellate` — tessellate tiling (Yuan et al., SC'17),
  the temporal tiling framework the paper integrates its vectorization with:
  the iteration space is covered by ``d + 1`` stages of tiles
  (triangles / inverted triangles in 1-D and their tensor products in higher
  dimensions); tiles within one stage are independent, so they run
  concurrently without redundant computation,
* :mod:`repro.tiling.splittiling` — the split/nested tiling configuration of
  the SDSL baseline (Henretty et al.), expressed with the same machinery but
  constrained by the DLT layout,
* :mod:`repro.tiling.schedule` — the tile-schedule data structures shared by
  the executors, the multiprocessing runner and the multicore model.
"""

from repro.tiling.schedule import Tile, TileStage, TileSchedule
from repro.tiling.spatial import spatial_blocks, blocked_reference_run
from repro.tiling.tessellate import (
    TessellationConfig,
    build_tessellation,
    tessellate_run,
)
from repro.tiling.splittiling import SplitTilingConfig, split_tiling_run

__all__ = [
    "Tile",
    "TileStage",
    "TileSchedule",
    "spatial_blocks",
    "blocked_reference_run",
    "TessellationConfig",
    "build_tessellation",
    "tessellate_run",
    "SplitTilingConfig",
    "split_tiling_run",
]
