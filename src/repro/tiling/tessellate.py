"""Tessellate tiling (Yuan et al., SC'17) — the paper's tiling framework.

The iteration space of ``TR`` consecutive time steps is covered by ``d + 1``
*stages* of tiles.  Each spatial dimension is decomposed into alternating
**triangle** and **inverted-triangle** components:

* a triangle owns a base interval of length ``B`` and shrinks by the stencil
  radius ``r`` on both sides every time step, so it never needs data from
  outside itself within the pass;
* an inverted triangle sits on the boundary between two triangles and grows
  by ``r`` per step, consuming exactly the staircase the triangles left
  behind.

A d-dimensional tile is a tensor product of per-dimension components; its
stage is the number of inverted components.  Tiles of one stage are mutually
independent (they only depend on earlier stages), every grid point is updated
exactly once per time step (no redundant computation — the key advantage
over overlapped/ghost-zone tiling), and the whole pass works in-place on the
usual two Jacobi arrays.

The module provides the schedule builder (:func:`build_tessellation`), a
sequential executor validated against the reference
(:func:`tessellate_run`), and the per-tile region update helper reused by the
parallel executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.stencils.boundary import BoundaryCondition, DIRICHLET_VALUE
from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.tiling.schedule import Region, Tile, TileSchedule, TileStage


@dataclass(frozen=True)
class TessellationConfig:
    """Configuration of a tessellate tiling.

    Attributes
    ----------
    block_sizes:
        Base extent of the triangle components per dimension.  ``None`` for a
        dimension means "do not tile this dimension in time" (a single
        full-extent component) — used by the split-tiling baseline and by
        streaming dimensions.
    time_range:
        Time steps ``TR`` advanced by one pass over the stages.  Every tiled
        dimension must satisfy ``block >= 2 * radius * TR``.
    """

    block_sizes: Tuple[Optional[int], ...]
    time_range: int

    def validate(self, grid_shape: Sequence[int], radius: int) -> None:
        """Check the configuration against a grid and stencil radius."""
        if self.time_range < 1:
            raise ValueError("time_range must be >= 1")
        if len(self.block_sizes) != len(grid_shape):
            raise ValueError("block_sizes must match the grid dimensionality")
        for extent, block in zip(grid_shape, self.block_sizes):
            if block is None:
                continue
            if block <= 0:
                raise ValueError("block sizes must be positive")
            if extent % block != 0:
                raise ValueError(
                    f"extent {extent} is not divisible by the block size {block}"
                )
            if block < 2 * radius * self.time_range:
                raise ValueError(
                    f"block size {block} is too small for radius {radius} and "
                    f"time range {self.time_range} (needs >= {2 * radius * self.time_range})"
                )


# --------------------------------------------------------------------------- #
# per-dimension component intervals
# --------------------------------------------------------------------------- #
def _triangle_intervals(
    block_index: int, block: int, radius: int, step: int
) -> List[Tuple[int, int]]:
    """Interval updated by triangle ``block_index`` at local step ``step`` (1-based)."""
    start = block_index * block + step * radius
    stop = (block_index + 1) * block - step * radius
    if start >= stop:
        return []
    return [(start, stop)]


def _inverted_intervals(
    boundary_pos: int,
    extent: int,
    radius: int,
    step: int,
    boundary: BoundaryCondition,
) -> List[Tuple[int, int]]:
    """Interval(s) updated by the inverted component at ``boundary_pos``.

    The inverted triangle is centred on the block boundary; with periodic
    boundaries the component at position 0 wraps around the end of the
    dimension and is represented as two intervals.
    """
    lo = boundary_pos - step * radius
    hi = boundary_pos + step * radius
    if lo >= hi:
        return []
    if boundary is BoundaryCondition.PERIODIC:
        if lo < 0:
            return [(lo % extent, extent), (0, hi)]
        return [(lo, hi)]
    return [(max(0, lo), min(extent, hi))]


def _dimension_components(
    extent: int,
    block: Optional[int],
    radius: int,
    time_range: int,
    boundary: BoundaryCondition,
) -> List[Tuple[int, List[List[Tuple[int, int]]]]]:
    """Enumerate the components of one dimension.

    Returns a list of ``(inverted_flag, per_step_intervals)`` where
    ``per_step_intervals[t]`` is the list of intervals updated at local step
    ``t + 1``.  A ``block`` of ``None`` yields a single full-extent component
    flagged as not inverted.
    """
    if block is None:
        full = [[(0, extent)] for _ in range(time_range)]
        return [(0, full)]
    nblocks = extent // block
    components: List[Tuple[int, List[List[Tuple[int, int]]]]] = []
    for k in range(nblocks):
        steps = [_triangle_intervals(k, block, radius, t) for t in range(1, time_range + 1)]
        components.append((0, steps))
    if boundary is BoundaryCondition.PERIODIC:
        boundaries = [k * block for k in range(nblocks)]
    else:
        boundaries = [k * block for k in range(nblocks + 1)]
    for pos in boundaries:
        steps = [
            _inverted_intervals(pos, extent, radius, t, boundary)
            for t in range(1, time_range + 1)
        ]
        components.append((1, steps))
    return components


# --------------------------------------------------------------------------- #
# schedule construction
# --------------------------------------------------------------------------- #
def build_tessellation(
    grid_shape: Sequence[int],
    radius: int,
    config: TessellationConfig,
    boundary: BoundaryCondition = BoundaryCondition.PERIODIC,
) -> TileSchedule:
    """Build the tessellate tile schedule for one pass of ``config.time_range`` steps.

    Parameters
    ----------
    grid_shape:
        Spatial extents of the grid.
    radius:
        Stencil radius ``r`` (per time step).
    config:
        Block sizes and time range.
    boundary:
        Boundary condition; it determines how many inverted components each
        dimension has and whether they wrap.
    """
    grid_shape = tuple(int(s) for s in grid_shape)
    config.validate(grid_shape, radius)
    per_dim = [
        _dimension_components(extent, block, radius, config.time_range, boundary)
        for extent, block in zip(grid_shape, config.block_sizes)
    ]

    dims = len(grid_shape)
    stages_tiles: List[List[Tile]] = [[] for _ in range(dims + 1)]
    tile_id = 0

    def _product(dim: int, chosen: List[Tuple[int, List[List[Tuple[int, int]]]]]) -> None:
        nonlocal tile_id
        if dim == dims:
            stage = sum(flag for flag, _ in chosen)
            steps: List[Tuple[Region, ...]] = []
            for t in range(config.time_range):
                regions: List[Region] = []
                per_dim_intervals = [steps_list[t] for _flag, steps_list in chosen]
                # Cartesian product of the per-dimension interval lists.
                def _regions(d: int, prefix: List[Tuple[int, int]]) -> None:
                    if d == dims:
                        regions.append(tuple(prefix))
                        return
                    for interval in per_dim_intervals[d]:
                        prefix.append(interval)
                        _regions(d + 1, prefix)
                        prefix.pop()

                if all(per_dim_intervals):
                    _regions(0, [])
                steps.append(tuple(regions))
            if any(steps):
                stages_tiles[stage].append(
                    Tile(tile_id=tile_id, stage=stage, steps=tuple(steps))
                )
                tile_id += 1
            return
        for component in per_dim[dim]:
            chosen.append(component)
            _product(dim + 1, chosen)
            chosen.pop()

    _product(0, [])

    stages = tuple(
        TileStage(index=i, tiles=tuple(tiles))
        for i, tiles in enumerate(stages_tiles)
        if tiles
    )
    # Re-index stages densely (a dimension with block=None contributes no
    # inverted components, so some stage numbers may be empty).
    stages = tuple(
        TileStage(index=i, tiles=stage.tiles) for i, stage in enumerate(stages)
    )
    return TileSchedule(stages=stages, grid_shape=grid_shape, time_range=config.time_range)


# --------------------------------------------------------------------------- #
# region update + executor
# --------------------------------------------------------------------------- #
def update_region(
    spec: StencilSpec,
    src: np.ndarray,
    dst: np.ndarray,
    region: Region,
    boundary: BoundaryCondition,
    aux: Optional[np.ndarray] = None,
) -> None:
    """Apply one stencil update to the points of ``region``.

    Reads neighbours from ``src`` (wrapping or reading the constant halo
    according to ``boundary``) and writes the updated values into ``dst`` at
    the region.  Used by the tessellation executors, the split-tiling
    baseline and the parallel tile runner.
    """
    slices = tuple(slice(start, stop) for start, stop in region)
    if any(s.start >= s.stop for s in slices):
        return
    acc: Optional[np.ndarray] = None
    for offset, weight in spec.offsets_and_weights().items():
        gathered = _gather(src, region, offset, boundary)
        term = weight * gathered
        acc = term if acc is None else acc + term
    if acc is None:
        return
    if spec.post_rule is not None:
        prev = src[slices]
        aux_slice = None if aux is None else aux[slices]
        acc = spec.post_rule(acc, prev, aux_slice)
    dst[slices] = acc


def _gather(
    src: np.ndarray,
    region: Region,
    offset: Tuple[int, ...],
    boundary: BoundaryCondition,
) -> np.ndarray:
    """Gather ``src`` at ``region`` shifted by ``offset`` under ``boundary``."""
    index_arrays = []
    masks = []
    for (start, stop), off, extent in zip(region, offset, src.shape):
        idx = np.arange(start, stop) + off
        if boundary is BoundaryCondition.PERIODIC:
            index_arrays.append(idx % extent)
            masks.append(None)
        else:
            valid = (idx >= 0) & (idx < extent)
            index_arrays.append(np.clip(idx, 0, extent - 1))
            masks.append(valid)
    gathered = src[np.ix_(*index_arrays)]
    if boundary is BoundaryCondition.DIRICHLET:
        for axis, valid in enumerate(masks):
            if valid is None or bool(valid.all()):
                continue
            shape = [1] * gathered.ndim
            shape[axis] = valid.size
            gathered = np.where(valid.reshape(shape), gathered, DIRICHLET_VALUE)
    return gathered


def tessellate_run(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    config: TessellationConfig,
) -> np.ndarray:
    """Run ``steps`` time steps using tessellate tiling (sequential executor).

    The result is exactly equal to the reference executor: tessellation is a
    reordering of the same point updates, and the tests assert the equality
    on random grids for 1-D, 2-D and 3-D stencils.

    Parameters
    ----------
    spec:
        Stencil to execute.
    grid:
        Initial grid (the boundary condition of the grid is honoured).
    steps:
        Total time steps; the final pass uses a reduced time range when
        ``steps`` is not a multiple of ``config.time_range``.
    config:
        Block sizes and time range of the tessellation.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    radius = spec.radius
    arrays = [grid.values.copy(), np.empty_like(grid.values)]
    done = 0
    parity = 0  # arrays[parity] holds the current time level
    while done < steps:
        tr = min(config.time_range, steps - done)
        pass_config = TessellationConfig(block_sizes=config.block_sizes, time_range=tr)
        schedule = build_tessellation(grid.shape, radius, pass_config, grid.boundary)
        for stage in schedule.stages:
            for tile in stage.tiles:
                for t, regions in enumerate(tile.steps, start=1):
                    src = arrays[(parity + t - 1) % 2]
                    dst = arrays[(parity + t) % 2]
                    for region in regions:
                        update_region(spec, src, dst, region, grid.boundary, aux=grid.aux)
        done += tr
        parity = (parity + tr) % 2
    return arrays[parity]


def cache_reuse_factors(
    config: TessellationConfig,
    radius: int,
    bytes_per_point: float,
    machine_caches: Sequence[Tuple[str, int]],
) -> dict:
    """Per-level temporal reuse factors contributed by the tessellation.

    A tile whose working set (``prod(block + halo) * bytes_per_point``) fits
    in cache level ``L`` stays resident there for the whole ``time_range``
    pass, so it is fetched through ``L``'s outer boundary — and through every
    boundary farther out, including DRAM — only once per pass instead of once
    per step: the traffic through those boundaries drops by the time-range
    factor.  Boundaries *inside* the residency level still see every step.
    Dimensions that are not tiled (block ``None``) stream their full extent,
    which usually pushes the tile out of every cache level — the quantitative
    reason the paper's blocking sizes (Table 1) are small.

    Parameters
    ----------
    config:
        The tessellation configuration.
    radius:
        Stencil radius (adds the halo to the tile working set).
    bytes_per_point:
        Bytes per grid point per array times the number of streamed arrays.
    machine_caches:
        Sequence of ``(level_name, capacity_bytes)`` pairs, innermost first.

    Returns
    -------
    dict
        ``{level_name: reuse_factor}`` including a ``"Memory"`` entry, with
        factors ``>= 1``.
    """
    tile_points = 1.0
    unbounded = False
    for block in config.block_sizes:
        if block is None:
            unbounded = True
            break
        tile_points *= block + 2 * radius * config.time_range
    reuse = {name: 1.0 for name, _ in machine_caches}
    reuse["Memory"] = 1.0
    if unbounded:
        return reuse
    tile_bytes = tile_points * bytes_per_point
    fits = False
    for name, capacity in machine_caches:
        if tile_bytes <= capacity:
            fits = True
        if fits:
            reuse[name] = float(config.time_range)
    if fits:
        reuse["Memory"] = float(config.time_range)
    return reuse
