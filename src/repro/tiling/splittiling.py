"""Split/nested tiling — the temporal tiling used by the SDSL baseline.

Henretty et al. combine the DLT data layout with *split tiling*: the time
dimension is blocked and, within a time block, the outermost spatial
dimension is covered by two families of trapezoid-shaped tiles executed in
two phases (their "nested split tiling" for 1-D; higher dimensions use a
hybrid that streams the remaining dimensions).  Structurally this is the
1-dimensional special case of the tessellation machinery — triangles and
inverted triangles along one dimension, full-extent streaming along the
others — so the implementation here reuses
:mod:`repro.tiling.tessellate` with a configuration restricted in exactly
that way.

The practical difference the paper highlights is not the tile shapes but the
interaction with the DLT layout: because the lanes of one DLT vector are
``N/vl`` apart, the effective per-tile footprint is much larger and the
usable time-block depth is smaller, which
:func:`split_tiling_cache_reuse` reflects when building the performance
profiles of the SDSL configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.spec import StencilSpec
from repro.tiling.schedule import TileSchedule
from repro.tiling.tessellate import (
    TessellationConfig,
    build_tessellation,
    tessellate_run,
)


@dataclass(frozen=True)
class SplitTilingConfig:
    """Configuration of the split-tiling baseline.

    Attributes
    ----------
    block_size:
        Block extent along the split (outermost) dimension.
    time_range:
        Time steps per pass.
    split_dimension:
        Which dimension is split into trapezoids (0 = outermost, the usual
        choice); the remaining dimensions are streamed in full.
    """

    block_size: int
    time_range: int
    split_dimension: int = 0

    def as_tessellation(self, dims: int) -> TessellationConfig:
        """Express the split tiling as a tessellation configuration."""
        if not 0 <= self.split_dimension < dims:
            raise ValueError("split_dimension out of range")
        blocks: Tuple[Optional[int], ...] = tuple(
            self.block_size if d == self.split_dimension else None for d in range(dims)
        )
        return TessellationConfig(block_sizes=blocks, time_range=self.time_range)


def split_tiling_schedule(
    grid_shape: Sequence[int],
    radius: int,
    config: SplitTilingConfig,
    boundary,
) -> TileSchedule:
    """Build the two-phase split-tiling schedule for one pass."""
    return build_tessellation(
        grid_shape, radius, config.as_tessellation(len(grid_shape)), boundary
    )


def split_tiling_run(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    config: SplitTilingConfig,
) -> np.ndarray:
    """Execute ``steps`` time steps with split tiling (sequential executor).

    Functionally identical to the reference executor; the tests assert the
    equality.  The SDSL baseline's performance profile is built separately in
    :mod:`repro.baselines.sdsl`.
    """
    return tessellate_run(spec, grid, steps, config.as_tessellation(grid.dims))


def split_tiling_cache_reuse(
    config: SplitTilingConfig,
    grid_shape: Sequence[int],
    radius: int,
    bytes_per_point: float,
    machine_caches: Sequence[Tuple[str, int]],
    dlt_locality_penalty: float = 2.0,
    hybrid_blocks: Optional[Sequence[int]] = None,
) -> Dict[str, float]:
    """Per-level temporal reuse factors of the SDSL (DLT + split tiling) setup.

    The split dimension is blocked by ``config.block_size``; the remaining
    dimensions are either streamed in full (1-D split tiling) or, with the
    hybrid tiling SDSL applies to multi-dimensional stencils, blocked by
    ``hybrid_blocks``.  The DLT layout additionally scatters each vector's
    lanes across the whole innermost extent, which inflates the footprint
    that must stay resident for temporal reuse; ``dlt_locality_penalty``
    models that inflation (the paper attributes SDSL's inferior blocking
    behaviour to exactly this layout constraint).

    Returns ``{level: reuse}`` factors (including ``"Memory"``) clamped to at
    least 1.
    """
    tile_points = float(config.block_size + 2 * radius * config.time_range)
    for d, extent in enumerate(grid_shape):
        if d != config.split_dimension:
            if hybrid_blocks is not None and d < len(hybrid_blocks):
                tile_points *= min(extent, hybrid_blocks[d] + 2 * radius * config.time_range)
            else:
                tile_points *= extent
    tile_bytes = tile_points * bytes_per_point * dlt_locality_penalty
    reuse: Dict[str, float] = {name: 1.0 for name, _ in machine_caches}
    reuse["Memory"] = 1.0
    fits = False
    for name, capacity in machine_caches:
        if tile_bytes <= capacity:
            fits = True
        if fits:
            reuse[name] = float(config.time_range)
    if fits:
        reuse["Memory"] = float(config.time_range)
    return reuse
