"""Plain rectangular spatial blocking.

Spatial blocking changes the traversal order of one time step so that a
small working set is reused while it is hot in cache; it provides no reuse
across time steps.  The paper uses it only implicitly (inside the temporal
tiling frameworks); here it is exposed both as an iterator over blocks (used
by the partitioners) and as a reference executor whose result must equal the
naive executor exactly — a useful base case for the tiling tests.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.stencils.grid import Grid
from repro.stencils.reference import reference_step
from repro.stencils.spec import StencilSpec


def spatial_blocks(
    shape: Sequence[int], block_sizes: Sequence[int]
) -> Iterator[Tuple[Tuple[int, int], ...]]:
    """Iterate over the axis-aligned blocks of a grid.

    Parameters
    ----------
    shape:
        Grid extents.
    block_sizes:
        Block extent per dimension; the final block of a dimension may be
        smaller when the extent is not divisible.

    Yields
    ------
    tuple of (start, stop) pairs
        One half-open interval per dimension.
    """
    shape = tuple(int(s) for s in shape)
    block_sizes = tuple(int(b) for b in block_sizes)
    if len(shape) != len(block_sizes):
        raise ValueError("shape and block_sizes must have the same length")
    if any(b <= 0 for b in block_sizes):
        raise ValueError("block sizes must be positive")

    def _recurse(dim: int, prefix: List[Tuple[int, int]]) -> Iterator[Tuple[Tuple[int, int], ...]]:
        if dim == len(shape):
            yield tuple(prefix)
            return
        n, b = shape[dim], block_sizes[dim]
        for start in range(0, n, b):
            prefix.append((start, min(start + b, n)))
            yield from _recurse(dim + 1, prefix)
            prefix.pop()

    yield from _recurse(0, [])


def blocked_reference_run(
    spec: StencilSpec,
    grid: Grid,
    steps: int,
    block_sizes: Sequence[int],
) -> np.ndarray:
    """Run ``steps`` time steps with per-step spatial blocking.

    Each time step computes the full-grid update first (the reference) and
    then copies it block by block in blocked traversal order — functionally
    identical to the reference, which is precisely the property the tests
    assert: spatial blocking is a pure traversal-order change.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    values = grid.values.copy()
    for _ in range(steps):
        updated = reference_step(spec, values, grid.boundary, aux=grid.aux)
        out = np.empty_like(updated)
        for block in spatial_blocks(values.shape, block_sizes):
            slices = tuple(slice(start, stop) for start, stop in block)
            out[slices] = updated[slices]
        values = out
    return values
